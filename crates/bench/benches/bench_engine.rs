//! Criterion benches for the Harmony engine — per-stage and end-to-end
//! costs of the Figure 1 pipeline on registry-scale schemata.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iwb_harmony::flooding::{flood, FloodingConfig};
use iwb_harmony::matrix::ScoreMatrix;
use iwb_harmony::{Confidence, HarmonyEngine, MatchContext};
use iwb_ling::{Corpus, Thesaurus};
use iwb_registry::perturb::{perturb_schema, PerturbConfig};
use iwb_registry::{generate_registry, GeneratorConfig};
use std::collections::{HashMap, HashSet};

fn pair_sized(elements: usize) -> iwb_registry::SchemaPair {
    let cfg = GeneratorConfig {
        seed: 7,
        models: 1,
        elements,
        attributes: elements * 5,
        domain_values: elements * 8,
        ..GeneratorConfig::default()
    };
    let model = generate_registry(cfg)
        .models
        .into_iter()
        .next()
        .expect("nonempty registry");
    perturb_schema(&model, &PerturbConfig::default())
}

fn bench_context(c: &mut Criterion) {
    let p = pair_sized(12);
    let th = Thesaurus::builtin();
    c.bench_function("engine/context build", |b| {
        b.iter(|| {
            MatchContext::build(
                black_box(&p.source),
                black_box(&p.target),
                &th,
                Corpus::new(),
            )
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/end-to-end");
    group.sample_size(10);
    for size in [8, 16, 32] {
        let p = pair_sized(size);
        let cells = {
            let m = ScoreMatrix::for_schemas(&p.source, &p.target);
            m.len()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cells}cells")),
            &p,
            |b, p| {
                b.iter(|| {
                    let mut engine = HarmonyEngine::default();
                    engine.run(black_box(&p.source), black_box(&p.target), &HashMap::new())
                })
            },
        );
    }
    group.finish();
}

fn bench_flooding(c: &mut Criterion) {
    let p = pair_sized(12);
    let mut m = ScoreMatrix::for_schemas(&p.source, &p.target);
    // Seed the matrix with pseudo-scores so flooding has work to do.
    let (srcs, tgts) = (m.src_ids().to_vec(), m.tgt_ids().to_vec());
    for (i, &s) in srcs.iter().enumerate() {
        for (j, &t) in tgts.iter().enumerate() {
            m.set(
                s,
                t,
                Confidence::engine(((i * 31 + j * 17) % 200) as f64 / 100.0 - 1.0),
            );
        }
    }
    c.bench_function("engine/flooding fixpoint", |b| {
        b.iter(|| {
            let mut work = m.clone();
            flood(
                &mut work,
                black_box(&p.source),
                black_box(&p.target),
                &HashSet::new(),
                &FloodingConfig::default(),
            )
        })
    });
}

criterion_group!(benches, bench_context, bench_end_to_end, bench_flooding);
criterion_main!(benches);
