//! Criterion benches for instance integration (tasks 10–11): the
//! blocking-key ablation DESIGN.md calls out, plus cleaning throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iwb_instance::{
    link_records, BlockingKey, Cleaner, CleaningRule, CompareMethod, FieldComparator, LinkageConfig,
};
use iwb_mapper::Node;
use iwb_model::Domain;

const LAST_NAMES: &[&str] = &[
    "Lovelace", "Turing", "Hopper", "Johnson", "Hamilton", "Shannon", "Knuth", "Dijkstra",
    "Liskov", "Lamport",
];

fn records(n: usize) -> Vec<Node> {
    (0..n)
        .map(|i| {
            let last = LAST_NAMES[i % LAST_NAMES.len()];
            // Every third record is a misspelled duplicate of its
            // predecessor.
            let last = if i % 3 == 2 {
                format!("{}e", &last[..last.len() - 1])
            } else {
                last.to_owned()
            };
            Node::elem("person")
                .with_leaf("first", format!("Person{}", i / 3))
                .with_leaf("last", last)
                .with_leaf("dob", format!("19{:02}-01-{:02}", i % 80 + 10, i % 28 + 1))
        })
        .collect()
}

fn config(blocking: BlockingKey) -> LinkageConfig {
    LinkageConfig {
        blocking,
        comparators: vec![
            FieldComparator::new("first", CompareMethod::JaroWinkler, 1.0),
            FieldComparator::new("last", CompareMethod::JaroWinkler, 1.0),
            FieldComparator::new("dob", CompareMethod::Exact, 2.0),
        ],
        threshold: 0.85,
    }
}

fn bench_linkage(c: &mut Criterion) {
    let data = records(400);
    let mut group = c.benchmark_group("instance/linkage blocking ablation");
    group.sample_size(20);
    for (name, blocking) in [
        ("none (quadratic)", BlockingKey::None),
        ("attribute(last)", BlockingKey::Attribute("last".into())),
        ("soundex(last)", BlockingKey::SoundexOf("last".into())),
    ] {
        let cfg = config(blocking);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| link_records(black_box(&data), black_box(cfg)))
        });
    }
    group.finish();
}

fn bench_cleaning(c: &mut Criterion) {
    let cleaner = Cleaner::new()
        .with_rule(CleaningRule::DomainConstraint {
            field: "last".into(),
            domain: LAST_NAMES
                .iter()
                .fold(Domain::new("names"), |d, n| d.with_value(*n, "surname")),
        })
        .with_rule(CleaningRule::Required {
            field: "dob".into(),
        });
    c.bench_function("instance/clean 400 records", |b| {
        b.iter(|| {
            let mut data = records(400);
            cleaner.clean(black_box(&mut data))
        })
    });
}

criterion_group!(benches, bench_linkage, bench_cleaning);
criterion_main!(benches);
