//! Criterion benches for the linguistic substrate — the per-element
//! cost of Figure 1's preprocessing stage.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwb_ling::pipeline::preprocess;
use iwb_ling::{dice_coefficient, jaro_winkler, levenshtein, porter_stem, Corpus, Thesaurus};

fn bench_preprocess(c: &mut Criterion) {
    c.bench_function("ling/preprocess name+doc", |b| {
        b.iter(|| {
            preprocess(
                black_box("ACFT_TYPE_CD"),
                black_box(Some(
                    "The coded designation of the aircraft type as maintained in the authoritative source system.",
                )),
            )
        })
    });
    c.bench_function("ling/porter_stem", |b| {
        b.iter(|| porter_stem(black_box("organizational")))
    });
}

fn bench_similarity(c: &mut Criterion) {
    c.bench_function("ling/levenshtein 12x14", |b| {
        b.iter(|| levenshtein(black_box("shippingInfos"), black_box("shipToAddress")))
    });
    c.bench_function("ling/jaro_winkler 12x14", |b| {
        b.iter(|| jaro_winkler(black_box("shippingInfos"), black_box("shipToAddress")))
    });
    c.bench_function("ling/dice bigrams", |b| {
        b.iter(|| dice_coefficient(black_box("first_name"), black_box("firstName"), 2))
    });
}

fn bench_tfidf(c: &mut Criterion) {
    let mut corpus = Corpus::new();
    for i in 0..1000 {
        corpus.add_document([
            "unique",
            if i % 2 == 0 {
                "identifier"
            } else {
                "designation"
            },
            "airport",
            "facility",
        ]);
    }
    let v1 = corpus.vector(["unique", "identifier", "airport"]);
    let v2 = corpus.vector(["designation", "airport", "facility"]);
    c.bench_function("ling/tfidf vector", |b| {
        b.iter(|| corpus.vector(black_box(["unique", "identifier", "airport"])))
    });
    c.bench_function("ling/cosine", |b| {
        b.iter(|| iwb_ling::cosine(black_box(&v1), black_box(&v2)))
    });
}

fn bench_thesaurus(c: &mut Criterion) {
    let t = Thesaurus::builtin();
    c.bench_function("ling/thesaurus synonymous", |b| {
        b.iter(|| t.synonymous(black_box("acft"), black_box("airplane")))
    });
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_similarity,
    bench_tfidf,
    bench_thesaurus
);
criterion_main!(benches);
