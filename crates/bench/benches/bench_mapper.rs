//! Criterion benches for the mapping substrate: expression parsing and
//! evaluation, mapping execution, XQuery assembly, verification.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwb_mapper::xquery::{generate_xquery, MatrixCodegen};
use iwb_mapper::{
    execute, parse_expr, verify_instance, AttributeTransformation, EntityMapping, EntityRule,
    LogicalMapping, Node,
};
use iwb_model::{DataType, Metamodel, SchemaBuilder};

fn sample_doc(rows: usize) -> Node {
    let mut doc = Node::elem("db");
    for i in 0..rows {
        doc.children.push(
            Node::elem("RUNWAY")
                .with_leaf("arpt", format!("K{:03}", i % 40))
                .with_leaf("number", format!("{:02}L", i % 36))
                .with_leaf("length_ft", (5000 + (i % 80) * 100) as f64),
        );
    }
    for i in 0..rows / 5 {
        doc.children.push(
            Node::elem("AIRPORT")
                .with_leaf("ident", format!("K{i:03}"))
                .with_leaf("name", format!("Airport {i}")),
        );
    }
    doc
}

fn mapping() -> LogicalMapping {
    LogicalMapping::new("facilities").with_rule(
        EntityRule::new(
            "strip",
            EntityMapping::Join {
                left: "RUNWAY".into(),
                right: "AIRPORT".into(),
                left_key: "arpt".into(),
                right_key: "ident".into(),
            },
        )
        .with_attr(iwb_mapper::logical::AttrRule::new(
            "lengthM",
            AttributeTransformation::Scalar(
                parse_expr("feet-to-meters(data($src/length_ft))").unwrap(),
            ),
        ))
        .with_attr(iwb_mapper::logical::AttrRule::new(
            "airportName",
            AttributeTransformation::Scalar(parse_expr("data($src/name)").unwrap()),
        )),
    )
}

fn bench_parse_eval(c: &mut Criterion) {
    c.bench_function("mapper/parse expr", |b| {
        b.iter(|| {
            parse_expr(black_box(
                "concat(data($lName), concat(\", \", data($fName)))",
            ))
        })
    });
    let expr = parse_expr("data($src/length_ft) * 0.3048 + 10").unwrap();
    let mut env = iwb_mapper::expr::Env::new();
    env.bind_node("src", Node::elem("r").with_leaf("length_ft", 9000.0));
    c.bench_function("mapper/eval expr", |b| {
        b.iter(|| expr.eval(black_box(&env)))
    });
}

fn bench_execute(c: &mut Criterion) {
    let doc = sample_doc(500);
    let m = mapping();
    let mut group = c.benchmark_group("mapper/execute");
    group.sample_size(20);
    group.bench_function("join 500 rows", |b| {
        b.iter(|| execute(black_box(&m), black_box(&doc)).unwrap())
    });
    group.finish();
}

fn bench_codegen_and_verify(c: &mut Criterion) {
    let input = MatrixCodegen::new("shippingInfo")
        .with_row("shipto", "$doc/shipTo")
        .with_column("name", "concat($lName, $fName)")
        .with_column("total", "data($shipto/subtotal) * 1.05");
    c.bench_function("mapper/xquery assemble", |b| {
        b.iter(|| generate_xquery(black_box(&input)))
    });

    let schema = SchemaBuilder::new("facilities", Metamodel::Xml)
        .open("strip")
        .attr("lengthM", DataType::Decimal)
        .attr("airportName", DataType::Text)
        .close()
        .build();
    let out = execute(&mapping(), &sample_doc(200)).unwrap();
    c.bench_function("mapper/verify instance", |b| {
        b.iter(|| verify_instance(black_box(&schema), black_box(&out)))
    });
}

criterion_group!(
    benches,
    bench_parse_eval,
    bench_execute,
    bench_codegen_and_verify
);
criterion_main!(benches);
