//! Criterion benches for the Integration Blackboard's RDF substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwb_rdf::{select, PatternTerm, Term, TriplePattern, TripleStore};

fn build_store(n: usize) -> TripleStore {
    let mut st = TripleStore::new();
    for i in 0..n {
        let cell = Term::iri(format!("iwb:cell/{i}"));
        st.insert(
            cell.clone(),
            Term::iri("rdf:type"),
            Term::iri("iwb:MappingCell"),
        );
        st.insert(
            cell.clone(),
            Term::iri("iwb:in-matrix"),
            Term::iri(format!("iwb:matrix/{}", i % 10)),
        );
        st.insert(
            cell.clone(),
            Term::iri("iwb:confidence-score"),
            Term::double((i % 100) as f64 / 100.0),
        );
        st.insert(
            cell,
            Term::iri("iwb:is-user-defined"),
            Term::boolean(i % 7 == 0),
        );
    }
    st
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("rdf/insert 10k triples", |b| {
        b.iter(|| build_store(black_box(2_500)))
    });
}

fn bench_match(c: &mut Criterion) {
    let st = build_store(10_000);
    let p = st.lookup(&Term::iri("iwb:in-matrix")).unwrap();
    let o = st.lookup(&Term::iri("iwb:matrix/3")).unwrap();
    c.bench_function("rdf/pattern scan (p,o bound)", |b| {
        b.iter(|| st.matching(None, Some(black_box(p)), Some(black_box(o))))
    });
}

fn bench_bgp(c: &mut Criterion) {
    let st = build_store(5_000);
    let patterns = vec![
        TriplePattern::new(
            PatternTerm::var("cell"),
            Term::iri("iwb:is-user-defined"),
            Term::boolean(true),
        ),
        TriplePattern::new(
            PatternTerm::var("cell"),
            Term::iri("iwb:in-matrix"),
            PatternTerm::var("m"),
        ),
    ];
    c.bench_function("rdf/bgp join 2 patterns", |b| {
        b.iter(|| select(black_box(&st), black_box(&patterns)))
    });
}

fn bench_turtle(c: &mut Criterion) {
    let st = build_store(2_000);
    let text = iwb_rdf::turtle::write(&st);
    c.bench_function("rdf/turtle write 8k triples", |b| {
        b.iter(|| iwb_rdf::turtle::write(black_box(&st)))
    });
    c.bench_function("rdf/turtle parse 8k triples", |b| {
        b.iter(|| iwb_rdf::turtle::read(black_box(&text)).unwrap())
    });
}

criterion_group!(benches, bench_insert, bench_match, bench_bgp, bench_turtle);
criterion_main!(benches);
