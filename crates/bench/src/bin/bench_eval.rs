//! Config-sweep benchmark over the calibrated evaluation domains:
//! voter suites × confidence thresholds × blocking-k, plus the
//! curation-replay feedback curves, emitted as a committed
//! `BENCH_eval.json` leaderboard.
//!
//! Three result groups:
//!
//! * **sweep** — per (domain, engine, threshold, blocking-k) cell:
//!   precision/recall/F1 of the thresholded best-per-element link set.
//!   With `blocking-k > 0` the domain's true target must first survive
//!   top-k retrieval from a registry of candidate models (the domain
//!   targets plus synthetic decoy models); a retrieval miss scores
//!   recall 0.
//! * **leaderboard** — the best cell per domain, gated against pinned
//!   per-domain F1 floors (exit 1 below floor).
//! * **replay** — per-domain curation-replay P/R/F1-vs-round curves
//!   (scripted oracle, top-k accept/reject, re-match each round),
//!   gated monotone-or-plateau with the final round no worse than the
//!   first.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_eval -- --out BENCH_eval.json
//! ```
//!
//! `--quick` shrinks the sweep axes (not the domains — all four always
//! run) for CI smoke; the floor and replay gates still apply because
//! quick keeps the gated harmony/0.25/k=0 cell in its sweep.
//! `--noise P` makes the replay oracle wrongly accept non-gold
//! proposals with probability P (seeded): the monotone gate is waived
//! (mistakes are *supposed* to dent the curve) and the recovery is
//! recorded per round instead, but the plateau-honesty gate still
//! applies — a claimed plateau with weights still moving fails the run.

use iwb_blocking::{BlockingConfig, RegistryIndex};
use iwb_eval::domains::{default_knobs, domains, generate_case, EvalCase};
use iwb_eval::harness::score;
use iwb_eval::replay::{run_replay, OracleConfig, ShellTransport};
use iwb_harmony::voters::default_suite;
use iwb_harmony::{
    coma_like_engine, cupid_like_engine, name_equivalence_engine, FloodingConfig, HarmonyEngine,
    MergeStrategy, PrMetrics, VoteMerger,
};
use iwb_registry::{generate_registry, GeneratorConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Per-domain F1 floors, gated on the best cell of the sweep. Pinned
/// from the harmony / threshold 0.25 / no-blocking cell of the full
/// run (rounded down with margin) — that cell is present in the quick
/// sweep too, so the gate holds in CI smoke runs as well.
const F1_FLOORS: &[(&str, f64)] = &[
    ("clinical", 0.85),
    ("finance", 0.82),
    ("geospatial", 0.88),
    ("telecom", 0.84),
];

/// A replay round's F1 may dip at most this much below its predecessor
/// before the curve counts as regressing.
const REPLAY_EPS: f64 = 0.02;

struct Args {
    seed: u64,
    quick: bool,
    noise: f64,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 20060406,
            quick: false,
            noise: 0.0,
            out: "BENCH_eval.json".to_owned(),
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: bench_eval [--seed N] [--quick] [--noise P] [--out PATH]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--quick" => out.quick = true,
            "--noise" => match value().parse() {
                Ok(p) if (0.0..=1.0).contains(&p) => out.noise = p,
                _ => usage(),
            },
            "--out" => out.out = value(),
            _ => usage(),
        }
    }
    out
}

type EngineFactory = fn() -> HarmonyEngine;

/// The voters axis: named engine factories (fresh engine per cell so
/// no state leaks between configurations).
fn engine_axis(quick: bool) -> Vec<(&'static str, EngineFactory)> {
    let mut axis: Vec<(&'static str, EngineFactory)> = vec![
        ("harmony", HarmonyEngine::default as EngineFactory),
        ("name-eq", name_equivalence_engine),
    ];
    if !quick {
        axis.push(("harmony-uniform", || {
            HarmonyEngine::new(
                default_suite(),
                VoteMerger::with_strategy(MergeStrategy::UniformAverage),
                FloodingConfig::default(),
            )
        }));
        axis.push(("coma-like", coma_like_engine));
        axis.push(("cupid-like", cupid_like_engine));
    }
    axis
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    let thresholds: &[f64] = if args.quick {
        &[0.25]
    } else {
        &[0.15, 0.25, 0.4]
    };
    let blocking_ks: &[usize] = if args.quick { &[0, 2] } else { &[0, 2, 5] };
    let engines = engine_axis(args.quick);

    // All four calibrated domains, always — the whole point of the
    // suite is breadth beyond the registry's vocabulary.
    let cases: Vec<EvalCase> = domains()
        .into_iter()
        .map(|spec| generate_case(spec, &default_knobs(spec), args.seed))
        .collect();
    println!(
        "bench_eval: {} domains, {} engines, {} thresholds, {} blocking depths (seed {})",
        cases.len(),
        engines.len(),
        thresholds.len(),
        blocking_ks.len(),
        args.seed
    );

    // --- Retrieval stage: which (domain, k) pairs survive blocking ---
    // The candidate registry holds every domain's target plus decoy
    // models with registry vocabulary; ordinals 0..cases.len() are the
    // true targets, in domain order.
    let mut candidates: Vec<_> = cases.iter().map(|c| c.pair.target.clone()).collect();
    candidates.extend(
        generate_registry(GeneratorConfig {
            seed: args.seed ^ 0xb10c,
            models: 8,
            elements: 96,
            attributes: 480,
            domain_values: 0,
            ..GeneratorConfig::default()
        })
        .models,
    );
    let index = RegistryIndex::build(&candidates, BlockingConfig::default());
    let hit = |domain_ordinal: usize, k: usize| -> bool {
        k == 0
            || index
                .query(&cases[domain_ordinal].pair.source, k)
                .iter()
                .any(|c| c.ordinal == domain_ordinal)
    };

    // --- Sweep stage ---------------------------------------------------------
    // Engine runs are independent of blocking-k, so score once per
    // (engine, domain, threshold) and project across the k axis.
    let mut sweep = String::new();
    let mut best: Vec<(f64, String)> = vec![(-1.0, String::new()); cases.len()];
    let mut cells = 0usize;
    for (engine_name, make_engine) in &engines {
        for (d, case) in cases.iter().enumerate() {
            let mut engine = make_engine();
            for &threshold in thresholds {
                let full = score(&mut engine, &case.pair, threshold);
                for &k in blocking_ks {
                    let retrieved = hit(d, k);
                    let m = if retrieved {
                        full
                    } else {
                        PrMetrics {
                            true_positives: 0,
                            predicted: 0,
                            actual: case.pair.gold.len(),
                        }
                    };
                    if cells > 0 {
                        sweep.push_str(",\n");
                    }
                    cells += 1;
                    let _ = write!(
                        sweep,
                        "    {{\"domain\": \"{}\", \"engine\": \"{engine_name}\", \
                         \"threshold\": {threshold}, \"blocking_k\": {k}, \
                         \"retrieval_hit\": {retrieved}, \"precision\": {:.6}, \
                         \"recall\": {:.6}, \"f1\": {:.6}}}",
                        case.domain,
                        m.precision(),
                        m.recall(),
                        m.f1(),
                    );
                    if m.f1() > best[d].0 {
                        best[d] = (
                            m.f1(),
                            format!(
                                "{{\"domain\": \"{}\", \"engine\": \"{engine_name}\", \
                                 \"threshold\": {threshold}, \"blocking_k\": {k}, \
                                 \"f1\": {:.6}}}",
                                case.domain,
                                m.f1()
                            ),
                        );
                    }
                }
            }
        }
    }

    // --- Leaderboard + floor gate --------------------------------------------
    let mut floors_met = true;
    let mut floors_json = String::new();
    for (d, case) in cases.iter().enumerate() {
        let floor = F1_FLOORS
            .iter()
            .find(|(name, _)| *name == case.domain)
            .map(|(_, f)| *f)
            .unwrap_or(0.0);
        let ok = best[d].0 >= floor;
        if !ok {
            floors_met = false;
            eprintln!(
                "bench_eval: {} best F1 {:.3} below pinned floor {floor:.3}",
                case.domain, best[d].0
            );
        }
        if d > 0 {
            floors_json.push_str(", ");
        }
        let _ = write!(floors_json, "\"{}\": {floor}", case.domain);
        println!(
            "  {:<12} best F1 {:.3} (floor {floor:.2}) {}",
            case.domain,
            best[d].0,
            if ok { "ok" } else { "FAIL" }
        );
    }

    // --- Curation replay -----------------------------------------------------
    let oracle = OracleConfig {
        rounds: if args.quick { 2 } else { 5 },
        noise: args.noise,
        ..OracleConfig::default()
    };
    let mut replay_json = String::new();
    let mut replay_ok = true;
    for (d, case) in cases.iter().enumerate() {
        let outcome =
            run_replay(&mut ShellTransport::new(), case, &oracle).expect("replay session");
        let curve = outcome.f1_curve();
        let monotone = outcome.monotone_or_plateau(REPLAY_EPS);
        let improves = curve.last().unwrap_or(&0.0) >= curve.first().unwrap_or(&0.0);
        // With a noisy oracle the curve is *supposed* to dip where the
        // mistakes land — record the recovery instead of gating it.
        if args.noise == 0.0 && !(monotone && improves) {
            replay_ok = false;
            eprintln!(
                "bench_eval: {} replay curve regressed: {curve:?}",
                case.domain
            );
        }
        // A claimed plateau must stay honest under noise: every round
        // from it onward moved no weight beyond eps.
        if let Some(p) = outcome.rounds_to_plateau {
            let honest = outcome.rounds[p..]
                .iter()
                .all(|r| r.max_weight_delta < oracle.plateau_eps);
            if !honest {
                replay_ok = false;
                eprintln!(
                    "bench_eval: {} plateau claimed at round {p} while weights still move",
                    case.domain
                );
            }
        }
        if d > 0 {
            replay_json.push_str(",\n");
        }
        let mut rounds_json = String::new();
        for (i, r) in outcome.rounds.iter().enumerate() {
            if i > 0 {
                rounds_json.push_str(", ");
            }
            let _ = write!(
                rounds_json,
                "{{\"round\": {}, \"accepted\": {}, \"rejected\": {}, \
                 \"noisy_accepts\": {}, \
                 \"precision\": {:.6}, \"recall\": {:.6}, \"f1\": {:.6}, \
                 \"max_weight_delta\": {:.9}}}",
                r.round,
                r.accepted,
                r.rejected,
                r.noisy_accepts,
                r.metrics.precision(),
                r.metrics.recall(),
                r.metrics.f1(),
                r.max_weight_delta
            );
        }
        let plateau = outcome
            .rounds_to_plateau
            .map(|r| r.to_string())
            .unwrap_or_else(|| "null".to_owned());
        let _ = write!(
            replay_json,
            "    {{\"domain\": \"{}\", \"rounds_to_plateau\": {plateau}, \
             \"monotone_or_plateau\": {monotone}, \"noisy_accepts\": {}, \
             \"rounds\": [{rounds_json}]}}",
            case.domain,
            outcome.noisy_accepts()
        );
        println!(
            "  {:<12} replay F1 {:.3} -> {:.3} over {} rounds (plateau {plateau})",
            case.domain,
            curve.first().unwrap_or(&0.0),
            curve.last().unwrap_or(&0.0),
            oracle.rounds
        );
    }

    // --- Report --------------------------------------------------------------
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
    let leaderboard = best
        .iter()
        .map(|(_, row)| format!("    {row}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"eval\",\n  \"seed\": {},\n  \"quick\": {},\n  \
         \"noise\": {},\n  \
         \"domains\": {},\n  \"engines\": {},\n  \"thresholds\": {},\n  \
         \"blocking_ks\": {},\n  \"elapsed_ms\": {elapsed_ms:.0},\n  \
         \"floors\": {{{floors_json}}},\n  \"floors_met\": {floors_met},\n  \
         \"replay_monotone\": {replay_ok},\n  \
         \"leaderboard\": [\n{leaderboard}\n  ],\n  \
         \"replay\": [\n{replay_json}\n  ],\n  \
         \"sweep\": [\n{sweep}\n  ]\n}}\n",
        args.seed,
        args.quick,
        args.noise,
        cases.len(),
        engines.len(),
        thresholds.len(),
        blocking_ks.len(),
    );
    std::fs::write(&args.out, &json).expect("write report");
    println!("  report written to {} ({cells} sweep cells)", args.out);

    if !floors_met {
        eprintln!("bench_eval: FAILED — per-domain F1 floor violated");
        std::process::exit(1);
    }
    if !replay_ok {
        eprintln!("bench_eval: FAILED — curation-replay curve regressed");
        std::process::exit(1);
    }
    println!("bench_eval: ok");
}
