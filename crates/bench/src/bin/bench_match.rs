//! Match-engine benchmark: sequential vs sharded-parallel wall time,
//! feature-cache hit rates, and a byte-identity check between the two
//! execution modes.
//!
//! The parallel path must be *exactly* the sequential path, sharded:
//! the merged matrix, every per-voter matrix, and the flooding
//! iteration count are compared bit-for-bit and any difference fails
//! the run (exit 1). Speedup is judged against a core-count-aware
//! floor — on a single-core host parallelism cannot win, so the floor
//! only guards against catastrophic overhead there.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_match -- \
//!     --seed 42 --entities 40 --threads 8 --repeats 3 --out BENCH_match.json
//! ```
//!
//! `--quick` shrinks the workload for CI smoke runs; the speedup floor
//! is skipped there (a ~50 ms pair is too small to amortise the worker
//! pool), but byte-identity and the `--strict` cache gate still apply.

use iwb_bench::standard_pairs;
use iwb_harmony::{HarmonyEngine, MatchConfig, MatchResult};
use iwb_registry::perturb::PerturbConfig;
use iwb_registry::SchemaPair;
use std::collections::HashMap;
use std::time::Instant;

struct Args {
    seed: u64,
    /// Entities per generated model (each brings ~5 attributes, so the
    /// schema element count is roughly 6x this).
    entities: usize,
    threads: usize,
    repeats: usize,
    quick: bool,
    /// Also fail (exit 1) when the warm run serves 0% of text features
    /// from cache — the regression `BENCH_match.json` once shipped with.
    strict: bool,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 42,
            entities: 40,
            threads: 8,
            repeats: 3,
            quick: false,
            strict: false,
            out: "BENCH_match.json".to_owned(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_match [--seed N] [--entities N] [--threads N] \
         [--repeats N] [--quick] [--strict] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--entities" => out.entities = value().parse().unwrap_or_else(|_| usage()),
            "--threads" => out.threads = value().parse().unwrap_or_else(|_| usage()),
            "--repeats" => out.repeats = value().parse().unwrap_or_else(|_| usage()),
            "--quick" => out.quick = true,
            "--strict" => out.strict = true,
            "--out" => out.out = value(),
            _ => usage(),
        }
    }
    if out.quick {
        out.entities = out.entities.min(12);
        out.repeats = out.repeats.min(2);
    }
    if out.entities == 0 || out.repeats == 0 || out.threads == 0 {
        usage();
    }
    out
}

/// Time `repeats` engine runs, returning the fastest wall time in
/// milliseconds and the last result.
fn time_runs(engine: &mut HarmonyEngine, pair: &SchemaPair, repeats: usize) -> (f64, MatchResult) {
    let locked = HashMap::new();
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let result = engine.run(&pair.source, &pair.target, &locked);
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
        last = Some(result);
    }
    (best, last.expect("repeats >= 1"))
}

/// Bit-exact equality of two match results: merged matrix, per-voter
/// matrices, and flooding iteration count.
fn byte_identical(a: &MatchResult, b: &MatchResult) -> bool {
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    a.flooding_iterations == b.flooding_iterations
        && a.matrix.src_ids() == b.matrix.src_ids()
        && a.matrix.tgt_ids() == b.matrix.tgt_ids()
        && bits(a.matrix.scores()) == bits(b.matrix.scores())
        && a.per_voter.len() == b.per_voter.len()
        && a.per_voter
            .iter()
            .zip(&b.per_voter)
            .all(|((an, am), (bn, bm))| an == bn && bits(am.scores()) == bits(bm.scores()))
}

/// The minimum acceptable sequential/parallel speedup for this host.
/// One core cannot speed anything up, so only guard against pathology;
/// with real cores, demand a real win.
fn speedup_floor(cores: usize, threads: usize) -> f64 {
    match cores.min(threads) {
        1 => 0.25,
        2..=3 => 1.0,
        4..=7 => 1.5,
        _ => 3.0,
    }
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Workers beyond the physical core count cannot add parallelism —
    // report what the host can actually deliver, not what was asked
    // for, so the speedup floor reads against the honest number.
    let threads_effective = args.threads.min(cores);

    let pair = standard_pairs(args.seed, 1, args.entities, &PerturbConfig::mild(args.seed))
        .into_iter()
        .next()
        .expect("one pair");
    let (rows, cols) = (pair.source.len(), pair.target.len());
    println!(
        "bench_match: {rows}x{cols} pair (seed {}), {} thread(s) requested / {threads_effective} \
         effective on {cores} core(s), {} repeat(s)",
        args.seed, args.threads, args.repeats
    );

    // Sequential baseline: one thread, cold features every run.
    let mut seq_engine = HarmonyEngine::default();
    seq_engine.set_match_config(MatchConfig {
        threads: 1,
        cache: false,
        ..MatchConfig::default()
    });
    let (seq_ms, seq_result) = time_runs(&mut seq_engine, &pair, args.repeats);

    // Parallel: sharded rows, still cold features every run.
    let mut par_engine = HarmonyEngine::default();
    par_engine.set_match_config(MatchConfig {
        threads: args.threads,
        cache: false,
        ..MatchConfig::default()
    });
    let (par_ms, par_result) = time_runs(&mut par_engine, &pair, args.repeats);

    // Cached: sequential with the feature cache on; first run pays the
    // build, the timed repeats hit the cache.
    let mut cached_engine = HarmonyEngine::default();
    cached_engine.set_match_config(MatchConfig {
        threads: 1,
        cache: true,
        ..MatchConfig::default()
    });
    let _ = cached_engine.run(&pair.source, &pair.target, &HashMap::new());
    let (cached_ms, cached_result) = time_runs(&mut cached_engine, &pair, args.repeats);
    let stats = cached_engine.cache_stats();

    let par_identical = byte_identical(&seq_result, &par_result);
    let cached_identical = byte_identical(&seq_result, &cached_result);
    let identical = par_identical && cached_identical;
    let speedup = seq_ms / par_ms;
    let cache_speedup = seq_ms / cached_ms;
    let floor = speedup_floor(cores, args.threads);

    println!("  sequential        {seq_ms:9.2} ms");
    println!("  parallel (x{:<3})   {par_ms:9.2} ms   speedup {speedup:.2}x (floor {floor:.2}x at {threads_effective} effective thread(s))", args.threads);
    println!("  feature-cached    {cached_ms:9.2} ms   speedup {cache_speedup:.2}x");
    println!(
        "  cache hit rates   context {:.0}%  text {:.0}%",
        stats.context_hit_rate() * 100.0,
        stats.text_hit_rate() * 100.0
    );
    println!(
        "  byte-identical    parallel {}  cached {}",
        if par_identical { "yes" } else { "NO" },
        if cached_identical { "yes" } else { "NO" }
    );

    let json = format!(
        "{{\n  \"seed\": {},\n  \"rows\": {rows},\n  \"cols\": {cols},\n  \
         \"threads_requested\": {},\n  \"threads_effective\": {threads_effective},\n  \
         \"cores\": {cores},\n  \"repeats\": {},\n  \"quick\": {},\n  \
         \"sequential_ms\": {seq_ms:.3},\n  \"parallel_ms\": {par_ms:.3},\n  \
         \"cached_ms\": {cached_ms:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"cache_speedup\": {cache_speedup:.3},\n  \"speedup_floor\": {floor:.3},\n  \
         \"context_hit_rate\": {:.3},\n  \"text_hit_rate\": {:.3},\n  \
         \"byte_identical\": {identical}\n}}\n",
        args.seed,
        args.threads,
        args.repeats,
        args.quick,
        stats.context_hit_rate(),
        stats.text_hit_rate(),
    );
    std::fs::write(&args.out, &json).expect("write report");
    println!("  report written to {}", args.out);

    if !identical {
        eprintln!("bench_match: FAILED — parallel/cached result differs from sequential");
        std::process::exit(1);
    }
    if !args.quick && speedup < floor {
        eprintln!("bench_match: FAILED — speedup {speedup:.2}x below floor {floor:.2}x");
        std::process::exit(1);
    }
    if args.strict && stats.text_hits == 0 {
        eprintln!(
            "bench_match: FAILED (--strict) — warm runs served 0% of text features from cache"
        );
        std::process::exit(1);
    }
    println!("bench_match: ok");
}
