//! Registry-scale blocking benchmark: index a Table-1-sized model
//! repository, retrieve top-k candidates for perturbed query schemas,
//! and compare against the exhaustive full-engine sweep.
//!
//! Three numbers matter:
//!
//! * **index build time** — the one-off cost of making the repository
//!   searchable;
//! * **retrieval throughput** — (query, model) pairs scored per second
//!   through the inverted index;
//! * **recall vs exhaustive** — at each k, the fraction of queries for
//!   which the model the *full Harmony engine* would rank first (run
//!   against every model in the registry) survives blocking's top-k.
//!   Blocking that loses the engine's winner is worse than useless.
//!
//! The run fails (exit 1) if recall at the default k drops below 0.95
//! or — at full scale — if block-then-rerank is not faster than the
//! exhaustive sweep end to end.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_registry -- \
//!     --queries 4 --k 10 --out BENCH_registry.json
//! ```
//!
//! `--quick` shrinks the registry for CI smoke runs (the speed gate is
//! skipped there: a dozen tiny models leave nothing to amortise).

use iwb_blocking::{block_then_rerank, engine_model_score, BlockingConfig, RegistryIndex};
use iwb_harmony::{HarmonyEngine, MatchConfig};
use iwb_pool::Budget;
use iwb_registry::perturb::{perturb_schema, PerturbConfig};
use iwb_registry::{generate_registry, GeneratorConfig, TABLE1_SEED};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Retrieval depths reported in the JSON (the default `--k` is gated).
const K_LIST: [usize; 4] = [1, 5, 10, 20];

/// Minimum acceptable recall at the default k.
const RECALL_FLOOR: f64 = 0.95;

struct Args {
    seed: u64,
    /// Registry scale relative to Table 1 (1.0 = 265 models).
    scale: f64,
    /// Query schemas (perturbed registry members) to retrieve for.
    queries: usize,
    /// Default retrieval depth: gated for recall and used for the
    /// block-then-rerank timing.
    k: usize,
    /// Index build workers.
    threads: usize,
    quick: bool,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: TABLE1_SEED,
            scale: 1.0,
            queries: 4,
            k: 10,
            threads: 8,
            quick: false,
            out: "BENCH_registry.json".to_owned(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_registry [--seed N] [--scale F] [--queries N] [--k N] \
         [--threads N] [--quick] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => out.scale = value().parse().unwrap_or_else(|_| usage()),
            "--queries" => out.queries = value().parse().unwrap_or_else(|_| usage()),
            "--k" => out.k = value().parse().unwrap_or_else(|_| usage()),
            "--threads" => out.threads = value().parse().unwrap_or_else(|_| usage()),
            "--quick" => out.quick = true,
            "--out" => out.out = value(),
            _ => usage(),
        }
    }
    if out.quick {
        out.queries = out.queries.min(2);
        out.k = out.k.min(3);
    }
    if out.queries == 0
        || out.k == 0
        || out.threads == 0
        || !out.scale.is_finite()
        || out.scale <= 0.0
    {
        usage();
    }
    out
}

fn main() {
    let args = parse_args();
    let budget = Budget::unlimited();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let t = Instant::now();
    let gen_config = if args.quick {
        // CI smoke: a dozen *small* models. `scaled` keeps the per-model
        // size constant (~50 entities / ~600 attributes), which makes
        // the exhaustive engine sweep minutes long at any scale — a
        // smoke run needs small schemas, not merely few of them.
        GeneratorConfig {
            seed: args.seed,
            models: 12,
            elements: 120,
            attributes: 600,
            domain_values: 960,
            ..GeneratorConfig::default()
        }
    } else {
        GeneratorConfig::scaled(args.seed, args.scale)
    };
    let registry = generate_registry(gen_config);
    let generate_ms = t.elapsed().as_secs_f64() * 1000.0;
    let models = registry.models;
    let n = models.len();
    println!(
        "bench_registry: {n} models, {} elements, {} attributes (seed {}, scale {}) \
         generated in {generate_ms:.0} ms",
        models.iter().map(|m| m.len()).sum::<usize>(),
        registry.config.attributes,
        args.seed,
        args.scale
    );

    // --- Stage 1: index build ------------------------------------------------
    let config = BlockingConfig {
        threads: args.threads,
        ..BlockingConfig::default()
    };
    let t = Instant::now();
    let index = RegistryIndex::build(&models, config);
    let index_build_ms = t.elapsed().as_secs_f64() * 1000.0;
    println!(
        "  index build       {index_build_ms:9.2} ms   {} terms over {n} models ({} thread(s))",
        index.vocabulary(),
        args.threads
    );

    // --- Queries: perturbed derivatives of registry members ------------------
    // Origins are spread across the *interquartile* size range: the
    // skewed distribution's mega-model tail would dominate the
    // exhaustive baseline's wall time (engine cost is quadratic in
    // schema size) without changing the recall question being asked.
    let mut by_size: Vec<usize> = (0..n).collect();
    by_size.sort_by_key(|&o| (models[o].len(), o));
    let origins: Vec<usize> = (0..args.queries)
        .map(|q| {
            let p = 0.25 + 0.5 * (q as f64 + 0.5) / args.queries as f64;
            by_size[((p * n as f64) as usize).min(n - 1)]
        })
        .collect();
    let queries: Vec<_> = origins
        .iter()
        .map(|&o| {
            let pair = perturb_schema(&models[o], &PerturbConfig::mild(args.seed ^ o as u64));
            (o, pair.target)
        })
        .collect();

    // --- Stage 2: retrieval throughput at the deepest k ----------------------
    let k_max = *K_LIST.iter().max().expect("K_LIST nonempty");
    let t = Instant::now();
    let retrieved: Vec<_> = queries
        .iter()
        .map(|(_, q)| index.query(q, k_max.max(args.k)))
        .collect();
    let retrieval_ms = t.elapsed().as_secs_f64() * 1000.0;
    let pairs_scored = queries.len() * n;
    let pairs_per_sec = pairs_scored as f64 / (retrieval_ms / 1000.0);
    println!(
        "  retrieval         {retrieval_ms:9.2} ms   {pairs_scored} (query, model) pairs \
         = {pairs_per_sec:.0} pairs/s"
    );

    // --- Stage 3: exhaustive full-engine sweep (the baseline) ----------------
    let locked = HashMap::new();
    // Both engines get the host's full parallelism — the comparison is
    // blocking vs no blocking, not threads vs no threads.
    let engine_config = MatchConfig {
        threads: cores,
        ..MatchConfig::default()
    };
    let mut exhaustive_engine = HarmonyEngine::default();
    exhaustive_engine.set_match_config(engine_config);
    let t = Instant::now();
    let exhaustive_best: Vec<usize> = queries
        .iter()
        .map(|(_, q)| {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (ordinal, model) in models.iter().enumerate() {
                let result = exhaustive_engine.run(q, model, &locked);
                let score = engine_model_score(&result.matrix);
                // Ties break to the earliest ordinal, matching the
                // index's stable-id tie-break closely enough for a
                // recall denominator.
                if score > best.1 {
                    best = (ordinal, score);
                }
            }
            best.0
        })
        .collect();
    let exhaustive_ms = t.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;
    println!("  exhaustive sweep  {exhaustive_ms:9.2} ms/query   (full engine x {n} models)");

    // --- Stage 4: block-then-rerank at the default k -------------------------
    let mut blocked_engine = HarmonyEngine::default();
    blocked_engine.set_match_config(engine_config);
    let t = Instant::now();
    let blocked_best: Vec<Option<usize>> = queries
        .iter()
        .map(|(_, q)| {
            let result =
                block_then_rerank(&mut blocked_engine, &index, &models, q, args.k, &budget)
                    .expect("unlimited budget");
            result.ranked.first().map(|r| r.ordinal)
        })
        .collect();
    let blocked_ms = t.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;
    let speedup = exhaustive_ms / blocked_ms;
    println!(
        "  block-then-rerank {blocked_ms:9.2} ms/query   (top-{} of {n}, speedup {speedup:.1}x)",
        args.k
    );

    // --- Recall vs exhaustive at each k --------------------------------------
    let recall_at = |k: usize| -> f64 {
        let hits = retrieved
            .iter()
            .zip(&exhaustive_best)
            .filter(|(cands, best)| cands.iter().take(k).any(|c| c.ordinal == **best))
            .count();
        hits as f64 / queries.len() as f64
    };
    let mut ks: Vec<usize> = K_LIST.to_vec();
    if !ks.contains(&args.k) {
        ks.push(args.k);
        ks.sort_unstable();
    }
    let recall_default = recall_at(args.k);
    // How often the rerank stage agrees with the exhaustive sweep's
    // winner outright — stricter than recall, reported for context.
    let top1_agreement = blocked_best
        .iter()
        .zip(&exhaustive_best)
        .filter(|(b, e)| **b == Some(**e))
        .count() as f64
        / queries.len() as f64;
    let mut recall_json = String::new();
    for (i, &k) in ks.iter().enumerate() {
        let sep = if i + 1 == ks.len() { "" } else { ", " };
        let _ = write!(recall_json, "\"{k}\": {:.3}{sep}", recall_at(k));
    }
    println!(
        "  recall vs exhaustive  {}   top-1 agreement {top1_agreement:.2}",
        ks.iter()
            .map(|&k| format!("@{k}={:.2}", recall_at(k)))
            .collect::<Vec<_>>()
            .join("  ")
    );

    let json = format!(
        "{{\n  \"seed\": {},\n  \"scale\": {},\n  \"models\": {n},\n  \
         \"elements\": {},\n  \"queries\": {},\n  \"k\": {},\n  \
         \"index_threads\": {},\n  \"quick\": {},\n  \
         \"generate_ms\": {generate_ms:.3},\n  \"index_build_ms\": {index_build_ms:.3},\n  \
         \"retrieval_ms\": {retrieval_ms:.3},\n  \"pairs_per_sec\": {pairs_per_sec:.0},\n  \
         \"exhaustive_ms_per_query\": {exhaustive_ms:.3},\n  \
         \"blocked_ms_per_query\": {blocked_ms:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"recall_at_k\": {{{recall_json}}},\n  \
         \"recall_at_default_k\": {recall_default:.3},\n  \
         \"top1_agreement\": {top1_agreement:.3}\n}}\n",
        args.seed,
        args.scale,
        models.iter().map(|m| m.len()).sum::<usize>(),
        args.queries,
        args.k,
        args.threads,
        args.quick,
    );
    std::fs::write(&args.out, &json).expect("write report");
    println!("  report written to {}", args.out);

    if recall_default < RECALL_FLOOR {
        eprintln!(
            "bench_registry: FAILED — recall {recall_default:.3} at k={} below {RECALL_FLOOR}",
            args.k
        );
        std::process::exit(1);
    }
    if !args.quick && speedup <= 1.0 {
        eprintln!(
            "bench_registry: FAILED — block-then-rerank ({blocked_ms:.1} ms/query) not faster \
             than exhaustive ({exhaustive_ms:.1} ms/query)"
        );
        std::process::exit(1);
    }
    println!("bench_registry: ok");
}
