//! Load generator for the workbench daemon.
//!
//! Spawns an in-process `iwb-server` (or targets an external one via
//! `--addr`), drives N concurrent client sessions — each loading its
//! own pair of generated ER schemata, matching them, and issuing a
//! read-heavy command mix — then reports client-side throughput and
//! the server's own latency histogram (`stats` command), verifies
//! zero cross-session schema leakage, and writes a machine-readable
//! report to `BENCH_server.json`.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_server -- \
//!     --sessions 8 --commands 200
//! ```
//!
//! With `--faults SPEC` the in-process daemon runs under deterministic
//! fault injection (see `iwb_server::fault`) and the report adds the
//! chaos view: protocol errors observed, recovery latency (first error
//! to the next successful command, per incident), quarantine events
//! handled by close-and-recreate, and the server's error-budget
//! counters:
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_server -- \
//!     --sessions 8 --commands 200 \
//!     --faults seed=42,exec-panic=0.02,exec-slow=0.05:5
//! ```
//!
//! With `--deadline-ms N` the in-process daemon applies a default
//! deadline to every shell command; commands reaped by it come back
//! as `command aborted: deadline exceeded` and are counted instead of
//! failing the run. `--max-pending N` enables admission control.
//!
//! With `--cancel-storm` the tool switches workloads entirely: every
//! session issues one command that hangs (via the `exec-hang` fault
//! point), an admin connection cancels each in turn, and the report
//! measures cancel latency (cancel issued → command aborted), the
//! shed rate under a concurrent connection burst, and that no session
//! leaks — every stormed session must remain attachable and close
//! cleanly afterwards.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_server -- \
//!     --cancel-storm --sessions 8
//! ```
//!
//! With `--fleet` the tool spins up three `--no-recover` backends —
//! each with its **own** store directory, streaming every committed
//! journal record to its rendezvous successor — behind two in-process
//! `workbench-router`s, runs the session workload twice (a baseline
//! pass, then a pass with the most-loaded backend hard-killed
//! mid-run so failover must promote from the successors' local
//! replicas), and writes `BENCH_fleet.json` gating **zero session
//! loss** and **bounded steady-state replication lag**, reporting
//! command p50/p99 with vs without failover plus replication-lag
//! percentiles sampled from `repl status`. `--quick` shrinks it to a
//! CI smoke.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_server -- --fleet
//! ```

use iwb_loaders::to_er_text;
use iwb_registry::GeneratorConfig;
use iwb_server::client::Client;
use iwb_server::fault::{FaultSpec, EXEC_HANG};
use iwb_server::server::{serve, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

struct Args {
    sessions: usize,
    commands: usize,
    workers: usize,
    seed: u64,
    scale: f64,
    addr: Option<String>,
    faults: Option<String>,
    /// Default per-command deadline applied by the in-process daemon.
    deadline_ms: Option<u64>,
    /// Admission-control bound for the in-process daemon.
    max_pending: Option<usize>,
    /// Run the cancel-storm workload instead of the load mix.
    cancel_storm: bool,
    /// Run the fleet workload (3 backends behind a `workbench-router`)
    /// instead of the load mix: a baseline pass, then a pass with the
    /// most-loaded backend hard-killed mid-run, gating zero session
    /// loss and reporting p50/p99 with vs without failover.
    fleet: bool,
    /// Shrink the fleet workload to a CI smoke.
    quick: bool,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 8,
            commands: 200,
            workers: 8,
            seed: 42,
            scale: 0.0005,
            addr: None,
            faults: None,
            deadline_ms: None,
            max_pending: None,
            cancel_storm: false,
            fleet: false,
            quick: false,
            out: "BENCH_server.json".to_owned(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_server [--sessions N] [--commands N] [--workers N] \
         [--seed N] [--scale F] [--addr HOST:PORT] [--faults SPEC] \
         [--deadline-ms N] [--max-pending N] [--cancel-storm] \
         [--fleet [--quick]] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--sessions" => out.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--commands" => out.commands = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => out.workers = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => out.scale = value().parse().unwrap_or_else(|_| usage()),
            "--addr" => out.addr = Some(value()),
            "--faults" => out.faults = Some(value()),
            "--deadline-ms" => out.deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--max-pending" => out.max_pending = Some(value().parse().unwrap_or_else(|_| usage())),
            "--cancel-storm" => out.cancel_storm = true,
            "--fleet" => out.fleet = true,
            "--quick" => out.quick = true,
            "--out" => out.out = value(),
            _ => usage(),
        }
    }
    if out.sessions == 0 || out.commands < 4 {
        usage();
    }
    if out.fleet && (out.addr.is_some() || out.cancel_storm || out.faults.is_some()) {
        eprintln!("--fleet spins up its own in-process fleet; it cannot combine with --addr, --cancel-storm, or --faults");
        usage();
    }
    if out.addr.is_some() && (out.faults.is_some() || out.cancel_storm || out.deadline_ms.is_some())
    {
        eprintln!(
            "--faults/--deadline-ms/--cancel-storm configure the in-process daemon; \
             they cannot target --addr"
        );
        usage();
    }
    out
}

/// What one session observed.
struct SessionReport {
    issued: u64,
    errors: u64,
    quarantines: u64,
    /// Commands reaped by the server's default deadline.
    deadline_aborts: u64,
    /// Error → next-success gaps, one per incident.
    recoveries: Vec<Duration>,
    /// The final export (`None` if the session never reached one).
    export: Option<String>,
}

/// One session's workload: its own schema pair plus the command loop.
/// Under `chaos`, protocol errors are expected: they are counted, the
/// first error of an incident starts a recovery clock that the next
/// success stops, and a quarantined session is closed and recreated.
/// Under `deadline`, `command aborted: deadline exceeded` replies are
/// likewise expected and tallied separately.
fn run_session(
    addr: SocketAddr,
    index: usize,
    commands: usize,
    seed: u64,
    scale: f64,
    chaos: bool,
    deadline: bool,
) -> SessionReport {
    let tag = format!("bench{index}");
    let left = format!("{tag}_left");
    let right = format!("{tag}_right");

    // Two small generated ER models, distinct per session.
    let config = GeneratorConfig {
        models: 2,
        ..GeneratorConfig::scaled(seed ^ (index as u64).wrapping_mul(0x9e37_79b9), scale)
    };
    let registry = iwb_registry::generate_registry(config);
    let left_text = to_er_text(&registry.models[0]);
    let right_text = to_er_text(&registry.models[1]);

    let mut client = Client::connect(addr).expect("connect");
    client.session_new(Some(&tag)).expect("session new");

    let mut report = SessionReport {
        issued: 0,
        errors: 0,
        quarantines: 0,
        deadline_aborts: 0,
        recoveries: Vec::new(),
        export: None,
    };
    let mut error_since: Option<Instant> = None;

    // Issue one request; returns the body on success. Under chaos an
    // `err` reply feeds the incident clock instead of aborting; under
    // a deadline, reaped commands are tallied and skipped.
    #[allow(clippy::too_many_arguments)]
    fn step(
        client: &mut Client,
        report: &mut SessionReport,
        error_since: &mut Option<Instant>,
        chaos: bool,
        deadline: bool,
        tag: &str,
        reload: &[(String, String)],
        run: impl FnOnce(&mut Client) -> std::io::Result<iwb_server::client::Response>,
    ) -> Option<String> {
        let resp = run(client).expect("request io");
        report.issued += 1;
        if resp.ok {
            if let Some(start) = error_since.take() {
                report.recoveries.push(start.elapsed());
            }
            return Some(resp.body);
        }
        if resp.body.contains("command aborted: deadline exceeded") {
            assert!(
                deadline || chaos,
                "session {tag}: unexpected deadline abort: {}",
                resp.body
            );
            report.deadline_aborts += 1;
            return None;
        }
        assert!(chaos, "session {tag}: server error: {}", resp.body);
        report.errors += 1;
        error_since.get_or_insert_with(Instant::now);
        if resp.body.contains("quarantined") {
            // The supervision contract: quarantined sessions reject
            // commands but still close. Recreate and reload to keep
            // the load alive.
            report.quarantines += 1;
            client
                .request(&format!("session close {tag}"))
                .expect("close quarantined");
            client.session_new(Some(tag)).expect("recreate session");
            for (command, body) in reload {
                let _ = client.request_with_heredoc(command, body);
            }
        }
        None
    }

    let reload = [
        (format!("load er {left}"), left_text.clone()),
        (format!("load er {right}"), right_text.clone()),
    ];
    let mut run = |report: &mut SessionReport,
                   error_since: &mut Option<Instant>,
                   command: String,
                   heredoc: Option<&str>|
     -> Option<String> {
        step(
            &mut client,
            report,
            error_since,
            chaos,
            deadline,
            &tag,
            &reload,
            |c| match heredoc {
                Some(body) => c.request_with_heredoc(&command, body),
                None => c.request(&command),
            },
        )
    };

    run(
        &mut report,
        &mut error_since,
        format!("load er {left}"),
        Some(&left_text),
    );
    run(
        &mut report,
        &mut error_since,
        format!("load er {right}"),
        Some(&right_text),
    );
    run(
        &mut report,
        &mut error_since,
        format!("match {left} {right}"),
        None,
    );

    // Read-heavy steady state, with a periodic re-match.
    while report.issued < commands.saturating_sub(1) as u64 {
        let command = match report.issued % 5 {
            0 => format!("show matrix {left} {right}"),
            1 => "show coverage".to_owned(),
            2 => format!("show schema {left}"),
            3 => "query ? ? ?".to_owned(),
            _ => format!("match {left} {right}"),
        };
        run(&mut report, &mut error_since, command, None);
    }
    report.export = run(&mut report, &mut error_since, "export".to_owned(), None);
    report
}

/// What the cancel-storm observed.
struct StormReport {
    /// Cancel acknowledged → `command aborted: cancelled` reply, per victim.
    latencies: Vec<Duration>,
    /// RETRY-AFTER rejections seen by the concurrent probe burst.
    probes_shed: u64,
    probes_total: u64,
    /// Stormed sessions that failed to re-attach or close afterwards.
    leaks: usize,
    elapsed: Duration,
}

/// Cancel-storm workload: every victim session issues one command
/// that the `exec-hang` fault point parks for 60 s, a probe burst
/// measures the shed rate while all victims are in flight, then an
/// admin connection cancels each victim and the time from the cancel
/// being acknowledged to the victim's command aborting is recorded.
fn run_cancel_storm(args: &Args, handle: &ServerHandle) -> StormReport {
    let victims = args.sessions;
    let addr = handle.addr();
    let started = Instant::now();

    // All victims arm their hang together; main passes the barrier to
    // know the storm is underway.
    let barrier = Arc::new(Barrier::new(victims + 1));
    let joins: Vec<_> = (0..victims)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("victim connect");
                client
                    .session_new(Some(&format!("storm{i}")))
                    .expect("victim session");
                barrier.wait();
                // Parks on the exec-hang fault until cancelled.
                let resp = client.request("show coverage").expect("victim request io");
                let returned = Instant::now();
                assert!(
                    !resp.ok && resp.body.contains("command aborted: cancelled"),
                    "victim storm{i}: expected a cancel abort, got: {}",
                    resp.body
                );
                returned
            })
        })
        .collect();
    barrier.wait();
    // Give the hang commands time to reach the server and arm their
    // cancel tokens before probing and cancelling.
    thread::sleep(Duration::from_millis(50));

    // Overload burst: with every victim parked, concurrent probes past
    // the admission bound must be shed with RETRY-AFTER, not queued.
    let probes_total = (victims as u64).max(8) * 2;
    let probe_joins: Vec<_> = (0..probes_total)
        .map(|_| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("probe connect");
                match c.request("ping") {
                    Ok(r) if r.ok => 0u64,
                    Ok(r) if r.body.starts_with("RETRY-AFTER") => 1,
                    Ok(r) => panic!("probe: unexpected error: {}", r.body),
                    // The acceptor may close a shed connection before
                    // the probe's request is read.
                    Err(_) => 1,
                }
            })
        })
        .collect();
    let probes_shed: u64 = probe_joins
        .into_iter()
        .map(|j| j.join().expect("probe thread"))
        .sum();

    // Cancel each victim and time cancel-ack → abort.
    let mut admin = Client::connect(addr).expect("admin connect");
    let mut cancel_issued = vec![started; victims];
    for (i, slot) in cancel_issued.iter_mut().enumerate() {
        loop {
            let before = Instant::now();
            let resp = admin
                .request(&format!("cancel storm{i}"))
                .expect("cancel io");
            if resp.ok {
                *slot = before;
                break;
            }
            assert!(
                resp.body.contains("no command in flight"),
                "cancel storm{i}: {}",
                resp.body
            );
            thread::sleep(Duration::from_millis(2));
        }
    }

    let latencies: Vec<Duration> = joins
        .into_iter()
        .zip(&cancel_issued)
        .map(|(j, &issued)| {
            let returned = j.join().expect("victim thread");
            returned.saturating_duration_since(issued)
        })
        .collect();

    // Zero session leakage: every stormed session must still be
    // attachable (alive, not quarantined) and close cleanly.
    let mut leaks = 0usize;
    for i in 0..victims {
        let attach = admin
            .request(&format!("session attach storm{i}"))
            .expect("attach io");
        let close = admin
            .request(&format!("session close storm{i}"))
            .expect("close io");
        if !attach.ok || !close.ok {
            eprintln!(
                "LEAK: storm{i} attach ok={} close ok={}: {} / {}",
                attach.ok, close.ok, attach.body, close.body
            );
            leaks += 1;
        }
    }

    StormReport {
        latencies,
        probes_shed,
        probes_total,
        leaks,
        elapsed: started.elapsed(),
    }
}

/// Fixed tiny schema pair for the fleet workload: the measurement
/// target is routing and failover latency, not matcher throughput.
const FLEET_SCHEMA_A: &str =
    "entity SHIPMENT \"An outgoing shipment.\" { ship_dt : date \"Date shipped.\" }";
const FLEET_SCHEMA_B: &str =
    "entity DELIVERY \"A delivery record.\" { deliver_dt : date \"Date delivered.\" }";

/// What one fleet pass observed client-side.
struct FleetPhase {
    /// Per-command round-trip latencies (successful commands only).
    latencies: Vec<Duration>,
    errors: u64,
    elapsed: Duration,
}

/// Reserve `n` concrete loopback addresses: replication peers must be
/// known before any backend starts, so ephemeral `:0` binding is not
/// an option. Each listener is dropped immediately; the tiny window
/// until the backend rebinds is safe on loopback in a single process.
fn reserve_addrs(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            std::net::TcpListener::bind("127.0.0.1:0")
                .expect("reserve addr")
                .local_addr()
                .expect("local addr")
                .to_string()
        })
        .collect()
}

/// Spawn one replicating fleet backend per peer address, each with its
/// own store under `scratch` (no shared disk, no startup sweep — the
/// router directs per-session recovery, and failover promotes from the
/// successor's streamed replica).
fn fleet_backends(scratch: &std::path::Path, peers: &[String]) -> Vec<Option<ServerHandle>> {
    use iwb_server::repl::ReplConfig;
    peers
        .iter()
        .enumerate()
        .map(|(slot, addr)| {
            let store = scratch.join(format!("b{slot}"));
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match serve(ServerConfig {
                    addr: addr.clone(),
                    store_dir: Some(store.clone()),
                    recover: false,
                    repl: Some(ReplConfig {
                        peers: peers.to_vec(),
                        self_index: slot,
                    }),
                    ..ServerConfig::default()
                }) {
                    Ok(handle) => break Some(handle),
                    Err(_) if Instant::now() < deadline => {
                        thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => panic!("bind fleet backend {addr}: {e}"),
                }
            }
        })
        .collect()
}

/// Poll every backend's `repl status` and collect each source row's
/// replication lag (records committed locally but not yet acknowledged
/// by the successor's replica). Dead backends are skipped, not errors
/// — the sampler outlives the kill.
fn sample_repl_lag(peers: &[String], stop: &std::sync::atomic::AtomicBool) -> Vec<u64> {
    use std::sync::atomic::Ordering;
    let mut samples = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        for addr in peers {
            let Ok(mut c) = Client::connect(addr.as_str()) else {
                continue;
            };
            let Ok(resp) = c.request("repl status") else {
                continue;
            };
            if !resp.ok {
                continue;
            }
            for line in resp.body.lines() {
                let Some(fields) = line.trim().strip_prefix("source ") else {
                    continue;
                };
                if let Some(lag) = fields
                    .split_whitespace()
                    .find_map(|f| f.strip_prefix("lag="))
                    .and_then(|v| v.parse::<u64>().ok())
                {
                    samples.push(lag);
                }
            }
        }
        thread::sleep(Duration::from_millis(5));
    }
    samples
}

/// Percentile over an unsorted integer sample set (sorts in place).
fn pctl_u64(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Drive `sessions` concurrent sessions through the routers (session
/// `i` uses router `i % routers`): per session one unmeasured warm-up
/// (two loads and a match), then `commands` measured commands, every
/// 4th mutating. `progress` counts measured commands fleet-wide so
/// the caller can time a kill.
fn run_fleet_phase(
    addrs: Arc<Vec<SocketAddr>>,
    sessions: usize,
    commands: usize,
    progress: Arc<std::sync::atomic::AtomicU64>,
) -> FleetPhase {
    use std::sync::atomic::Ordering;
    let started = Instant::now();
    let joins: Vec<_> = (0..sessions)
        .map(|i| {
            let progress = Arc::clone(&progress);
            let addr = addrs[i % addrs.len()];
            thread::spawn(move || {
                let mut latencies = Vec::with_capacity(commands);
                let mut errors = 0u64;
                let mut c = Client::connect(addr).expect("connect router");
                c.session_new(Some(&format!("f{i}")))
                    .expect("place session");
                for (cmd, body) in [
                    ("load er a", Some(FLEET_SCHEMA_A)),
                    ("load er b", Some(FLEET_SCHEMA_B)),
                    ("match a b", None),
                ] {
                    let resp = match body {
                        Some(b) => c.request_with_heredoc(cmd, b),
                        None => c.request(cmd),
                    };
                    resp.expect("warm-up request").expect_ok().expect("warm-up");
                }
                for k in 0..commands {
                    let cmd = if k % 4 == 0 {
                        "match a b"
                    } else {
                        "show coverage"
                    };
                    let t = Instant::now();
                    match c.request(cmd) {
                        Ok(resp) if resp.ok => latencies.push(t.elapsed()),
                        _ => errors += 1,
                    }
                    progress.fetch_add(1, Ordering::Relaxed);
                }
                (latencies, errors)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for j in joins {
        let (lat, err) = j.join().expect("fleet session thread");
        latencies.extend(lat);
        errors += err;
    }
    FleetPhase {
        latencies,
        errors,
        elapsed: started.elapsed(),
    }
}

/// Percentile in microseconds over a sorted-in-place sample set.
fn pctl_us(samples: &mut [Duration], p: f64) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx].as_micros()
}

/// Router-side counters summed over every router in a pass.
#[derive(Default)]
struct PassCounters {
    failovers: u64,
    promotions: u64,
    stale_replica_refusals: u64,
    duplicate_acks: u64,
}

/// The fleet workload: a baseline pass (3 replicating `--no-recover`
/// backends, one store each, behind 2 in-process routers), then an
/// identical pass with the most-loaded backend hard-killed once half
/// the measured commands have completed — failover must promote from
/// the successors' streamed replicas, there is no shared disk to fall
/// back on. Gates zero session loss, at least one failover and
/// promotion, no stale-replica refusals, and bounded steady-state
/// replication lag; reports p50/p99 with vs without failover plus
/// replication-lag percentiles.
fn run_fleet(args: &Args) {
    use iwb_router::router::{serve as serve_router, RouterConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let backends_n = 3usize;
    let routers_n = 2usize;
    let (sessions, commands) = if args.quick {
        (4, 16)
    } else {
        (args.sessions, args.commands)
    };
    let out = if args.out == "BENCH_server.json" {
        "BENCH_fleet.json".to_owned()
    } else {
        args.out.clone()
    };
    println!(
        "bench_server: fleet, {sessions} sessions x {commands} commands over \
         {backends_n} replicating backends / {routers_n} routers"
    );

    let scratch = std::env::temp_dir().join(format!("iwb-bench-fleet-{}", std::process::id()));

    let run_pass = |tag: &str, kill: bool| -> (FleetPhase, PassCounters, Vec<u64>, usize) {
        let pass_dir = scratch.join(tag);
        let _ = std::fs::remove_dir_all(&pass_dir);
        let peers = reserve_addrs(backends_n);
        let mut backends = fleet_backends(&pass_dir, &peers);
        let routers: Vec<_> = (0..routers_n)
            .map(|_| {
                serve_router(RouterConfig {
                    backends: peers.clone(),
                    ..RouterConfig::default()
                })
                .expect("bind router")
            })
            .collect();
        let addrs = Arc::new(routers.iter().map(|r| r.addr()).collect::<Vec<_>>());

        // Replication-lag sampler: polls `repl status` on every live
        // backend for the whole pass.
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let peers = peers.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || sample_repl_lag(&peers, &stop))
        };

        let progress = Arc::new(AtomicU64::new(0));
        let phase = {
            let progress = Arc::clone(&progress);
            let addrs = Arc::clone(&addrs);
            thread::spawn(move || run_fleet_phase(addrs, sessions, commands, progress))
        };
        if kill {
            let mut owned = vec![0usize; backends_n];
            for i in 0..sessions {
                owned[iwb_router::hash::rank(&format!("f{i}"), backends_n)[0]] += 1;
            }
            let victim = (0..backends_n).max_by_key(|&b| owned[b]).unwrap();
            let half = (sessions * commands) as u64 / 2;
            while progress.load(Ordering::Relaxed) < half {
                thread::sleep(Duration::from_millis(2));
            }
            println!(
                "  [{tag}] killing backend {victim} (owns {} of {sessions} sessions)",
                owned[victim]
            );
            backends[victim].take().unwrap().kill();
        }
        let phase = phase.join().expect("fleet phase");
        stop.store(true, Ordering::Relaxed);
        let lag_samples = sampler.join().expect("lag sampler");

        // Zero-loss sweep: every session must re-attach and export
        // (through either router — use the first).
        let mut lost = 0usize;
        for i in 0..sessions {
            let id = format!("f{i}");
            let survived = Client::connect(addrs[0])
                .ok()
                .and_then(|mut c| {
                    c.session_attach(&id).ok()?;
                    c.request("export").ok().filter(|r| r.ok)
                })
                .is_some();
            if !survived {
                eprintln!("  [{tag}] LOST session {id}");
                lost += 1;
            }
        }
        let mut counters = PassCounters::default();
        for r in &routers {
            counters.failovers += r.stats().failovers_count();
            counters.promotions += r.stats().promotions_count();
            counters.stale_replica_refusals += r.stats().stale_replica_refusals_count();
            counters.duplicate_acks += r.stats().duplicate_acks_count();
        }
        for r in routers {
            r.shutdown();
            r.join();
        }
        for b in backends.into_iter().flatten() {
            b.shutdown();
            b.join();
        }
        let _ = std::fs::remove_dir_all(&pass_dir);
        (phase, counters, lag_samples, lost)
    };

    let (mut base, _, mut base_lag, base_lost) = run_pass("baseline", false);
    let (mut fail, counters, mut fail_lag, lost) = run_pass("failover", true);
    let _ = std::fs::remove_dir_all(&scratch);

    let base_p50 = pctl_us(&mut base.latencies, 0.50);
    let base_p99 = pctl_us(&mut base.latencies, 0.99);
    let fail_p50 = pctl_us(&mut fail.latencies, 0.50);
    let fail_p99 = pctl_us(&mut fail.latencies, 0.99);
    let errors = base.errors + fail.errors;
    // Steady-state lag comes from the healthy baseline pass; the
    // failover pass also reports its max, which includes sources whose
    // successor was the victim (their lag grows until the pass ends —
    // expected, and visible rather than hidden).
    let lag_p50 = pctl_u64(&mut base_lag, 0.50);
    let lag_p99 = pctl_u64(&mut base_lag, 0.99);
    let lag_max = base_lag.last().copied().unwrap_or(0);
    let fail_lag_max = pctl_u64(&mut fail_lag, 1.0);
    println!(
        "  baseline: p50 {base_p50} us, p99 {base_p99} us over {} commands ({:.3}s)",
        base.latencies.len(),
        base.elapsed.as_secs_f64()
    );
    println!(
        "  failover: p50 {fail_p50} us, p99 {fail_p99} us over {} commands ({:.3}s), \
         {} failovers, {} promotions, {} stale refusals, {} duplicate acks",
        fail.latencies.len(),
        fail.elapsed.as_secs_f64(),
        counters.failovers,
        counters.promotions,
        counters.stale_replica_refusals,
        counters.duplicate_acks
    );
    println!(
        "  replication lag (records): p50 {lag_p50}, p99 {lag_p99}, max {lag_max} over {} \
         samples (failover-pass max {fail_lag_max})",
        base_lag.len()
    );
    println!("  sessions lost: {lost} (baseline {base_lost})");

    let json = format!(
        "{{\n  \"mode\": \"fleet\",\n  \"backends\": {backends_n},\n  \"routers\": {routers_n},\n  \
         \"sessions\": {sessions},\n  \
         \"commands_per_session\": {commands},\n  \"baseline_p50_us\": {base_p50},\n  \
         \"baseline_p99_us\": {base_p99},\n  \"failover_p50_us\": {fail_p50},\n  \
         \"failover_p99_us\": {fail_p99},\n  \"failovers\": {},\n  \
         \"promotions\": {},\n  \"stale_replica_refusals\": {},\n  \
         \"duplicate_acks\": {},\n  \"protocol_errors\": {errors},\n  \
         \"repl_lag_samples\": {},\n  \"repl_lag_p50\": {lag_p50},\n  \
         \"repl_lag_p99\": {lag_p99},\n  \"repl_lag_max\": {lag_max},\n  \
         \"failover_repl_lag_max\": {fail_lag_max},\n  \
         \"sessions_lost\": {}\n}}\n",
        counters.failovers,
        counters.promotions,
        counters.stale_replica_refusals,
        counters.duplicate_acks,
        base_lag.len(),
        lost + base_lost,
    );
    std::fs::write(&out, &json).expect("write report");
    println!("report written to {out}");

    // Shipping is synchronous with the commit, so a healthy fleet's
    // lag should hover at zero; a small allowance covers samples taken
    // inside the commit window. STALE-REPLICA must never fire here:
    // every acked mutation was offered to the successor before its ack.
    let lag_bound = 4u64;
    if lost + base_lost > 0
        || counters.failovers == 0
        || counters.promotions == 0
        || counters.stale_replica_refusals > 0
        || errors > 0
        || lag_max > lag_bound
    {
        eprintln!(
            "bench_server: FAILED — fleet invariants violated (lost={}, failovers={}, \
             promotions={}, stale={}, errors={errors}, lag_max={lag_max} bound {lag_bound})",
            lost + base_lost,
            counters.failovers,
            counters.promotions,
            counters.stale_replica_refusals,
        );
        std::process::exit(1);
    }
    println!(
        "bench_server: ok — fleet failover from streamed replicas, zero session loss, \
         steady-state lag <= {lag_bound}"
    );
}

fn mean_max_us(samples: &[Duration]) -> (u128, u128) {
    if samples.is_empty() {
        return (0, 0);
    }
    (
        samples.iter().map(Duration::as_micros).sum::<u128>() / samples.len() as u128,
        samples.iter().map(Duration::as_micros).max().unwrap_or(0),
    )
}

fn main() {
    let args = parse_args();
    let fault_plan = args.faults.as_deref().map(|spec| {
        FaultSpec::parse(spec)
            .unwrap_or_else(|e| {
                eprintln!("bad --faults spec: {e}");
                usage();
            })
            .build()
    });
    let chaos = fault_plan.as_ref().is_some_and(|p| p.is_active());
    if chaos {
        iwb_server::quiet_injected_panics();
    }

    if args.fleet {
        run_fleet(&args);
        return;
    }

    if args.cancel_storm {
        // The storm parks one worker per victim, so the daemon needs
        // headroom for the admin connection, and the admission bound
        // sits just above the victims so the probe burst sheds.
        let handle = serve(ServerConfig {
            workers: args.sessions + 2,
            max_sessions: args.sessions + 4,
            max_pending: args.max_pending.unwrap_or(args.sessions + 2),
            faults: FaultSpec::seeded(args.seed)
                .rate(EXEC_HANG, 1.0)
                .millis(EXEC_HANG, 60_000)
                .build(),
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = handle.addr();
        println!(
            "bench_server: cancel-storm, {} victims against {addr} (seed {})",
            args.sessions, args.seed
        );

        let report = run_cancel_storm(&args, &handle);
        let (mean_us, max_us) = mean_max_us(&report.latencies);
        let cancelled = handle.stats().commands_cancelled_count();
        let shed = handle.stats().connections_shed_count();
        let shed_rate = report.probes_shed as f64 / report.probes_total as f64;
        println!(
            "cancel latency: mean {mean_us} us, max {max_us} us over {} cancels",
            report.latencies.len()
        );
        println!(
            "admission: {}/{} probes shed ({:.0}% shed rate), server shed counter {shed}",
            report.probes_shed,
            report.probes_total,
            shed_rate * 100.0
        );
        println!(
            "sessions: {} stormed, {} leaked, server cancelled counter {cancelled}",
            args.sessions, report.leaks
        );

        let json = format!(
            "{{\n  \"mode\": \"cancel-storm\",\n  \"seed\": {},\n  \"sessions\": {},\n  \
             \"elapsed_s\": {:.3},\n  \"cancel_latency_mean_us\": {mean_us},\n  \
             \"cancel_latency_max_us\": {max_us},\n  \"probes_shed\": {},\n  \
             \"probes_total\": {},\n  \"shed_rate\": {shed_rate:.3},\n  \
             \"server_cancelled\": {cancelled},\n  \"server_shed\": {shed},\n  \
             \"session_leaks\": {}\n}}\n",
            args.seed,
            args.sessions,
            report.elapsed.as_secs_f64(),
            report.probes_shed,
            report.probes_total,
            report.leaks,
        );
        std::fs::write(&args.out, &json).expect("write report");
        println!("report written to {}", args.out);

        let mut admin = Client::connect(addr).expect("admin connect");
        println!("server stats:");
        for line in admin.stats().expect("stats").lines() {
            println!("  {line}");
        }
        admin.shutdown().expect("shutdown");
        handle.join();

        let ok = report.leaks == 0
            && cancelled >= args.sessions as u64
            && report.probes_shed > 0
            && report.latencies.len() == args.sessions;
        if !ok {
            eprintln!("bench_server: FAILED — cancel-storm invariants violated");
            std::process::exit(1);
        }
        println!("bench_server: ok — cancel-storm, zero session leakage");
        return;
    }

    // Either target an external daemon or spin one up in-process.
    let mut local: Option<ServerHandle> = None;
    let addr: SocketAddr = match &args.addr {
        Some(a) => a.parse().expect("bad --addr"),
        None => {
            let handle = serve(ServerConfig {
                workers: args.workers,
                max_sessions: args.sessions + 4,
                faults: fault_plan.unwrap_or_default(),
                default_deadline: args.deadline_ms.map(Duration::from_millis),
                max_pending: args.max_pending.unwrap_or(0),
                ..ServerConfig::default()
            })
            .expect("bind ephemeral port");
            let addr = handle.addr();
            local = Some(handle);
            addr
        }
    };

    println!(
        "bench_server: {} sessions x {} commands against {addr} (seed {}{}{})",
        args.sessions,
        args.commands,
        args.seed,
        match &args.faults {
            Some(spec) => format!(", faults {spec}"),
            None => String::new(),
        },
        match args.deadline_ms {
            Some(ms) => format!(", deadline {ms} ms"),
            None => String::new(),
        }
    );

    let started = Instant::now();
    let deadline = args.deadline_ms.is_some();
    let joins: Vec<_> = (0..args.sessions)
        .map(|i| {
            let (commands, seed, scale) = (args.commands, args.seed, args.scale);
            thread::spawn(move || run_session(addr, i, commands, seed, scale, chaos, deadline))
        })
        .collect();
    let results: Vec<SessionReport> = joins
        .into_iter()
        .map(|j| j.join().expect("session thread"))
        .collect();
    let elapsed = started.elapsed();

    // Zero cross-session leakage: session i's export must not mention
    // any other session's schema ids. Under chaos only sessions whose
    // final export succeeded are checkable.
    let mut leaks = 0usize;
    for (i, report) in results.iter().enumerate() {
        let Some(export) = &report.export else {
            continue;
        };
        for j in 0..args.sessions {
            if j != i && export.contains(&format!("bench{j}_")) {
                eprintln!("LEAK: session {i} export mentions bench{j}_*");
                leaks += 1;
            }
        }
    }

    let total: u64 = results.iter().map(|r| r.issued).sum();
    let secs = elapsed.as_secs_f64();
    println!(
        "client side: {total} commands in {secs:.3}s  ({:.0} cmd/s, {:.0} cmd/s/session)",
        total as f64 / secs,
        total as f64 / secs / args.sessions as f64
    );

    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let quarantines: u64 = results.iter().map(|r| r.quarantines).sum();
    let deadline_aborts: u64 = results.iter().map(|r| r.deadline_aborts).sum();
    if chaos {
        let recoveries: Vec<Duration> = results
            .iter()
            .flat_map(|r| r.recoveries.iter().copied())
            .collect();
        let (mean_us, max_us) = mean_max_us(&recoveries);
        println!(
            "chaos: {errors} protocol errors, {quarantines} quarantines handled, \
             {} recoveries (mean {mean_us} us, max {max_us} us)",
            recoveries.len()
        );
    }
    if deadline {
        println!(
            "deadline: {deadline_aborts} commands reaped by the {} ms default",
            args.deadline_ms.unwrap_or(0)
        );
    }

    let (cancelled, deadline_exceeded, shed) = match &local {
        Some(handle) => (
            handle.stats().commands_cancelled_count(),
            handle.stats().commands_deadline_exceeded_count(),
            handle.stats().connections_shed_count(),
        ),
        None => (0, 0, 0),
    };
    let json = format!(
        "{{\n  \"mode\": \"load\",\n  \"seed\": {},\n  \"sessions\": {},\n  \
         \"commands\": {},\n  \"workers\": {},\n  \"chaos\": {chaos},\n  \
         \"deadline_ms\": {},\n  \"elapsed_s\": {secs:.3},\n  \
         \"commands_total\": {total},\n  \"cmd_per_s\": {:.1},\n  \
         \"protocol_errors\": {errors},\n  \"quarantines\": {quarantines},\n  \
         \"deadline_aborts\": {deadline_aborts},\n  \"server_cancelled\": {cancelled},\n  \
         \"server_deadline_exceeded\": {deadline_exceeded},\n  \"server_shed\": {shed},\n  \
         \"cross_session_leaks\": {leaks}\n}}\n",
        args.seed,
        args.sessions,
        args.commands,
        args.workers,
        match args.deadline_ms {
            Some(ms) => ms.to_string(),
            None => "null".to_owned(),
        },
        total as f64 / secs,
    );
    std::fs::write(&args.out, &json).expect("write report");
    println!("report written to {}", args.out);

    let mut admin = Client::connect(addr).expect("admin connect");
    println!("server stats:");
    for line in admin.stats().expect("stats").lines() {
        println!("  {line}");
    }

    if local.is_some() {
        admin.shutdown().expect("shutdown");
    }
    if let Some(handle) = local {
        handle.join();
    }

    if leaks > 0 {
        eprintln!("bench_server: FAILED — {leaks} cross-session leak(s)");
        std::process::exit(1);
    }
    let checked = results.iter().filter(|r| r.export.is_some()).count();
    println!(
        "bench_server: ok — zero cross-session leakage ({checked}/{} exports checked)",
        results.len()
    );
}
