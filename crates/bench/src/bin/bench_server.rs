//! Load generator for the workbench daemon.
//!
//! Spawns an in-process `iwb-server` (or targets an external one via
//! `--addr`), drives N concurrent client sessions — each loading its
//! own pair of generated ER schemata, matching them, and issuing a
//! read-heavy command mix — then reports client-side throughput and
//! the server's own latency histogram (`stats` command), and verifies
//! zero cross-session schema leakage.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_server -- \
//!     --sessions 8 --commands 200
//! ```
//!
//! With `--faults SPEC` the in-process daemon runs under deterministic
//! fault injection (see `iwb_server::fault`) and the report adds the
//! chaos view: protocol errors observed, recovery latency (first error
//! to the next successful command, per incident), quarantine events
//! handled by close-and-recreate, and the server's error-budget
//! counters:
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_server -- \
//!     --sessions 8 --commands 200 \
//!     --faults seed=42,exec-panic=0.02,exec-slow=0.05:5
//! ```

use iwb_loaders::to_er_text;
use iwb_registry::GeneratorConfig;
use iwb_server::client::Client;
use iwb_server::fault::FaultSpec;
use iwb_server::server::{serve, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

struct Args {
    sessions: usize,
    commands: usize,
    workers: usize,
    seed: u64,
    scale: f64,
    addr: Option<String>,
    faults: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 8,
            commands: 200,
            workers: 8,
            seed: 42,
            scale: 0.0005,
            addr: None,
            faults: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_server [--sessions N] [--commands N] [--workers N] \
         [--seed N] [--scale F] [--addr HOST:PORT] [--faults SPEC]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--sessions" => out.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--commands" => out.commands = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => out.workers = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => out.scale = value().parse().unwrap_or_else(|_| usage()),
            "--addr" => out.addr = Some(value()),
            "--faults" => out.faults = Some(value()),
            _ => usage(),
        }
    }
    if out.sessions == 0 || out.commands < 4 {
        usage();
    }
    if out.addr.is_some() && out.faults.is_some() {
        eprintln!("--faults configures the in-process daemon; it cannot target --addr");
        usage();
    }
    out
}

/// What one session observed.
struct SessionReport {
    issued: u64,
    errors: u64,
    quarantines: u64,
    /// Error → next-success gaps, one per incident.
    recoveries: Vec<Duration>,
    /// The final export (`None` if the session never reached one).
    export: Option<String>,
}

/// One session's workload: its own schema pair plus the command loop.
/// Under `chaos`, protocol errors are expected: they are counted, the
/// first error of an incident starts a recovery clock that the next
/// success stops, and a quarantined session is closed and recreated.
fn run_session(
    addr: SocketAddr,
    index: usize,
    commands: usize,
    seed: u64,
    scale: f64,
    chaos: bool,
) -> SessionReport {
    let tag = format!("bench{index}");
    let left = format!("{tag}_left");
    let right = format!("{tag}_right");

    // Two small generated ER models, distinct per session.
    let config = GeneratorConfig {
        models: 2,
        ..GeneratorConfig::scaled(seed ^ (index as u64).wrapping_mul(0x9e37_79b9), scale)
    };
    let registry = iwb_registry::generate_registry(config);
    let left_text = to_er_text(&registry.models[0]);
    let right_text = to_er_text(&registry.models[1]);

    let mut client = Client::connect(addr).expect("connect");
    client.session_new(Some(&tag)).expect("session new");

    let mut report = SessionReport {
        issued: 0,
        errors: 0,
        quarantines: 0,
        recoveries: Vec::new(),
        export: None,
    };
    let mut error_since: Option<Instant> = None;

    // Issue one request; returns the body on success. Under chaos an
    // `err` reply feeds the incident clock instead of aborting.
    #[allow(clippy::too_many_arguments)]
    fn step(
        client: &mut Client,
        report: &mut SessionReport,
        error_since: &mut Option<Instant>,
        chaos: bool,
        tag: &str,
        reload: &[(String, String)],
        run: impl FnOnce(&mut Client) -> std::io::Result<iwb_server::client::Response>,
    ) -> Option<String> {
        let resp = run(client).expect("request io");
        report.issued += 1;
        if resp.ok {
            if let Some(start) = error_since.take() {
                report.recoveries.push(start.elapsed());
            }
            return Some(resp.body);
        }
        assert!(chaos, "session {tag}: server error: {}", resp.body);
        report.errors += 1;
        error_since.get_or_insert_with(Instant::now);
        if resp.body.contains("quarantined") {
            // The supervision contract: quarantined sessions reject
            // commands but still close. Recreate and reload to keep
            // the load alive.
            report.quarantines += 1;
            client
                .request(&format!("session close {tag}"))
                .expect("close quarantined");
            client.session_new(Some(tag)).expect("recreate session");
            for (command, body) in reload {
                let _ = client.request_with_heredoc(command, body);
            }
        }
        None
    }

    let reload = [
        (format!("load er {left}"), left_text.clone()),
        (format!("load er {right}"), right_text.clone()),
    ];
    let mut run = |report: &mut SessionReport,
                   error_since: &mut Option<Instant>,
                   command: String,
                   heredoc: Option<&str>|
     -> Option<String> {
        step(
            &mut client,
            report,
            error_since,
            chaos,
            &tag,
            &reload,
            |c| match heredoc {
                Some(body) => c.request_with_heredoc(&command, body),
                None => c.request(&command),
            },
        )
    };

    run(
        &mut report,
        &mut error_since,
        format!("load er {left}"),
        Some(&left_text),
    );
    run(
        &mut report,
        &mut error_since,
        format!("load er {right}"),
        Some(&right_text),
    );
    run(
        &mut report,
        &mut error_since,
        format!("match {left} {right}"),
        None,
    );

    // Read-heavy steady state, with a periodic re-match.
    while report.issued < commands.saturating_sub(1) as u64 {
        let command = match report.issued % 5 {
            0 => format!("show matrix {left} {right}"),
            1 => "show coverage".to_owned(),
            2 => format!("show schema {left}"),
            3 => "query ? ? ?".to_owned(),
            _ => format!("match {left} {right}"),
        };
        run(&mut report, &mut error_since, command, None);
    }
    report.export = run(&mut report, &mut error_since, "export".to_owned(), None);
    report
}

fn main() {
    let args = parse_args();
    let fault_plan = args.faults.as_deref().map(|spec| {
        FaultSpec::parse(spec)
            .unwrap_or_else(|e| {
                eprintln!("bad --faults spec: {e}");
                usage();
            })
            .build()
    });
    let chaos = fault_plan.as_ref().is_some_and(|p| p.is_active());
    if chaos {
        iwb_server::quiet_injected_panics();
    }

    // Either target an external daemon or spin one up in-process.
    let mut local: Option<ServerHandle> = None;
    let addr: SocketAddr = match &args.addr {
        Some(a) => a.parse().expect("bad --addr"),
        None => {
            let handle = serve(ServerConfig {
                workers: args.workers,
                max_sessions: args.sessions + 4,
                faults: fault_plan.unwrap_or_default(),
                ..ServerConfig::default()
            })
            .expect("bind ephemeral port");
            let addr = handle.addr();
            local = Some(handle);
            addr
        }
    };

    println!(
        "bench_server: {} sessions x {} commands against {addr} (seed {}{})",
        args.sessions,
        args.commands,
        args.seed,
        match &args.faults {
            Some(spec) => format!(", faults {spec}"),
            None => String::new(),
        }
    );

    let started = Instant::now();
    let joins: Vec<_> = (0..args.sessions)
        .map(|i| {
            let (commands, seed, scale) = (args.commands, args.seed, args.scale);
            thread::spawn(move || run_session(addr, i, commands, seed, scale, chaos))
        })
        .collect();
    let results: Vec<SessionReport> = joins
        .into_iter()
        .map(|j| j.join().expect("session thread"))
        .collect();
    let elapsed = started.elapsed();

    // Zero cross-session leakage: session i's export must not mention
    // any other session's schema ids. Under chaos only sessions whose
    // final export succeeded are checkable.
    let mut leaks = 0usize;
    for (i, report) in results.iter().enumerate() {
        let Some(export) = &report.export else {
            continue;
        };
        for j in 0..args.sessions {
            if j != i && export.contains(&format!("bench{j}_")) {
                eprintln!("LEAK: session {i} export mentions bench{j}_*");
                leaks += 1;
            }
        }
    }

    let total: u64 = results.iter().map(|r| r.issued).sum();
    let secs = elapsed.as_secs_f64();
    println!(
        "client side: {total} commands in {secs:.3}s  ({:.0} cmd/s, {:.0} cmd/s/session)",
        total as f64 / secs,
        total as f64 / secs / args.sessions as f64
    );

    if chaos {
        let errors: u64 = results.iter().map(|r| r.errors).sum();
        let quarantines: u64 = results.iter().map(|r| r.quarantines).sum();
        let recoveries: Vec<Duration> = results
            .iter()
            .flat_map(|r| r.recoveries.iter().copied())
            .collect();
        let (mean_us, max_us) = if recoveries.is_empty() {
            (0, 0)
        } else {
            (
                recoveries.iter().map(Duration::as_micros).sum::<u128>() / recoveries.len() as u128,
                recoveries
                    .iter()
                    .map(Duration::as_micros)
                    .max()
                    .unwrap_or(0),
            )
        };
        println!(
            "chaos: {errors} protocol errors, {quarantines} quarantines handled, \
             {} recoveries (mean {mean_us} us, max {max_us} us)",
            recoveries.len()
        );
    }

    let mut admin = Client::connect(addr).expect("admin connect");
    println!("server stats:");
    for line in admin.stats().expect("stats").lines() {
        println!("  {line}");
    }

    if local.is_some() {
        admin.shutdown().expect("shutdown");
    }
    if let Some(handle) = local {
        handle.join();
    }

    if leaks > 0 {
        eprintln!("bench_server: FAILED — {leaks} cross-session leak(s)");
        std::process::exit(1);
    }
    let checked = results.iter().filter(|r| r.export.is_some()).count();
    println!(
        "bench_server: ok — zero cross-session leakage ({checked}/{} exports checked)",
        results.len()
    );
}
