//! Load generator for the workbench daemon.
//!
//! Spawns an in-process `iwb-server` (or targets an external one via
//! `--addr`), drives N concurrent client sessions — each loading its
//! own pair of generated ER schemata, matching them, and issuing a
//! read-heavy command mix — then reports client-side throughput and
//! the server's own latency histogram (`stats` command), and verifies
//! zero cross-session schema leakage.
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_server -- \
//!     --sessions 8 --commands 200
//! ```

use iwb_loaders::to_er_text;
use iwb_registry::GeneratorConfig;
use iwb_server::client::Client;
use iwb_server::server::{serve, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

struct Args {
    sessions: usize,
    commands: usize,
    workers: usize,
    seed: u64,
    scale: f64,
    addr: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 8,
            commands: 200,
            workers: 8,
            seed: 42,
            scale: 0.0005,
            addr: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_server [--sessions N] [--commands N] [--workers N] \
         [--seed N] [--scale F] [--addr HOST:PORT]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--sessions" => out.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--commands" => out.commands = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => out.workers = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => out.scale = value().parse().unwrap_or_else(|_| usage()),
            "--addr" => out.addr = Some(value()),
            _ => usage(),
        }
    }
    if out.sessions == 0 || out.commands < 4 {
        usage();
    }
    out
}

/// One session's workload: its own schema pair plus the command loop.
fn run_session(
    addr: SocketAddr,
    index: usize,
    commands: usize,
    seed: u64,
    scale: f64,
) -> (u64, String) {
    let tag = format!("bench{index}");
    let left = format!("{tag}_left");
    let right = format!("{tag}_right");

    // Two small generated ER models, distinct per session.
    let config = GeneratorConfig {
        models: 2,
        ..GeneratorConfig::scaled(seed ^ (index as u64).wrapping_mul(0x9e37_79b9), scale)
    };
    let registry = iwb_registry::generate_registry(config);
    let left_text = to_er_text(&registry.models[0]);
    let right_text = to_er_text(&registry.models[1]);

    let mut client = Client::connect(addr).expect("connect");
    client.session_new(Some(&tag)).expect("session new");

    fn step(
        r: std::io::Result<iwb_server::client::Response>,
        tag: &str,
        issued: &mut u64,
    ) -> String {
        let resp = r.expect("request io");
        assert!(resp.ok, "session {tag}: server error: {}", resp.body);
        *issued += 1;
        resp.body
    }

    let mut issued: u64 = 0;
    step(
        client.request_with_heredoc(&format!("load er {left}"), &left_text),
        &tag,
        &mut issued,
    );
    step(
        client.request_with_heredoc(&format!("load er {right}"), &right_text),
        &tag,
        &mut issued,
    );
    step(
        client.request(&format!("match {left} {right}")),
        &tag,
        &mut issued,
    );

    // Read-heavy steady state, with a periodic re-match.
    while issued < commands.saturating_sub(1) as u64 {
        let request = match issued % 5 {
            0 => client.request(&format!("show matrix {left} {right}")),
            1 => client.request("show coverage"),
            2 => client.request(&format!("show schema {left}")),
            3 => client.request("query ? ? ?"),
            _ => client.request(&format!("match {left} {right}")),
        };
        step(request, &tag, &mut issued);
    }
    let export = step(client.request("export"), &tag, &mut issued);
    (issued, export)
}

fn main() {
    let args = parse_args();

    // Either target an external daemon or spin one up in-process.
    let mut local: Option<ServerHandle> = None;
    let addr: SocketAddr = match &args.addr {
        Some(a) => a.parse().expect("bad --addr"),
        None => {
            let handle = serve(ServerConfig {
                workers: args.workers,
                max_sessions: args.sessions + 4,
                ..ServerConfig::default()
            })
            .expect("bind ephemeral port");
            let addr = handle.addr();
            local = Some(handle);
            addr
        }
    };

    println!(
        "bench_server: {} sessions x {} commands against {addr} (seed {})",
        args.sessions, args.commands, args.seed
    );

    let started = Instant::now();
    let joins: Vec<_> = (0..args.sessions)
        .map(|i| {
            let (commands, seed, scale) = (args.commands, args.seed, args.scale);
            thread::spawn(move || run_session(addr, i, commands, seed, scale))
        })
        .collect();
    let results: Vec<(u64, String)> = joins
        .into_iter()
        .map(|j| j.join().expect("session thread"))
        .collect();
    let elapsed = started.elapsed();

    // Zero cross-session leakage: session i's export must not mention
    // any other session's schema ids.
    let mut leaks = 0usize;
    for (i, (_, export)) in results.iter().enumerate() {
        for j in 0..args.sessions {
            if j != i && export.contains(&format!("bench{j}_")) {
                eprintln!("LEAK: session {i} export mentions bench{j}_*");
                leaks += 1;
            }
        }
    }

    let total: u64 = results.iter().map(|(n, _)| n).sum();
    let secs = elapsed.as_secs_f64();
    println!(
        "client side: {total} commands in {secs:.3}s  ({:.0} cmd/s, {:.0} cmd/s/session)",
        total as f64 / secs,
        total as f64 / secs / args.sessions as f64
    );

    let mut admin = Client::connect(addr).expect("admin connect");
    println!("server stats:");
    for line in admin.stats().expect("stats").lines() {
        println!("  {line}");
    }

    if local.is_some() {
        admin.shutdown().expect("shutdown");
    }
    if let Some(handle) = local {
        handle.join();
    }

    if leaks > 0 {
        eprintln!("bench_server: FAILED — {leaks} cross-session leak(s)");
        std::process::exit(1);
    }
    println!("bench_server: ok — zero cross-session leakage");
}
