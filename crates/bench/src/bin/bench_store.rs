//! Persistent-store benchmark: snapshot write/load throughput, warm
//! (snapshot + journal-suffix) vs cold (journal-only) recovery latency,
//! and the incremental re-match speedup after a user decision.
//!
//! Three gates guard the persistence contract:
//!
//! * the incremental re-match must be **byte-identical** to a
//!   from-scratch run with the same locked cells (always enforced);
//! * warm recovery must beat cold journal replay (skipped under
//!   `--quick`, where the workload is too small to amortise file IO);
//! * the incremental re-match must be faster than from-scratch
//!   (skipped under `--quick` for the same reason).
//!
//! ```sh
//! cargo run --release -p iwb-bench --bin bench_store -- \
//!     --seed 42 --entities 30 --scale 0.05 --repeats 3 --out BENCH_store.json
//! ```

use iwb_bench::standard_pairs;
use iwb_core::persist;
use iwb_core::shell::Shell;
use iwb_harmony::{Confidence, HarmonyEngine, MatchConfig, MatchResult};
use iwb_loaders::export::to_er_text;
use iwb_registry::perturb::PerturbConfig;
use iwb_registry::SchemaPair;
use iwb_server::{
    FaultPlan, JournalConfig, RecoveryReport, ServerStats, SessionRegistry, StoreConfig,
};
use iwb_store::{CommandRecord, SessionStore};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Args {
    seed: u64,
    /// Entities per generated model (~6x elements per side).
    entities: usize,
    /// Registry scale for the blocking-index command.
    scale: f64,
    repeats: usize,
    quick: bool,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 42,
            entities: 30,
            scale: 0.05,
            repeats: 3,
            quick: false,
            out: "BENCH_store.json".to_owned(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_store [--seed N] [--entities N] [--scale F] [--repeats N] \
         [--quick] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            "--entities" => out.entities = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => out.scale = value().parse().unwrap_or_else(|_| usage()),
            "--repeats" => out.repeats = value().parse().unwrap_or_else(|_| usage()),
            "--quick" => out.quick = true,
            "--out" => out.out = value(),
            _ => usage(),
        }
    }
    if out.quick {
        out.entities = out.entities.min(10);
        out.scale = out.scale.min(0.01);
        out.repeats = out.repeats.min(2);
    }
    if out.entities == 0 || out.repeats == 0 || !out.scale.is_finite() || out.scale <= 0.0 {
        usage();
    }
    out
}

/// The benched session: two schema loads, a match, a blocking index.
fn session_commands(args: &Args, pair: &SchemaPair) -> Vec<CommandRecord> {
    vec![
        CommandRecord {
            command: "load er a".to_owned(),
            heredoc: Some(to_er_text(&pair.source)),
        },
        CommandRecord {
            command: "load er b".to_owned(),
            heredoc: Some(to_er_text(&pair.target)),
        },
        CommandRecord {
            command: "match a b".to_owned(),
            heredoc: None,
        },
        CommandRecord {
            command: format!("index-registry seed {} scale {}", args.seed, args.scale),
            heredoc: None,
        },
    ]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iwb-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drive the command sequence through a session registry, persisting
/// journals under `dir` (and snapshots too when `store` is set).
fn populate(dir: &Path, store: bool, commands: &[CommandRecord]) {
    let stats = ServerStats::new();
    let mut reg = SessionRegistry::new(4, Duration::from_secs(3600)).with_journal(JournalConfig {
        fsync: false,
        ..JournalConfig::new(dir)
    });
    if store {
        reg = reg.with_store(StoreConfig {
            dir: dir.to_path_buf(),
            fsync: false,
            snapshot_every: 0, // one snapshot, flushed below
        });
    }
    let session = reg.create(Some("bench")).expect("create session");
    let none = FaultPlan::none();
    for record in commands {
        let out = session.execute_command(
            &record.command,
            record.heredoc.as_deref(),
            &none,
            3,
            &stats,
            None,
        );
        assert!(
            matches!(out, iwb_server::ExecOutcome::Output(_)),
            "{}: {out:?}",
            record.command
        );
    }
    drop(session);
    if store {
        assert_eq!(reg.flush_snapshots(), 1, "snapshot flushed");
    }
}

/// Time one recovery of the files under `dir`, returning the report.
fn recover_once(dir: &Path, store: bool) -> (f64, RecoveryReport) {
    let stats = ServerStats::new();
    let mut reg = SessionRegistry::new(4, Duration::from_secs(3600)).with_journal(JournalConfig {
        fsync: false,
        ..JournalConfig::new(dir)
    });
    if store {
        reg = reg.with_store(StoreConfig {
            dir: dir.to_path_buf(),
            fsync: false,
            snapshot_every: 0,
        });
    }
    let t = Instant::now();
    let report = reg.recover(&stats).expect("recover");
    (t.elapsed().as_secs_f64() * 1000.0, report)
}

/// Bit-exact equality of two match results (merged + per-voter + flooding).
fn byte_identical(a: &MatchResult, b: &MatchResult) -> bool {
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    a.flooding_iterations == b.flooding_iterations
        && a.matrix.src_ids() == b.matrix.src_ids()
        && a.matrix.tgt_ids() == b.matrix.tgt_ids()
        && bits(a.matrix.scores()) == bits(b.matrix.scores())
        && a.per_voter.len() == b.per_voter.len()
        && a.per_voter
            .iter()
            .zip(&b.per_voter)
            .all(|((an, am), (bn, bm))| an == bn && bits(am.scores()) == bits(bm.scores()))
}

fn main() {
    let args = parse_args();
    let pair = standard_pairs(args.seed, 1, args.entities, &PerturbConfig::mild(args.seed))
        .into_iter()
        .next()
        .expect("one pair");
    let (rows, cols) = (pair.source.len(), pair.target.len());
    let commands = session_commands(&args, &pair);
    println!(
        "bench_store: {rows}x{cols} pair (seed {}), registry scale {}, {} repeat(s)",
        args.seed, args.scale, args.repeats
    );

    // ---- snapshot write / load throughput ----
    let script: String = commands
        .iter()
        .map(|r| match &r.heredoc {
            Some(body) => format!("{} <<EOF\n{body}EOF\n", r.command),
            None => format!("{}\n", r.command),
        })
        .collect();
    let mut shell = Shell::new();
    let outcome = shell.run_on(&script);
    assert_eq!(outcome.errors, 0, "{}", outcome.transcript);
    let snapshot = persist::capture(&mut shell).into_snapshot(
        "bench",
        commands.len() as u64,
        commands.clone(),
    );
    let dir = fresh_dir("throughput");
    let mut store = SessionStore::new(&dir, "bench");
    store.fsync = false;
    let none = FaultPlan::none();
    let (mut write_ms, mut load_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..args.repeats {
        let t = Instant::now();
        store.commit(&snapshot, &none).expect("commit");
        write_ms = write_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        let t = Instant::now();
        let loaded = store.load().expect("load").expect("snapshot present");
        load_ms = load_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(loaded.watermark, snapshot.watermark);
    }
    let bytes = std::fs::metadata(store.path())
        .expect("snapshot file")
        .len();
    let mb = bytes as f64 / (1024.0 * 1024.0);
    let (write_mb_s, load_mb_s) = (mb / (write_ms / 1000.0), mb / (load_ms / 1000.0));
    let _ = std::fs::remove_dir_all(&dir);
    println!("  snapshot          {bytes:9} bytes");
    println!("  snapshot write    {write_ms:9.2} ms   ({write_mb_s:.1} MB/s)");
    println!("  snapshot load     {load_ms:9.2} ms   ({load_mb_s:.1} MB/s)");

    // ---- warm reopen vs cold journal replay ----
    let warm_dir = fresh_dir("warm");
    let cold_dir = fresh_dir("cold");
    populate(&warm_dir, true, &commands);
    populate(&cold_dir, false, &commands);
    let (mut warm_ms, mut cold_ms) = (f64::INFINITY, f64::INFINITY);
    let mut warm_sessions = 0;
    for _ in 0..args.repeats {
        let (ms, report) = recover_once(&warm_dir, true);
        warm_ms = warm_ms.min(ms);
        warm_sessions = report.warm;
        assert_eq!(report.replay_errors, 0, "{report:?}");
        let (ms, report) = recover_once(&cold_dir, false);
        cold_ms = cold_ms.min(ms);
        assert_eq!(
            (report.sessions, report.replay_errors),
            (1, 0),
            "{report:?}"
        );
    }
    let recovery_speedup = cold_ms / warm_ms;
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
    println!("  cold replay       {cold_ms:9.2} ms");
    println!("  warm reopen       {warm_ms:9.2} ms   speedup {recovery_speedup:.2}x");

    // ---- incremental re-match vs from-scratch ----
    let probe = {
        let mut engine = HarmonyEngine::default();
        engine.run(&pair.source, &pair.target, &HashMap::new())
    };
    let src = probe.matrix.src_ids().to_vec();
    let tgt = probe.matrix.tgt_ids().to_vec();
    let mut locked = HashMap::new();
    locked.insert((src[1], tgt[1]), Confidence::ACCEPT);
    locked.insert((src[2], tgt[0]), Confidence::REJECT);
    let (mut scratch_ms, mut incr_ms) = (f64::INFINITY, f64::INFINITY);
    let mut scratch = None;
    let mut incremental = None;
    for _ in 0..args.repeats {
        let mut engine = HarmonyEngine::default();
        engine.set_match_config(MatchConfig {
            cache: false,
            ..MatchConfig::default()
        });
        let t = Instant::now();
        scratch = Some(engine.run(&pair.source, &pair.target, &locked));
        scratch_ms = scratch_ms.min(t.elapsed().as_secs_f64() * 1000.0);

        let mut engine = HarmonyEngine::default();
        engine.set_match_config(MatchConfig {
            cache: false,
            ..MatchConfig::default()
        });
        engine.run(&pair.source, &pair.target, &HashMap::new());
        let t = Instant::now();
        incremental = Some(engine.run(&pair.source, &pair.target, &locked));
        incr_ms = incr_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        assert!(
            engine.last_run().incremental,
            "re-run took the incremental path"
        );
        assert_eq!(engine.last_run().dirty_rows, 2);
    }
    let identical = byte_identical(&scratch.expect("ran"), &incremental.expect("ran"));
    let incremental_speedup = scratch_ms / incr_ms;
    println!("  from-scratch      {scratch_ms:9.2} ms");
    println!("  incremental       {incr_ms:9.2} ms   speedup {incremental_speedup:.2}x");
    println!(
        "  byte-identical    {}",
        if identical { "yes" } else { "NO" }
    );

    let json = format!(
        "{{\n  \"seed\": {},\n  \"rows\": {rows},\n  \"cols\": {cols},\n  \
         \"scale\": {},\n  \"repeats\": {},\n  \"quick\": {},\n  \
         \"snapshot_bytes\": {bytes},\n  \"snapshot_write_ms\": {write_ms:.3},\n  \
         \"snapshot_load_ms\": {load_ms:.3},\n  \"write_mb_s\": {write_mb_s:.1},\n  \
         \"load_mb_s\": {load_mb_s:.1},\n  \"cold_replay_ms\": {cold_ms:.3},\n  \
         \"warm_recover_ms\": {warm_ms:.3},\n  \"recovery_speedup\": {recovery_speedup:.3},\n  \
         \"warm_sessions\": {warm_sessions},\n  \"scratch_ms\": {scratch_ms:.3},\n  \
         \"incremental_ms\": {incr_ms:.3},\n  \
         \"incremental_speedup\": {incremental_speedup:.3},\n  \
         \"incremental_identical\": {identical}\n}}\n",
        args.seed, args.scale, args.repeats, args.quick,
    );
    std::fs::write(&args.out, &json).expect("write report");
    println!("  report written to {}", args.out);

    if !identical {
        eprintln!("bench_store: FAILED — incremental re-match differs from from-scratch");
        std::process::exit(1);
    }
    if warm_sessions != 1 {
        eprintln!("bench_store: FAILED — recovery did not reopen the session warm");
        std::process::exit(1);
    }
    if !args.quick && recovery_speedup <= 1.0 {
        eprintln!(
            "bench_store: FAILED — warm reopen {warm_ms:.2} ms did not beat cold replay {cold_ms:.2} ms"
        );
        std::process::exit(1);
    }
    if !args.quick && incremental_speedup <= 1.0 {
        eprintln!(
            "bench_store: FAILED — incremental {incr_ms:.2} ms did not beat from-scratch {scratch_ms:.2} ms"
        );
        std::process::exit(1);
    }
    println!("bench_store: ok");
}
