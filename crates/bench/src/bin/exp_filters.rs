//! **E5** — filter effectiveness (§4.2's clutter removal).
//!
//! On a registry pair, measures how each link/node filter combination
//! trades the number of displayed links against the precision of what
//! survives — the quantified version of "filters that help the
//! integration engineer focus her attention".

use iwb_bench::standard_pairs;
use iwb_harmony::filters::{FilterSet, LinkFilter, NodeFilter, Side};
use iwb_harmony::HarmonyEngine;
use iwb_registry::perturb::PerturbConfig;
use std::collections::HashMap;

const SEED: u64 = 20060406;

fn main() {
    let size: usize = std::env::args()
        .skip_while(|a| a != "--size")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    println!("E5 — filter effectiveness (seed={SEED}, elements/model={size})\n");
    let pair = &standard_pairs(
        SEED,
        1,
        size,
        &PerturbConfig {
            seed: SEED,
            ..Default::default()
        },
    )[0];
    let mut engine = HarmonyEngine::default();
    let result = engine.run(&pair.source, &pair.target, &HashMap::new());
    let total_cells = result.matrix.len();

    // A sub-schema to focus on: the largest entity.
    let focus = pair
        .source
        .ids_of_kind(iwb_model::ElementKind::Entity)
        .into_iter()
        .max_by_key(|&e| pair.source.children(e).len())
        .expect("registry models have entities");

    let combos: Vec<(&str, FilterSet)> = vec![
        ("no filters", FilterSet::new()),
        (
            "confidence ≥ 0.25",
            FilterSet::new().with_link(LinkFilter::ConfidenceAtLeast(0.25)),
        ),
        (
            "confidence ≥ 0.5",
            FilterSet::new().with_link(LinkFilter::ConfidenceAtLeast(0.5)),
        ),
        (
            "best-per-element",
            FilterSet::new().with_link(LinkFilter::BestPerElement),
        ),
        (
            "best ∧ conf ≥ 0.25",
            FilterSet::new()
                .with_link(LinkFilter::BestPerElement)
                .with_link(LinkFilter::ConfidenceAtLeast(0.25)),
        ),
        (
            "depth ≤ 1 (entities)",
            FilterSet::new()
                .with_node(NodeFilter::MaxDepth(Side::Source, 1))
                .with_link(LinkFilter::ConfidenceAtLeast(0.25)),
        ),
        (
            "subtree focus ∧ best",
            FilterSet::new()
                .with_node(NodeFilter::Subtree(Side::Source, focus))
                .with_link(LinkFilter::BestPerElement)
                .with_link(LinkFilter::ConfidenceAtLeast(0.25)),
        ),
    ];

    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "filter set", "displayed", "gold hits", "precision"
    );
    for (name, fs) in combos {
        let links = fs.visible(
            &result.matrix,
            &pair.source,
            &pair.target,
            &std::collections::HashSet::new(),
        );
        let hits = links
            .iter()
            .filter(|l| pair.gold.contains(&pair.source, &pair.target, l.src, l.tgt))
            .count();
        let precision = if links.is_empty() {
            1.0
        } else {
            hits as f64 / links.len() as f64
        };
        println!(
            "{:<22} {:>10} {:>12} {:>12.3}",
            name,
            links.len(),
            hits,
            precision
        );
    }
    println!(
        "\n(total candidate cells: {total_cells}; gold pairs: {})",
        pair.gold.len()
    );
    println!("expected shape: each added filter shrinks the displayed set and raises precision —");
    println!("clutter removal without losing the true links the engineer needs next.");
}
