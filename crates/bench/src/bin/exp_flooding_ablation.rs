//! **E2** — similarity flooding ablation.
//!
//! §4 describes the structural stage precisely: "Positive confidence
//! scores propagate up the schema graph … and negative confidence
//! scores trickle down". This experiment runs the full engine with
//! flooding off, up-only, down-only, and both, and reports F1.

use iwb_bench::{micro_average, standard_pairs};
use iwb_harmony::{FloodingConfig, HarmonyEngine, VoteMerger};
use iwb_registry::perturb::PerturbConfig;

const SEED: u64 = 20060406;

fn main() {
    let size: usize = std::env::args()
        .skip_while(|a| a != "--size")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    println!("E2 — similarity flooding ablation (seed={SEED}, elements/model={size})\n");
    let configs: [(&str, FloodingConfig); 4] = [
        ("none", FloodingConfig::disabled()),
        (
            "up-only",
            FloodingConfig {
                enable_down: false,
                ..Default::default()
            },
        ),
        (
            "down-only",
            FloodingConfig {
                enable_up: false,
                ..Default::default()
            },
        ),
        ("both", FloodingConfig::default()),
    ];
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}",
        "flooding", "P", "R", "F1", "iterations"
    );
    for (name, cfg) in configs {
        for (pname, perturb) in [
            (
                "default",
                PerturbConfig {
                    seed: SEED,
                    ..Default::default()
                },
            ),
            ("harsh", PerturbConfig::harsh(SEED)),
        ] {
            let pairs = standard_pairs(SEED, 3, size, &perturb);
            let mut engine = HarmonyEngine::new(
                iwb_harmony::voters::default_suite(),
                VoteMerger::default(),
                cfg,
            );
            let mut iters = 0usize;
            let metrics: Vec<_> = pairs
                .iter()
                .map(|p| {
                    let (links, it) = iwb_bench::predict(&mut engine, p, 0.25);
                    iters = iters.max(it);
                    p.gold.score(&p.source, &p.target, &links)
                })
                .collect();
            let m = micro_average(&metrics);
            println!(
                "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>12} ({pname})",
                name,
                m.precision(),
                m.recall(),
                m.f1(),
                iters
            );
        }
    }
    println!("\nexpected shape: 'both' ≥ 'up-only'/'down-only' ≥ 'none' on F1 (structure helps,");
    println!("and the two directions are complementary).");
}
