//! **E3** — iterative refinement with oracle feedback (§4.3).
//!
//! Simulates the engineer's loop: run the engine, let an oracle decide
//! the strongest undecided proposals against the gold standard (accept
//! if gold, reject otherwise), feed the decisions back, re-run. Each
//! round reports precision/recall/F1 of the machine's proposals on the
//! *still-undecided* part of the problem, the cumulative fraction of
//! gold found, and the voter-weight trajectory. Finally the whole
//! schema is marked complete and the §4.3 progress bar reads 100%.

use iwb_bench::standard_pairs;
use iwb_harmony::eval::GoldStandard;
use iwb_harmony::filters::{FilterSet, LinkFilter};
use iwb_harmony::MatchSession;
use iwb_registry::perturb::PerturbConfig;
use std::collections::HashSet;

const SEED: u64 = 20060406;
const ROUNDS: usize = 5;
const PER_ROUND: usize = 8;

fn main() {
    let size: usize = std::env::args()
        .skip_while(|a| a != "--size")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    println!("E3 — iterative learning with oracle feedback (seed={SEED}, elements/model={size})");
    println!("each round: engine run → oracle decides {PER_ROUND} strongest undecided proposals → learn\n");

    let pair = &standard_pairs(SEED, 1, size, &PerturbConfig::harsh(SEED))[0];
    let mut session = MatchSession::new(&pair.source, &pair.target);
    let display = FilterSet::new()
        .with_link(LinkFilter::BestPerElement)
        .with_link(LinkFilter::ConfidenceAtLeast(0.2));
    let total_gold = pair.gold.len();

    println!(
        "{:<7} {:>8} {:>8} {:>8} {:>11} {:>11}   voter weights",
        "round", "P", "R", "F1", "decided", "gold found"
    );
    for round in 0..ROUNDS {
        session.run();
        // Score the machine proposals on the still-undecided cells,
        // against the still-undecided gold.
        let decided: HashSet<(String, String)> = session
            .decisions()
            .keys()
            .map(|&(s, t)| (pair.source.name_path(s), pair.target.name_path(t)))
            .collect();
        let remaining_gold: GoldStandard = pair
            .gold
            .iter()
            .filter(|(s, t)| !decided.contains(&((*s).to_owned(), (*t).to_owned())))
            .map(|(s, t)| (s.to_owned(), t.to_owned()))
            .collect();
        let links: Vec<_> = session
            .visible(&display)
            .into_iter()
            .filter(|l| !l.user_defined)
            .collect();
        let m = remaining_gold.score(&pair.source, &pair.target, &links);
        let gold_found = pair
            .gold
            .iter()
            .filter(|(s, t)| decided.contains(&((*s).to_owned(), (*t).to_owned())))
            .count();
        let weights: Vec<String> = session
            .engine()
            .merger()
            .weights()
            .iter()
            .map(|(k, v)| format!("{k}={v:.2}"))
            .collect();
        println!(
            "{:<7} {:>8.3} {:>8.3} {:>8.3} {:>11} {:>8}/{:<3}  {}",
            round,
            m.precision(),
            m.recall(),
            m.f1(),
            session.decisions().len(),
            gold_found,
            total_gold,
            if weights.is_empty() {
                "(initial)".to_owned()
            } else {
                weights.join(" ")
            }
        );
        // Oracle decides the strongest undecided proposals.
        let mut candidates = links;
        candidates.sort_by(|a, b| b.confidence.value().total_cmp(&a.confidence.value()));
        for l in candidates.into_iter().take(PER_ROUND) {
            if pair.gold.contains(&pair.source, &pair.target, l.src, l.tgt) {
                session.accept(l.src, l.tgt);
            } else {
                session.reject(l.src, l.tgt);
            }
        }
    }
    // §4.3/§5.3: "she can mark sub-schemata as complete … (including an
    // entire schema)" — freeze everything visible and read the bar.
    session.mark_complete(pair.source.root(), &display);
    println!(
        "\nafter mark-complete on the whole schema: progress bar = {:.0}%",
        session.progress() * 100.0
    );
    println!("expected shape: precision of the remaining proposals stays high while decided");
    println!("coverage grows round over round; voters that agreed with the oracle gain weight.");
}
