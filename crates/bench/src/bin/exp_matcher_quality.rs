//! **E1** — matcher quality across documentation densities.
//!
//! §4.1 claims documentation matchers "have good recall, although their
//! precision is less impressive", and §2 argues documentation (not
//! instances) is the evidence that is actually available. This
//! experiment sweeps documentation density × perturbation level and
//! reports P/R/F1 for each single voter and the merged engine
//! (magnitude-weighted and uniform-average ablation).

use iwb_bench::{micro_average, score, standard_pairs, with_doc_density};
use iwb_harmony::voters::{
    AcronymVoter, DataTypeVoter, DocumentationVoter, DomainVoter, NameVoter, StructureVoter,
    ThesaurusVoter,
};
use iwb_harmony::{FloodingConfig, HarmonyEngine, MatchVoter, MergeStrategy, VoteMerger};
use iwb_registry::perturb::PerturbConfig;

const SEED: u64 = 20060406;
const THRESHOLD: f64 = 0.25;

fn single_voter_engine(voter: Box<dyn MatchVoter>) -> HarmonyEngine {
    HarmonyEngine::new(
        vec![voter],
        VoteMerger::default(),
        FloodingConfig::disabled(),
    )
}

fn engines() -> Vec<(&'static str, HarmonyEngine)> {
    vec![
        ("name", single_voter_engine(Box::new(NameVoter::default()))),
        (
            "documentation",
            single_voter_engine(Box::new(DocumentationVoter::default())),
        ),
        (
            "thesaurus",
            single_voter_engine(Box::new(ThesaurusVoter::default())),
        ),
        (
            "structure",
            single_voter_engine(Box::new(StructureVoter::default())),
        ),
        (
            "domain",
            single_voter_engine(Box::new(DomainVoter::default())),
        ),
        (
            "datatype",
            single_voter_engine(Box::new(DataTypeVoter::default())),
        ),
        (
            "acronym",
            single_voter_engine(Box::new(AcronymVoter::default())),
        ),
        ("merged(uniform)", {
            HarmonyEngine::new(
                iwb_harmony::voters::default_suite(),
                VoteMerger::with_strategy(MergeStrategy::UniformAverage),
                FloodingConfig::default(),
            )
        }),
        ("merged(full)", HarmonyEngine::default()),
        // Baselines after the cited systems (see harmony::baselines).
        ("base:exact-name", iwb_harmony::name_equivalence_engine()),
        ("base:coma-like", iwb_harmony::coma_like_engine()),
        ("base:cupid-like", iwb_harmony::cupid_like_engine()),
    ]
}

fn main() {
    let size: usize = std::env::args()
        .skip_while(|a| a != "--size")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    println!("E1 — matcher quality (seed={SEED}, elements/model={size}, threshold={THRESHOLD})");
    println!("doc-density sweep: 0% (conventional-wisdom case), 50%, 83% (Table 1 attributes), 99% (Table 1 elements)\n");

    for (perturb_name, perturb) in [
        ("mild", PerturbConfig::mild(SEED)),
        (
            "default",
            PerturbConfig {
                seed: SEED,
                ..Default::default()
            },
        ),
        ("harsh", PerturbConfig::harsh(SEED)),
    ] {
        println!("── perturbation: {perturb_name} ──");
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "voter",
            "P@0%",
            "R@0%",
            "F1@0%",
            "P@50%",
            "R@50%",
            "F1@50%",
            "P@83%",
            "R@83%",
            "F1@83%",
            "P@99%",
            "R@99%",
            "F1@99%"
        );
        let base_pairs = standard_pairs(SEED, 3, size, &perturb);
        for (name, mut engine) in engines() {
            let mut cells = Vec::new();
            for density in [0.0, 0.5, 0.83, 0.99] {
                let metrics: Vec<_> = base_pairs
                    .iter()
                    .map(|p| {
                        let pair = with_doc_density(p, density, SEED);
                        score(&mut engine, &pair, THRESHOLD)
                    })
                    .collect();
                let m = micro_average(&metrics);
                cells.push(format!("{:.3}", m.precision()));
                cells.push(format!("{:.3}", m.recall()));
                cells.push(format!("{:.3}", m.f1()));
            }
            println!(
                "{:<16} {}",
                name,
                cells
                    .iter()
                    .map(|c| format!("{c:>8}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        println!();
    }
    println!(
        "expected shape (paper §4.1): documentation voter recall > precision where docs exist;"
    );
    println!("documentation voter ≈ useless at 0% density; merged(full) ≥ every single voter;");
    println!("magnitude weighting ≥ uniform averaging.");
}
