//! **E4** — task-model coverage (§1.1: "Among tools, we can ask what
//! each tool contributes to each task").
//!
//! Prints the 13-task coverage matrix for Harmony alone, the mapper
//! alone, and the combined workbench — the quantified version of §5.3's
//! claim that the combination "addresses all of the desiderata", and of
//! §4.1's observation that matching alone "does not greatly assist the
//! integration engineer".

use iwb_core::taskmodel::{coverage_table, Task};
use iwb_core::tool::WorkbenchTool;
use iwb_core::tools::{CodegenTool, HarmonyTool, LoaderTool, MapperTool};

fn main() {
    println!("E4 — task-model coverage of the registered tools\n");
    let loader = LoaderTool::new();
    let harmony = HarmonyTool::new();
    let mapper = MapperTool::new();
    let codegen = CodegenTool::new();
    let tools: Vec<(&str, Vec<Task>)> = vec![
        (loader.name(), loader.capabilities()),
        (harmony.name(), harmony.capabilities()),
        (mapper.name(), mapper.capabilities()),
        (codegen.name(), codegen.capabilities()),
    ];
    println!("{}", coverage_table(&tools));

    let covered: usize = Task::all()
        .iter()
        .filter(|t| tools.iter().any(|(_, ts)| ts.contains(t)))
        .count();
    println!(
        "combined workbench covers {covered}/13 tasks; Harmony alone covers {}/13",
        harmony.capabilities().len()
    );
    println!("\nuncovered tasks (instance integration and deployment live in iwb-instance and");
    println!("the deployment pipeline, outside the four §5.2.1 tool families):");
    for t in Task::all() {
        if !tools.iter().any(|(_, ts)| ts.contains(t)) {
            println!("  {t}");
        }
    }
}
