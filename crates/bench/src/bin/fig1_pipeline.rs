//! **Figure 1** — "Architectural Overview of Harmony".
//!
//! Exercises every stage of the figure on the Figure 2 schema pair and
//! prints what flows across each arrow: linguistic preprocessing →
//! match voters → vote merger → similarity flooding → (GUI filters).

use iwb_harmony::filters::{FilterSet, LinkFilter};
use iwb_harmony::{HarmonyEngine, MatchContext};
use iwb_ling::{Corpus, Thesaurus};
use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};
use iwb_loaders::{SchemaLoader, XsdLoader};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

fn main() {
    println!("Figure 1 reproduction — the Harmony pipeline, stage by stage\n");
    let source = XsdLoader.load(FIG2_SOURCE_XSD, "purchaseOrder").unwrap();
    let target = XsdLoader.load(FIG2_TARGET_XSD, "invoice").unwrap();

    // Stage 1: linguistic preprocessing.
    let t0 = Instant::now();
    let thesaurus = Thesaurus::builtin();
    let ctx = MatchContext::build(&source, &target, &thesaurus, Corpus::new());
    println!("[1] linguistic preprocessing        ({:?})", t0.elapsed());
    for (id, el) in source.iter().skip(1) {
        let f = ctx.src(id);
        println!(
            "    {:<40} tokens={:?} stems={:?}",
            source.name_path(id),
            f.text.name.tokens,
            f.text.name.stems
        );
        let _ = el;
    }

    // Stages 2–4 run inside the engine; per-voter matrices are reported.
    let t1 = Instant::now();
    let mut engine = HarmonyEngine::default();
    let result = engine.run(&source, &target, &HashMap::new());
    println!(
        "\n[2] match voters ({} voters)         ({:?} incl. merge+flood)",
        result.per_voter.len(),
        t1.elapsed()
    );
    let ship = source.find_by_name("shipTo").unwrap();
    let info = target.find_by_name("shippingInfo").unwrap();
    let sub = source.find_by_name("subtotal").unwrap();
    let total = target.find_by_name("total").unwrap();
    println!("    votes on (shipTo, shippingInfo) and (subtotal, total):");
    for (name, m) in &result.per_voter {
        println!(
            "      {:<14} {}    {}",
            name,
            m.get(ship, info),
            m.get(sub, total)
        );
    }

    println!("\n[3] vote merger (magnitude-weighted; per-voter weights from past performance)");
    for name in engine.voter_names() {
        println!(
            "      {:<14} weight={:.2}",
            name,
            engine.merger().weight(name)
        );
    }

    println!(
        "\n[4] similarity flooding: {} iteration(s); positives propagate up, negatives trickle down",
        result.flooding_iterations
    );
    println!(
        "      merged (shipTo, shippingInfo) = {}",
        result.matrix.get(ship, info)
    );
    println!(
        "      merged (subtotal, total)      = {}",
        result.matrix.get(sub, total)
    );

    // Stage 5: the GUI filter layer.
    let filters = FilterSet::new()
        .with_link(LinkFilter::BestPerElement)
        .with_link(LinkFilter::ConfidenceAtLeast(0.2));
    let links = filters.visible(&result.matrix, &source, &target, &HashSet::new());
    println!(
        "\n[5] GUI filters (best-per-element ∧ confidence ≥ 0.2): {} link(s) displayed",
        links.len()
    );
    let mut sorted = links;
    sorted.sort_by(|a, b| b.confidence.value().total_cmp(&a.confidence.value()));
    for l in sorted {
        println!(
            "      {:<45} ↔ {:<40} {}",
            source.name_path(l.src),
            target.name_path(l.tgt),
            l.confidence
        );
    }
}
