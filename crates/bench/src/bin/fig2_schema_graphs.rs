//! **Figure 2** — "Sample schema graphs".
//!
//! Loads the paper's purchase-order source schema and invoice target
//! schema from XSD and renders both as labelled graphs (nodes = schema
//! elements, edges = `contains-element` / `contains-attribute`), exactly
//! the structure the figure draws.

use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};
use iwb_loaders::{SchemaLoader, XsdLoader};
use iwb_model::display::{render_with, RenderOptions};

fn main() {
    let opts = RenderOptions {
        show_edges: true,
        show_types: true,
        show_docs: true,
        doc_width: 48,
    };
    println!("Figure 2 reproduction — sample schema graphs\n");
    for (xsd, id, label) in [
        (FIG2_SOURCE_XSD, "purchaseOrder", "source schema"),
        (FIG2_TARGET_XSD, "invoice", "target schema"),
    ] {
        let graph = XsdLoader.load(xsd, id).expect("built-in XSD parses");
        println!("── {label} ({id}) ──");
        print!("{}", render_with(&graph, opts));
        println!();
    }
    println!(
        "(edge labels are the §5.1.1 controlled vocabulary: contains-element, contains-attribute)"
    );
}
