//! **Figure 3** — "Sample mapping matrix in which every component has
//! been annotated".
//!
//! Drives the workbench through the same history that produced the
//! figure: Harmony proposes, the engineer decides (+1/-1 user-defined
//! cells), the mapping tool binds row variables and column code, the
//! code generator assembles the matrix-level code — then prints the
//! fully annotated matrix and the assembled XQuery.

use iwb_core::casestudy::run_case_study;

fn main() {
    println!("Figure 3 reproduction — the annotated mapping matrix\n");
    let report = run_case_study().expect("case study pipeline");
    println!("{}", report.matrix_text);
    println!("── assembled matrix code (the figure's top-left cell) ──");
    println!("{}", report.xquery);
    println!("── tested on a sample document (§5.3) ──");
    println!("input:\n{}", report.sample_input.render());
    println!("output:\n{}", report.sample_output.render());
    if report.violations.is_empty() {
        println!("verification against target schema: OK (task 9)");
    } else {
        println!("verification violations: {:?}", report.violations);
    }
}
