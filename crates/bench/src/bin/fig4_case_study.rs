//! **Figure 4** — "Workbench Architecture", demonstrated via the §5.3
//! case study.
//!
//! Prints the full manager trace: tool registration with event
//! subscriptions, every invocation with its transaction commit, and the
//! event propagation rounds (mapping-cell → mapping-vector →
//! mapping-matrix) that make the tools interoperate.

use iwb_core::casestudy::run_case_study;

fn main() {
    println!("Figure 4 reproduction — workbench architecture event trace\n");
    let report = run_case_study().expect("case study pipeline");
    for line in &report.trace {
        println!("{line}");
    }
    println!("\n── outcome ──");
    println!(
        "assembled mapping present: {}",
        report.xquery.contains("return")
    );
    println!(
        "sample document transformed and verified: {}",
        report.violations.is_empty()
    );
}
