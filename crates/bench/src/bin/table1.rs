//! **Table 1** — "Frequency and length of documentation in the DoD
//! Metadata Registry".
//!
//! Generates the calibrated synthetic registry (265 ER models at scale
//! 1.0) and recomputes the table with the same statistics code the rest
//! of the workbench uses. Pass `--scale <f>` to run a smaller registry
//! (default 1.0; use e.g. 0.05 for a quick run).
//!
//! Paper values for comparison:
//! ```text
//! Item       Count     #Defn    %Defn    Words      W/Item  W/Defn
//! Element    13,049    12,946   ~99%     143,315    ~11.0   ~11.1
//! Attribute  163,736   135,686  ~83%     2,228,691  ~13.6   ~16.4
//! Domain     282,331   282,128  ~100%    1,036,822  ~3.67   ~3.68
//! ```

use iwb_registry::{generate_registry, registry_stats, GeneratorConfig, TABLE1_SEED};

fn main() {
    let scale = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let config = if (scale - 1.0f64).abs() < f64::EPSILON {
        GeneratorConfig::table1(TABLE1_SEED)
    } else {
        GeneratorConfig::scaled(TABLE1_SEED, scale)
    };
    println!("Table 1 reproduction — synthetic DoD-style metadata registry");
    println!(
        "seed={} scale={} models={} (paper: 265 models, 13,049 elements, 163,736 attributes, 282,331 domain values)",
        config.seed, scale, config.models
    );
    println!();
    let registry = generate_registry(config);
    let stats = registry_stats(&registry);
    println!("{}", stats.render_table());
    println!(
        "paper reference: Element ~99% @ ~11.1 w/defn; Attribute ~83% @ ~16.4 w/defn; Domain ~100% @ ~3.68 w/defn"
    );
}
