//! # iwb-bench — shared experiment harness
//!
//! Utilities used by the experiment binaries in `src/bin/` (one per
//! table/figure — see DESIGN.md §4) and the Criterion benches in
//! `benches/`.
//!
//! The workload generators and scoring helpers moved to
//! [`iwb_eval::harness`] (so the golden regression suite, the
//! curation-replay workload, and the experiment binaries share one
//! implementation); they are re-exported here so experiment code keeps
//! its historical imports.

pub use iwb_eval::harness::{micro_average, predict, score, standard_pairs, with_doc_density};

/// Fixed-width table row helper for the experiment printouts.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_right_aligns_cells() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn reexported_harness_is_usable() {
        let pairs = standard_pairs(42, 1, 8, &iwb_registry::PerturbConfig::mild(1));
        let m = score(&mut iwb_harmony::HarmonyEngine::default(), &pairs[0], 0.25);
        assert!(m.actual > 0);
    }
}
