//! Golden evaluation regression: the default engine's match quality on
//! a fixed-seed registry workload, pinned to a checked-in file.
//!
//! The generator, perturbation, linguistic pipeline, and engine are all
//! seeded and deterministic, so precision/recall/F1 are exact values —
//! any drift (a voter tweak, a merger change, a flooding adjustment)
//! shows up as a diff against `tests/golden/eval_metrics.txt`.
//!
//! The workload and scoring come from `iwb_eval::harness` (the shared
//! ground-truth types the curation replay and `bench_eval` also use);
//! the pinned numbers are unchanged by that move.
//!
//! To accept an intentional change, re-bless:
//!
//! ```sh
//! IWB_BLESS=1 cargo test -p iwb-bench --test golden_eval
//! ```

use iwb_eval::harness::{micro_average, score, standard_pairs};
use iwb_harmony::HarmonyEngine;
use iwb_registry::perturb::PerturbConfig;
use std::fmt::Write;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/eval_metrics.txt")
}

#[test]
fn eval_metrics_match_golden() {
    let pairs = standard_pairs(7, 3, 10, &PerturbConfig::mild(7));
    let mut engine = HarmonyEngine::default();
    let mut report = String::new();
    let mut metrics = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        let m = score(&mut engine, pair, 0.25);
        writeln!(
            report,
            "pair {i}: tp={} predicted={} actual={}",
            m.true_positives, m.predicted, m.actual
        )
        .unwrap();
        metrics.push(m);
    }
    let avg = micro_average(&metrics);
    writeln!(
        report,
        "micro: precision={:.6} recall={:.6} f1={:.6}",
        avg.precision(),
        avg.recall(),
        avg.f1()
    )
    .unwrap();

    let path = golden_path();
    if std::env::var_os("IWB_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &report).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless it with \
             IWB_BLESS=1 cargo test -p iwb-bench --test golden_eval",
            path.display()
        )
    });
    assert_eq!(
        report,
        golden,
        "evaluation metrics drifted from {}; if intentional, re-bless with \
         IWB_BLESS=1 cargo test -p iwb-bench --test golden_eval",
        path.display()
    );
}
