//! The inverted registry index and deterministic top-k retrieval.

use crate::tokens::model_terms;
use iwb_ling::Thesaurus;
use iwb_model::{SchemaGraph, SchemaId};
use iwb_pool::{Budget, Interrupt, ThreadPool};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Knobs for token canonicalisation and index construction.
#[derive(Debug, Clone)]
pub struct BlockingConfig {
    /// Expand DBA abbreviations (`acft` → `aircraft`) before lookup.
    pub expand_abbreviations: bool,
    /// Collapse each synonym ring to its lexicographically-least member
    /// so renamed-but-equivalent schemas share postings.
    pub collapse_synonyms: bool,
    /// Porter-stem the canonical token.
    pub stem: bool,
    /// Weight of a documentation token relative to a name token (1.0).
    /// Zero skips documentation entirely.
    pub doc_weight: f64,
    /// Worker threads for index construction. Retrieval results are
    /// bit-identical regardless of this value (tokenisation is
    /// embarrassingly parallel; posting assembly is sequential in model
    /// order).
    pub threads: usize,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            expand_abbreviations: true,
            collapse_synonyms: true,
            stem: true,
            doc_weight: 0.25,
            threads: 1,
        }
    }
}

/// One entry on a posting list: which model, and the token's weight in
/// that model's term bag (name occurrences + `doc_weight`·doc
/// occurrences).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Posting {
    model: u32,
    weight: f64,
}

/// The serialisable decomposition of a [`RegistryIndex`]: everything
/// the expensive build produced (canonical tokens, posting lists, model
/// norms), minus the builtin thesaurus. Produced by
/// [`RegistryIndex::to_parts`], consumed by [`RegistryIndex::from_parts`]
/// and the `iwb-store` snapshot codec.
#[derive(Debug, Clone)]
pub struct IndexParts {
    /// Configuration the index was built with.
    pub config: BlockingConfig,
    /// Stable id of each indexed model, by ordinal.
    pub ids: Vec<SchemaId>,
    /// Euclidean norm of each model's idf-weighted term vector.
    pub norms: Vec<f64>,
    /// Posting lists by canonical token: `(model ordinal, weight)`,
    /// sorted by token (the `BTreeMap` iteration order).
    pub postings: Vec<(String, Vec<(u32, f64)>)>,
}

/// A retrieved candidate: the model's position in the indexed slice,
/// its stable id, and the idf-weighted cosine similarity to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index of the model in the slice the index was built from.
    pub ordinal: usize,
    /// The model's stable schema id (tie-break key).
    pub id: SchemaId,
    /// Cosine similarity in `[0, 1]` (up to float rounding).
    pub score: f64,
}

/// Inverted token index over a registry of canonical schema graphs.
///
/// Postings are keyed by canonical token in a `BTreeMap` and sorted by
/// model ordinal, and retrieval accumulates scores iterating tokens in
/// sorted order — so every float reduction happens in one fixed order
/// and the scores are bit-identical across build thread counts and
/// model insertion orders. Ties in the top-k cut break on
/// `(score desc, SchemaId asc)`.
pub struct RegistryIndex {
    config: BlockingConfig,
    thesaurus: Thesaurus,
    /// Stable id of each indexed model, by ordinal.
    ids: Vec<SchemaId>,
    /// Euclidean norm of each model's idf-weighted term vector.
    norms: Vec<f64>,
    postings: BTreeMap<String, Vec<Posting>>,
}

impl RegistryIndex {
    /// Build the index over `models` with the builtin thesaurus.
    pub fn build(models: &[SchemaGraph], config: BlockingConfig) -> RegistryIndex {
        Self::build_budgeted(models, config, &Budget::unlimited())
            .expect("unlimited budget never interrupts")
    }

    /// Build under a cooperative [`Budget`]; tokenisation runs on
    /// `config.threads` workers, checking the budget per model.
    pub fn build_budgeted(
        models: &[SchemaGraph],
        config: BlockingConfig,
        budget: &Budget,
    ) -> Result<RegistryIndex, Interrupt> {
        let thesaurus = Thesaurus::builtin();
        let bags = tokenize_models(models, &thesaurus, &config, budget)?;

        let mut postings: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
        for (ordinal, bag) in bags.iter().enumerate() {
            budget.check()?;
            for (term, weight) in bag {
                postings.entry(term.clone()).or_default().push(Posting {
                    model: ordinal as u32,
                    weight: *weight,
                });
            }
        }

        // Model vector norms under idf weighting, accumulated per model
        // in sorted term order (the bags are BTreeMaps) so they too are
        // order-independent.
        let total = models.len();
        let mut norms = vec![0.0f64; total];
        for (ordinal, terms) in bags.iter().enumerate() {
            for (term, weight) in terms {
                let df = postings.get(term).map_or(0, Vec::len);
                let w = weight * idf(total, df);
                norms[ordinal] += w * w;
            }
        }
        for n in &mut norms {
            *n = n.sqrt();
        }

        Ok(RegistryIndex {
            config,
            thesaurus,
            ids: models.iter().map(|m| m.id().clone()).collect(),
            norms,
            postings,
        })
    }

    /// Number of indexed models.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no models are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Distinct canonical tokens in the index.
    pub fn vocabulary(&self) -> usize {
        self.postings.len()
    }

    /// Stable id of the model at `ordinal`.
    pub fn id_of(&self, ordinal: usize) -> &SchemaId {
        &self.ids[ordinal]
    }

    /// Configuration the index was built with.
    pub fn config(&self) -> &BlockingConfig {
        &self.config
    }

    /// Decompose the index into its serialisable parts (the snapshot
    /// codec's view). The thesaurus is not part of the decomposition:
    /// it is the builtin one, restored by [`RegistryIndex::from_parts`].
    pub fn to_parts(&self) -> IndexParts {
        IndexParts {
            config: self.config.clone(),
            ids: self.ids.clone(),
            norms: self.norms.clone(),
            postings: self
                .postings
                .iter()
                .map(|(term, list)| {
                    (
                        term.clone(),
                        list.iter().map(|p| (p.model, p.weight)).collect(),
                    )
                })
                .collect(),
        }
    }

    /// Reassemble an index from [`RegistryIndex::to_parts`] output. The
    /// round-trip is exact: postings, norms, and ids carry the same
    /// bits, so queries against the rebuilt index are bit-identical to
    /// queries against the original.
    pub fn from_parts(parts: IndexParts) -> RegistryIndex {
        RegistryIndex {
            config: parts.config,
            thesaurus: Thesaurus::builtin(),
            ids: parts.ids,
            norms: parts.norms,
            postings: parts
                .postings
                .into_iter()
                .map(|(term, list)| {
                    (
                        term,
                        list.into_iter()
                            .map(|(model, weight)| Posting { model, weight })
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    /// Top-`k` candidates for `query`, best first.
    pub fn query(&self, query: &SchemaGraph, k: usize) -> Vec<Candidate> {
        self.query_budgeted(query, k, &Budget::unlimited())
            .expect("unlimited budget never interrupts")
    }

    /// [`RegistryIndex::query`] under a cooperative budget, checked once
    /// per query term.
    pub fn query_budgeted(
        &self,
        query: &SchemaGraph,
        k: usize,
        budget: &Budget,
    ) -> Result<Vec<Candidate>, Interrupt> {
        let bag = model_terms(query, &self.thesaurus, &self.config);
        let total = self.ids.len();
        let mut dots = vec![0.0f64; total];
        let mut query_norm = 0.0f64;
        // Iterate the query bag (BTreeMap: sorted term order) over
        // postings sorted by ordinal: each model's dot product is a sum
        // in one fixed order, independent of how the index was built.
        for (term, q_weight) in &bag {
            budget.check()?;
            let Some(list) = self.postings.get(term) else {
                let qw = q_weight * idf(total, 0);
                query_norm += qw * qw;
                continue;
            };
            let w_idf = idf(total, list.len());
            let qw = q_weight * w_idf;
            query_norm += qw * qw;
            for p in list {
                dots[p.model as usize] += qw * p.weight * w_idf;
            }
        }
        let query_norm = query_norm.sqrt();

        let mut candidates: Vec<Candidate> = dots
            .iter()
            .enumerate()
            .filter(|(_, d)| **d > 0.0)
            .map(|(ordinal, dot)| {
                let denom = query_norm * self.norms[ordinal];
                Candidate {
                    ordinal,
                    id: self.ids[ordinal].clone(),
                    score: if denom > 0.0 { dot / denom } else { 0.0 },
                }
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("cosine scores are finite")
                .then_with(|| a.id.cmp(&b.id))
        });
        candidates.truncate(k);
        Ok(candidates)
    }
}

/// Smoothed idf, the same shape `iwb_ling::Corpus` uses:
/// `ln((1 + N) / (1 + df)) + 1`.
fn idf(total: usize, df: usize) -> f64 {
    ((1.0 + total as f64) / (1.0 + df as f64)).ln() + 1.0
}

/// Tokenise every model into its term bag, in parallel when
/// `config.threads > 1`. Results land in ordinal-indexed slots, so the
/// output is identical to the sequential path.
fn tokenize_models(
    models: &[SchemaGraph],
    thesaurus: &Thesaurus,
    config: &BlockingConfig,
    budget: &Budget,
) -> Result<Vec<BTreeMap<String, f64>>, Interrupt> {
    if config.threads <= 1 || models.len() <= 1 {
        let mut bags = Vec::with_capacity(models.len());
        for model in models {
            budget.check()?;
            bags.push(model_terms(model, thesaurus, config));
        }
        return Ok(bags);
    }

    let pool = ThreadPool::new(config.threads.min(models.len()));
    let (tx, rx) = mpsc::channel::<(usize, BTreeMap<String, f64>)>();
    let tx = Arc::new(Mutex::new(tx));
    let jobs: Vec<Box<dyn FnOnce() + Send>> = models
        .iter()
        .enumerate()
        .map(|(ordinal, model)| {
            // The pool requires 'static jobs; clone the graph rather
            // than smuggling references. Build cost is dominated by
            // tokenisation, not the clone.
            let model = model.clone();
            let thesaurus = thesaurus.clone();
            let config = config.clone();
            let tx = Arc::clone(&tx);
            Box::new(move || {
                let bag = model_terms(&model, &thesaurus, &config);
                let _ = tx.lock().expect("bag channel lock").send((ordinal, bag));
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    pool.run_all_budgeted(jobs, budget)?;
    drop(tx);

    let mut bags = vec![BTreeMap::new(); models.len()];
    let mut filled = 0usize;
    while let Ok((ordinal, bag)) = rx.recv() {
        bags[ordinal] = bag;
        filled += 1;
    }
    debug_assert_eq!(filled, models.len(), "every model tokenised");
    Ok(bags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn schema(id: &str, table: &str, attrs: &[&str]) -> SchemaGraph {
        let mut b = SchemaBuilder::new(id, Metamodel::Relational).open(table);
        for a in attrs {
            b = b.attr(*a, DataType::Text);
        }
        b.close().build()
    }

    fn registry() -> Vec<SchemaGraph> {
        vec![
            schema(
                "flights",
                "AIRCRAFT",
                &["ACFT_TYPE_CD", "TAIL_NUM", "ENGINE_COUNT"],
            ),
            schema(
                "orders",
                "PURCHASE_ORDER",
                &["VENDOR_ID", "ORDER_DT", "TOTAL_AMT"],
            ),
            schema("people", "EMPLOYEE", &["EMP_NBR", "LAST_NAME", "HIRE_DT"]),
        ]
    }

    #[test]
    fn retrieves_the_obviously_right_model_first() {
        let models = registry();
        let index = RegistryIndex::build(&models, BlockingConfig::default());
        let query = schema("q", "airplane", &["airplaneKindCode", "tailNumber"]);
        let hits = index.query(&query, 3);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id.as_str(), "flights", "{hits:?}");
        assert!(hits[0].score > 0.2, "{hits:?}");
    }

    #[test]
    fn scores_are_bounded_and_sorted() {
        let models = registry();
        let index = RegistryIndex::build(&models, BlockingConfig::default());
        let query = schema("q", "EMPLOYEE", &["LAST_NAME", "VENDOR_ID"]);
        let hits = index.query(&query, 10);
        for w in hits.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].id < w[1].id),
                "{hits:?}"
            );
        }
        for h in &hits {
            assert!(h.score > 0.0 && h.score <= 1.0 + 1e-9, "{h:?}");
        }
    }

    #[test]
    fn k_truncates() {
        let models = registry();
        let index = RegistryIndex::build(&models, BlockingConfig::default());
        let query = schema("q", "EMPLOYEE", &["LAST_NAME", "VENDOR_ID", "TAIL_NUM"]);
        let all = index.query(&query, 10);
        let one = index.query(&query, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], all[0]);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let models = registry();
        let seq = RegistryIndex::build(&models, BlockingConfig::default());
        let par = RegistryIndex::build(
            &models,
            BlockingConfig {
                threads: 4,
                ..BlockingConfig::default()
            },
        );
        let query = schema("q", "AIRCRAFT", &["ACFT_TYPE_CD", "VENDOR_ID"]);
        let a = seq.query(&query, 10);
        let b = par.query(&query, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ordinal, y.ordinal);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "bit-identical scores");
        }
    }

    #[test]
    fn cancelled_budget_interrupts_build() {
        let token = iwb_pool::CancelToken::new();
        token.cancel();
        let budget = Budget::new(token, iwb_pool::Deadline::none());
        let models = registry();
        let err = RegistryIndex::build_budgeted(&models, BlockingConfig::default(), &budget);
        assert!(err.is_err());
    }

    #[test]
    fn empty_registry_and_unknown_terms_are_harmless() {
        let index = RegistryIndex::build(&[], BlockingConfig::default());
        assert!(index.is_empty());
        let query = schema("q", "zzz_nothing", &["qqq_unseen"]);
        assert!(index.query(&query, 5).is_empty());

        let models = registry();
        let index = RegistryIndex::build(&models, BlockingConfig::default());
        assert!(index.query(&query, 5).is_empty());
    }
}
