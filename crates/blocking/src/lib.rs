//! # iwb-blocking — registry-scale candidate blocking
//!
//! The paper's real workload is a *repository*, not a pair: the DoD
//! metadata registry holds 265 ER models (Table 1), and the enterprise
//! question is "which of these registered models matches mine?" (the
//! MITRE follow-up frames exactly this). Running the full Harmony voter
//! ensemble against every registered model is quadratic waste; the
//! tractable shape is multi-stage recommend-then-rerank:
//!
//! 1. **Block** — [`RegistryIndex`] holds an inverted token index over
//!    the canonical schema graphs. Element names and documentation are
//!    tokenised with the same `iwb-ling` pipeline the voters use
//!    (identifier splitting, stop words), then *canonicalised* —
//!    abbreviations expanded (`acft` → `aircraft`), synonym rings
//!    collapsed to one representative (`vendor`/`supplier`/`seller` →
//!    one token), Porter-stemmed — so the renames a real integration
//!    introduces collapse onto the same posting list. Retrieval scores
//!    candidates by idf-weighted cosine over the postings only: cost is
//!    proportional to the query's tokens, not the registry's elements.
//! 2. **Rerank** — [`block_then_rerank`] runs the full
//!    [`iwb_harmony::HarmonyEngine`] (all voters, merging, flooding)
//!    only on the top-k survivors, under the caller's cooperative
//!    [`iwb_pool::Budget`].
//!
//! Retrieval is **deterministic**: scores accumulate in token order over
//! postings sorted by model ordinal, ties break on stable schema ids,
//! and the result is bit-identical across build thread counts and model
//! insertion orders (property-tested in `tests/properties.rs`). Blocking
//! quality is pinned by `bench_registry`, which reports recall of the
//! exhaustive all-pairs ranking at several k (`BENCH_registry.json`).

pub mod index;
pub mod pipeline;
pub mod tokens;

pub use index::{BlockingConfig, Candidate, IndexParts, RegistryIndex};
pub use pipeline::{block_then_rerank, engine_model_score, BlockRerank, RankedModel};
pub use tokens::model_terms;
