//! Block-then-rerank: full Harmony matching on the top-k survivors.

use crate::index::{Candidate, RegistryIndex};
use iwb_harmony::{HarmonyEngine, ScoreMatrix};
use iwb_model::{SchemaGraph, SchemaId};
use iwb_pool::{Budget, Interrupt};
use std::collections::HashMap;

/// One reranked registry model.
#[derive(Debug, Clone)]
pub struct RankedModel {
    /// Index of the model in the slice the index was built from.
    pub ordinal: usize,
    /// The model's stable schema id.
    pub id: SchemaId,
    /// First-stage blocking (cosine) score.
    pub blocking_score: f64,
    /// Full-engine model-level score (see [`engine_model_score`]).
    pub engine_score: f64,
}

/// Result of [`block_then_rerank`].
#[derive(Debug, Clone)]
pub struct BlockRerank {
    /// The blocking stage's top-k cut, best first.
    pub candidates: Vec<Candidate>,
    /// The survivors after full-engine scoring, best first
    /// (`engine_score` desc, id asc).
    pub ranked: Vec<RankedModel>,
}

/// Collapse a pairwise element matrix to one model-level relevance
/// score: the mean over query elements of their best match confidence.
/// "How well does this registered model cover my schema's elements?" —
/// 1.0 when every query element has a perfect counterpart, 0.0 when
/// nothing matches (or the matrix is empty).
pub fn engine_model_score(matrix: &ScoreMatrix) -> f64 {
    let rows = matrix.src_ids();
    if rows.is_empty() {
        return 0.0;
    }
    let sum: f64 = rows
        .iter()
        .map(|&src| matrix.best_for_src(src).map_or(0.0, |(_, c)| c.value()))
        .sum();
    sum / rows.len() as f64
}

/// Retrieve the top-`k` blocking candidates for `query`, then run the
/// full Harmony engine on each survivor under `budget`, and rerank by
/// [`engine_model_score`] (ties on stable id). `models` must be the
/// slice the index was built from — candidate ordinals address into it.
///
/// Cost is `k` engine runs instead of `models.len()`; the budget is
/// honoured inside blocking (per query term) and inside every engine
/// run (per shard), so cancellation latency stays bounded by a shard,
/// not a registry sweep.
pub fn block_then_rerank(
    engine: &mut HarmonyEngine,
    index: &RegistryIndex,
    models: &[SchemaGraph],
    query: &SchemaGraph,
    k: usize,
    budget: &Budget,
) -> Result<BlockRerank, Interrupt> {
    assert_eq!(
        index.len(),
        models.len(),
        "index and model slice must describe the same registry"
    );
    let candidates = index.query_budgeted(query, k, budget)?;
    let locked = HashMap::new();
    let mut ranked = Vec::with_capacity(candidates.len());
    for c in &candidates {
        let result = engine.run_budgeted(query, &models[c.ordinal], &locked, budget)?;
        ranked.push(RankedModel {
            ordinal: c.ordinal,
            id: c.id.clone(),
            blocking_score: c.score,
            engine_score: engine_model_score(&result.matrix),
        });
    }
    ranked.sort_by(|a, b| {
        b.engine_score
            .partial_cmp(&a.engine_score)
            .expect("engine scores are finite")
            .then_with(|| a.id.cmp(&b.id))
    });
    Ok(BlockRerank { candidates, ranked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::BlockingConfig;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn schema(id: &str, table: &str, attrs: &[&str]) -> SchemaGraph {
        let mut b = SchemaBuilder::new(id, Metamodel::Relational).open(table);
        for a in attrs {
            b = b.attr(*a, DataType::Text);
        }
        b.close().build()
    }

    #[test]
    fn reranks_the_true_match_to_the_top() {
        let models = vec![
            schema("flights", "AIRCRAFT", &["ACFT_TYPE_CD", "TAIL_NUM"]),
            schema("orders", "PURCHASE_ORDER", &["VENDOR_ID", "ORDER_DT"]),
            schema("people", "EMPLOYEE", &["EMP_NBR", "LAST_NAME"]),
        ];
        let index = RegistryIndex::build(&models, BlockingConfig::default());
        let query = schema("q", "airplane", &["airplaneTypeCode", "tailNumber"]);
        let mut engine = HarmonyEngine::default();
        let out = block_then_rerank(
            &mut engine,
            &index,
            &models,
            &query,
            2,
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(out.candidates.len() <= 2);
        assert_eq!(out.ranked.len(), out.candidates.len());
        assert_eq!(out.ranked[0].id.as_str(), "flights", "{:?}", out.ranked);
        for w in out.ranked.windows(2) {
            assert!(w[0].engine_score >= w[1].engine_score);
        }
    }

    #[test]
    fn cancelled_budget_propagates() {
        let models = vec![schema("a", "T", &["X"]), schema("b", "U", &["Y"])];
        let index = RegistryIndex::build(&models, BlockingConfig::default());
        let query = schema("q", "T", &["X"]);
        let token = iwb_pool::CancelToken::new();
        token.cancel();
        let budget = Budget::new(token, iwb_pool::Deadline::none());
        let mut engine = HarmonyEngine::default();
        let err = block_then_rerank(&mut engine, &index, &models, &query, 2, &budget);
        assert!(err.is_err());
    }

    #[test]
    fn empty_query_matrix_scores_zero() {
        let m = ScoreMatrix::new(vec![], vec![]);
        assert_eq!(engine_model_score(&m), 0.0);
    }
}
