//! Canonical token extraction for blocking.
//!
//! Blocking must survive the renames a real integration introduces —
//! the same perturbations `iwb-registry::perturb` models: synonym
//! substitution, DBA abbreviations, naming-convention flips, dropped
//! documentation. Each raw token is therefore *canonicalised* before it
//! reaches the index: abbreviation-expanded, collapsed to one stable
//! representative of its synonym ring, and stemmed. `ACFT_TYPE_CD` and
//! `airplaneKindCode` then meet on the same posting lists.

use crate::index::BlockingConfig;
use iwb_ling::{is_stopword, porter_stem, split_identifier, tokenize_prose, Thesaurus};
use iwb_model::{ElementKind, SchemaGraph};
use std::collections::BTreeMap;

/// The element kinds whose names feed the index — the same set the
/// match engine scores (see `iwb_harmony::matrix::is_matchable`), so a
/// blocking hit always has something for the reranker to work with.
fn is_indexed(kind: ElementKind) -> bool {
    matches!(
        kind,
        ElementKind::Table
            | ElementKind::Entity
            | ElementKind::Relationship
            | ElementKind::XmlElement
            | ElementKind::Attribute
            | ElementKind::Domain
    )
}

/// Canonicalise one raw lowercase token per the configuration; `None`
/// for stop words and tokens that normalise to nothing.
pub fn canonical_token(
    raw: &str,
    thesaurus: &Thesaurus,
    config: &BlockingConfig,
) -> Option<String> {
    if raw.is_empty() || is_stopword(raw) {
        return None;
    }
    let expanded = if config.expand_abbreviations {
        thesaurus.expand(raw)
    } else {
        raw
    };
    let canonical = if config.collapse_synonyms {
        // The lexicographically-least ring member is a stable choice
        // that both sides of any rename agree on.
        thesaurus
            .synonyms(expanded)
            .into_iter()
            .min()
            .unwrap_or(expanded)
    } else {
        expanded
    };
    Some(if config.stem {
        porter_stem(canonical)
    } else {
        canonical.to_owned()
    })
}

/// The weighted term bag of one schema graph: canonical token →
/// accumulated weight (name tokens weigh 1, documentation tokens
/// [`BlockingConfig::doc_weight`]). A `BTreeMap` so every later float
/// reduction runs in term order, independent of build order or thread
/// count.
pub fn model_terms(
    graph: &SchemaGraph,
    thesaurus: &Thesaurus,
    config: &BlockingConfig,
) -> BTreeMap<String, f64> {
    let mut terms: BTreeMap<String, f64> = BTreeMap::new();
    let mut add = |raw: &str, weight: f64| {
        if let Some(t) = canonical_token(raw, thesaurus, config) {
            *terms.entry(t).or_insert(0.0) += weight;
        }
    };
    for (_, el) in graph.iter() {
        if !is_indexed(el.kind) {
            continue;
        }
        for tok in split_identifier(&el.name) {
            add(&tok, 1.0);
        }
        if config.doc_weight > 0.0 {
            if let Some(doc) = &el.documentation {
                for tok in tokenize_prose(doc) {
                    add(&tok, config.doc_weight);
                }
            }
        }
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn config() -> BlockingConfig {
        BlockingConfig::default()
    }

    #[test]
    fn abbreviations_and_synonyms_collapse() {
        let th = Thesaurus::builtin();
        let cfg = config();
        // acft → aircraft → ring {aircraft, airplane, plane, airframe}
        // → min "aircraft" → stem.
        let a = canonical_token("acft", &th, &cfg).unwrap();
        let b = canonical_token("airplane", &th, &cfg).unwrap();
        let c = canonical_token("aircraft", &th, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        // vendor/supplier land on one representative too.
        assert_eq!(
            canonical_token("vendor", &th, &cfg),
            canonical_token("supplier", &th, &cfg)
        );
    }

    #[test]
    fn stopwords_vanish() {
        let th = Thesaurus::builtin();
        assert_eq!(canonical_token("the", &th, &config()), None);
        assert_eq!(canonical_token("", &th, &config()), None);
    }

    #[test]
    fn stemming_unifies_inflections() {
        let th = Thesaurus::builtin();
        let cfg = config();
        assert_eq!(
            canonical_token("shipping", &th, &cfg),
            canonical_token("shipped", &th, &cfg)
        );
    }

    #[test]
    fn term_bag_weights_names_over_docs() {
        let g = SchemaBuilder::new("s", Metamodel::Relational)
            .open("CUSTOMER")
            .attr_doc("CUST_ID", DataType::Integer, "Unique zorblat of record.")
            .close()
            .build();
        let th = Thesaurus::builtin();
        let terms = model_terms(&g, &th, &config());
        // "customer" appears as a name token (weight 1) and via the
        // cust abbreviation; "zorblat" only in documentation (0.25).
        let name_w = terms
            .get(&canonical_token("customer", &th, &config()).unwrap())
            .copied()
            .unwrap_or(0.0);
        let doc_w = terms.get("zorblat").copied().unwrap_or(0.0);
        assert!(name_w >= 1.0, "{terms:?}");
        assert!((doc_w - 0.25).abs() < 1e-12, "{terms:?}");
    }

    #[test]
    fn renamed_schemas_share_most_terms() {
        let th = Thesaurus::builtin();
        let cfg = config();
        let a = SchemaBuilder::new("a", Metamodel::Relational)
            .open("VENDOR")
            .attr("ACFT_TYPE_CD", DataType::Text)
            .close()
            .build();
        let b = SchemaBuilder::new("b", Metamodel::Relational)
            .open("supplier")
            .attr("airplaneKindCode", DataType::Text)
            .close()
            .build();
        let ta = model_terms(&a, &th, &cfg);
        let tb = model_terms(&b, &th, &cfg);
        let shared = ta.keys().filter(|k| tb.contains_key(*k)).count();
        assert!(shared >= 3, "{ta:?} vs {tb:?}");
    }
}
