//! Property tests for the inverted registry index — the determinism
//! contract the crate docs promise:
//!
//! 1. retrieval is identical across build thread counts,
//! 2. retrieval is invariant under model insertion order
//!    (posting-list permutation), and
//! 3. recall@k against the exhaustive cosine ranking is monotone
//!    non-decreasing in k (top-k is a prefix of top-(k+1)).

use iwb_blocking::{BlockingConfig, Candidate, RegistryIndex};
use iwb_model::SchemaGraph;
use iwb_registry::{generate_registry, GeneratorConfig};
use proptest::prelude::*;

/// A small seeded registry (≈ `265 · scale` models).
fn registry(seed: u64, scale: f64) -> Vec<SchemaGraph> {
    generate_registry(GeneratorConfig::scaled(seed, scale)).models
}

/// A single seeded model to use as the query schema.
fn query_schema(seed: u64) -> SchemaGraph {
    registry(seed, 0.004).pop().unwrap()
}

fn assert_same_candidates(a: &[Candidate], b: &[Candidate]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "scores must be bit-identical: {x:?} vs {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Build thread count never changes what a query returns — not
    /// even the last bit of a score.
    #[test]
    fn retrieval_identical_across_thread_counts(
        seed in 0u64..1000,
        threads in 2usize..6,
        k in 1usize..6,
    ) {
        let models = registry(seed, 0.012);
        let query = query_schema(seed.wrapping_add(7919));
        let seq = RegistryIndex::build(&models, BlockingConfig::default());
        let par = RegistryIndex::build(
            &models,
            BlockingConfig { threads, ..BlockingConfig::default() },
        );
        let a = seq.query(&query, k);
        let b = par.query(&query, k);
        assert_same_candidates(&a, &b);
    }

    /// Permuting the order models are fed to the builder permutes
    /// ordinals but leaves the retrieved (id, score) ranking
    /// bit-identical: postings accumulate in token order, not
    /// insertion order.
    #[test]
    fn retrieval_invariant_under_insertion_order(
        seed in 0u64..1000,
        rot in 1usize..7,
        k in 1usize..8,
    ) {
        let models = registry(seed, 0.012);
        let mut rotated = models.clone();
        let len = rotated.len();
        rotated.rotate_left(rot % len.max(1));
        let query = query_schema(seed.wrapping_add(104_729));
        let a = RegistryIndex::build(&models, BlockingConfig::default())
            .query(&query, k);
        let b = RegistryIndex::build(&rotated, BlockingConfig::default())
            .query(&query, k);
        assert_same_candidates(&a, &b);
    }

    /// recall@k against the exhaustive ranking is monotone
    /// non-decreasing in k, and top-k is a prefix of the exhaustive
    /// ranking.
    #[test]
    fn recall_at_k_is_monotone(seed in 0u64..1000) {
        let models = registry(seed, 0.016);
        let query = query_schema(seed.wrapping_add(1_299_709));
        let index = RegistryIndex::build(&models, BlockingConfig::default());
        let full = index.query(&query, models.len());
        let mut prev_recall = 0.0f64;
        for k in 1..=models.len() {
            let top = index.query(&query, k);
            // Prefix property: top-k is exactly the first k of the
            // full ranking.
            prop_assert_eq!(top.len(), full.len().min(k));
            for (x, y) in top.iter().zip(&full) {
                prop_assert_eq!(&x.id, &y.id);
            }
            let recall = if full.is_empty() {
                1.0
            } else {
                let hit = full
                    .iter()
                    .take(k)
                    .filter(|c| top.iter().any(|t| t.id == c.id))
                    .count();
                hit as f64 / full.len().min(k) as f64
            };
            prop_assert!(recall + 1e-12 >= prev_recall,
                "recall@{} = {} dropped below {}", k, recall, prev_recall);
            prev_recall = recall;
        }
    }
}
