//! The workbench command shell.
//!
//! ```sh
//! cargo run -p iwb-core --bin workbench < session.iwb
//! echo "show coverage" | cargo run -p iwb-core --bin workbench
//! ```
//!
//! Reads a script from stdin (see [`iwb_core::shell`] for the command
//! language) and prints the transcript.

use std::io::Read;

fn main() {
    let mut script = String::new();
    if std::io::stdin().read_to_string(&mut script).is_err() {
        eprintln!("failed to read stdin");
        std::process::exit(1);
    }
    print!("{}", iwb_core::shell::run_script(&script));
}
