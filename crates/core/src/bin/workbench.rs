//! The workbench command shell.
//!
//! ```sh
//! cargo run -p iwb-core --bin workbench < session.iwb
//! echo "show coverage" | cargo run -p iwb-core --bin workbench
//! ```
//!
//! Reads a script from stdin (see [`iwb_core::shell`] for the command
//! language) and prints the transcript. Exits nonzero if any command
//! failed, so scripted sessions are CI-checkable.

use std::io::Read;

fn main() {
    let mut script = String::new();
    if std::io::stdin().read_to_string(&mut script).is_err() {
        eprintln!("failed to read stdin");
        std::process::exit(1);
    }
    let outcome = iwb_core::shell::run_script_counted(&script);
    print!("{}", outcome.transcript);
    if outcome.errors > 0 {
        eprintln!(
            "workbench: {} of {} command(s) failed",
            outcome.errors, outcome.commands
        );
        std::process::exit(1);
    }
}
