//! The Integration Blackboard (§5.1).
//!
//! "The integration blackboard (IB) is a shared repository for
//! information relevant to schema integration that is intended to be
//! accessed by multiple tools, including schemata, mappings, and their
//! component elements." The basic contents are schema graphs and mapping
//! matrices; both are materialised as RDF (§5.1's representation choice)
//! for ad hoc queries and export, while tools use the typed accessors.

use crate::context::SharedContext;
use crate::library::MappingLibrary;
use crate::matrix::MappingMatrix;
use crate::provenance::{ProvenanceKind, ProvenanceLog};
use crate::version::SchemaVersions;
use iwb_harmony::Confidence;
use iwb_model::{ElementId, SchemaGraph, SchemaId};
use iwb_rdf::{schema_rdf, select, Bindings, Term, TriplePattern, TripleStore};
use std::collections::BTreeMap;

/// The shared knowledge repository at the core of the workbench.
///
/// # Examples
///
/// ```
/// use iwb_core::Blackboard;
/// use iwb_harmony::Confidence;
/// use iwb_model::{DataType, Metamodel, SchemaBuilder};
///
/// let source = SchemaBuilder::new("po", Metamodel::Xml)
///     .open("shipTo").attr("subtotal", DataType::Decimal).close().build();
/// let target = SchemaBuilder::new("inv", Metamodel::Xml)
///     .open("shippingInfo").attr("total", DataType::Decimal).close().build();
///
/// let mut bb = Blackboard::new();
/// bb.put_schema(source.clone());
/// bb.put_schema(target.clone());
/// bb.ensure_matrix(source.id(), target.id());
/// let sub = source.find_by_name("subtotal").unwrap();
/// let total = target.find_by_name("total").unwrap();
/// bb.set_cell("user", source.id(), target.id(), sub, total, Confidence::ACCEPT, true);
///
/// // Share the whole board with another workbench instance (§5.1.3).
/// let copy = Blackboard::import_turtle(&bb.export_turtle()).unwrap();
/// assert!(copy.matrix(source.id(), target.id()).unwrap().cell(sub, total).user_defined);
/// ```
#[derive(Default)]
pub struct Blackboard {
    schemas: BTreeMap<SchemaId, SchemaGraph>,
    matrices: BTreeMap<(SchemaId, SchemaId), MappingMatrix>,
    /// Mapping library (§5.1.3).
    pub library: MappingLibrary,
    /// Schema version chains (§5.1.3).
    pub versions: SchemaVersions,
    /// Mapping provenance (§5.1.3).
    pub provenance: ProvenanceLog,
    /// Shared focus context (§5.1.3).
    pub context: SharedContext,
}

impl Blackboard {
    /// An empty blackboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a schema. Also records a version in the
    /// version chain. Replacing a schema does not disturb existing
    /// matrices (their element ids reference the recorded version).
    pub fn put_schema(&mut self, schema: SchemaGraph) -> u32 {
        let id = schema.id().clone();
        let version = self.versions.record(schema.clone());
        self.schemas.insert(id, schema);
        version
    }

    /// Fetch a schema.
    pub fn schema(&self, id: &SchemaId) -> Option<&SchemaGraph> {
        self.schemas.get(id)
    }

    /// Ids of all installed schemata.
    pub fn schema_ids(&self) -> Vec<&SchemaId> {
        self.schemas.keys().collect()
    }

    /// Get or create the mapping matrix for a pair. Both schemata must
    /// be installed.
    ///
    /// # Panics
    /// If either schema is missing.
    pub fn ensure_matrix(&mut self, source: &SchemaId, target: &SchemaId) -> &mut MappingMatrix {
        if !self
            .matrices
            .contains_key(&(source.clone(), target.clone()))
        {
            let s = self.schemas.get(source).expect("source schema installed");
            let t = self.schemas.get(target).expect("target schema installed");
            // "the IB … extends the mapping matrix accordingly" (§5.2.1)
            self.matrices
                .insert((source.clone(), target.clone()), MappingMatrix::new(s, t));
        }
        self.matrices
            .get_mut(&(source.clone(), target.clone()))
            .expect("just inserted")
    }

    /// The matrix for a pair, if created.
    pub fn matrix(&self, source: &SchemaId, target: &SchemaId) -> Option<&MappingMatrix> {
        self.matrices.get(&(source.clone(), target.clone()))
    }

    /// Mutable matrix access.
    pub fn matrix_mut(
        &mut self,
        source: &SchemaId,
        target: &SchemaId,
    ) -> Option<&mut MappingMatrix> {
        self.matrices.get_mut(&(source.clone(), target.clone()))
    }

    /// All matrix pairs.
    pub fn matrix_pairs(&self) -> Vec<(&SchemaId, &SchemaId)> {
        self.matrices.keys().map(|(s, t)| (s, t)).collect()
    }

    /// Set a cell with provenance. Machine suggestions do not override
    /// user decisions (returns false in that case).
    #[allow(clippy::too_many_arguments)] // mirrors the §5.1.2 cell annotations one-to-one
    pub fn set_cell(
        &mut self,
        tool: &str,
        source: &SchemaId,
        target: &SchemaId,
        row: ElementId,
        col: ElementId,
        confidence: Confidence,
        user_defined: bool,
    ) -> bool {
        let Some(matrix) = self.matrices.get_mut(&(source.clone(), target.clone())) else {
            return false;
        };
        let written = if user_defined {
            matrix.decide(row, col, confidence == Confidence::ACCEPT)
        } else {
            matrix.suggest(row, col, confidence)
        };
        if written {
            self.provenance.record(
                tool,
                source.clone(),
                target.clone(),
                ProvenanceKind::CellSet {
                    row,
                    col,
                    confidence: confidence.value(),
                    user_defined,
                },
            );
        }
        written
    }

    /// Set a column's code with provenance.
    pub fn set_column_code(
        &mut self,
        tool: &str,
        source: &SchemaId,
        target: &SchemaId,
        col: ElementId,
        code: impl Into<String>,
    ) -> bool {
        let Some(matrix) = self.matrices.get_mut(&(source.clone(), target.clone())) else {
            return false;
        };
        let Some(meta) = matrix.col_meta_mut(col) else {
            return false;
        };
        meta.code = Some(code.into());
        self.provenance.record(
            tool,
            source.clone(),
            target.clone(),
            ProvenanceKind::CodeSet { col },
        );
        true
    }

    /// Materialise the whole blackboard as RDF: every schema graph plus
    /// every matrix with its annotations (the §5.1 representation).
    pub fn materialize_rdf(&self) -> TripleStore {
        let mut store = TripleStore::new();
        for schema in self.schemas.values() {
            schema_rdf::schema_to_rdf(schema, &mut store);
        }
        for ((source, target), matrix) in &self.matrices {
            let m_iri = iwb_rdf::vocab::matrix_iri(source.as_str(), target.as_str());
            store.insert(
                Term::iri(m_iri.clone()),
                Term::iri(iwb_rdf::vocab::RDF_TYPE),
                Term::iri(iwb_rdf::vocab::MATRIX_CLASS),
            );
            store.insert(
                Term::iri(m_iri.clone()),
                Term::iri(iwb_rdf::vocab::SOURCE_SCHEMA),
                Term::iri(iwb_rdf::vocab::schema_iri(source.as_str())),
            );
            store.insert(
                Term::iri(m_iri.clone()),
                Term::iri(iwb_rdf::vocab::TARGET_SCHEMA),
                Term::iri(iwb_rdf::vocab::schema_iri(target.as_str())),
            );
            if let Some(code) = &matrix.code {
                store.insert(
                    Term::iri(m_iri.clone()),
                    Term::iri(iwb_rdf::vocab::CODE),
                    Term::literal(code),
                );
            }
            // Row and column annotations (§5.1.2: variable-name, code,
            // is-complete) as header resources.
            for (r, &row) in matrix.rows().iter().enumerate() {
                let Some(meta) = matrix.row_meta(row) else {
                    continue;
                };
                if meta.variable.is_none() && !meta.complete {
                    continue;
                }
                let row_iri = Term::iri(format!("{m_iri}#r{r}"));
                store.insert(
                    row_iri.clone(),
                    Term::iri(iwb_rdf::vocab::IN_MATRIX),
                    Term::iri(m_iri.clone()),
                );
                store.insert(
                    row_iri.clone(),
                    Term::iri(iwb_rdf::vocab::SOURCE_ELEMENT),
                    Term::iri(iwb_rdf::vocab::element_iri(source.as_str(), row.index())),
                );
                if let Some(v) = &meta.variable {
                    store.insert(
                        row_iri.clone(),
                        Term::iri(iwb_rdf::vocab::VARIABLE_NAME),
                        Term::literal(v),
                    );
                }
                store.insert(
                    row_iri,
                    Term::iri(iwb_rdf::vocab::IS_COMPLETE),
                    Term::boolean(meta.complete),
                );
            }
            for (c, &col) in matrix.cols().iter().enumerate() {
                let Some(meta) = matrix.col_meta(col) else {
                    continue;
                };
                if meta.code.is_none() && !meta.complete {
                    continue;
                }
                let col_iri = Term::iri(format!("{m_iri}#c{c}"));
                store.insert(
                    col_iri.clone(),
                    Term::iri(iwb_rdf::vocab::IN_MATRIX),
                    Term::iri(m_iri.clone()),
                );
                store.insert(
                    col_iri.clone(),
                    Term::iri(iwb_rdf::vocab::TARGET_ELEMENT),
                    Term::iri(iwb_rdf::vocab::element_iri(target.as_str(), col.index())),
                );
                if let Some(code) = &meta.code {
                    store.insert(
                        col_iri.clone(),
                        Term::iri(iwb_rdf::vocab::CODE),
                        Term::literal(code),
                    );
                }
                store.insert(
                    col_iri,
                    Term::iri(iwb_rdf::vocab::IS_COMPLETE),
                    Term::boolean(meta.complete),
                );
            }
            for (r, &row) in matrix.rows().iter().enumerate() {
                for (c, &col) in matrix.cols().iter().enumerate() {
                    let cell = matrix.cell(row, col);
                    if cell.confidence == Confidence::UNKNOWN && !cell.user_defined {
                        continue; // only materialise informative cells
                    }
                    let cell_iri = iwb_rdf::vocab::cell_iri(source.as_str(), target.as_str(), r, c);
                    let subject = Term::iri(cell_iri);
                    store.insert(
                        subject.clone(),
                        Term::iri(iwb_rdf::vocab::RDF_TYPE),
                        Term::iri(iwb_rdf::vocab::CELL_CLASS),
                    );
                    store.insert(
                        subject.clone(),
                        Term::iri(iwb_rdf::vocab::IN_MATRIX),
                        Term::iri(m_iri.clone()),
                    );
                    store.insert(
                        subject.clone(),
                        Term::iri(iwb_rdf::vocab::SOURCE_ELEMENT),
                        Term::iri(iwb_rdf::vocab::element_iri(source.as_str(), row.index())),
                    );
                    store.insert(
                        subject.clone(),
                        Term::iri(iwb_rdf::vocab::TARGET_ELEMENT),
                        Term::iri(iwb_rdf::vocab::element_iri(target.as_str(), col.index())),
                    );
                    store.insert(
                        subject.clone(),
                        Term::iri(iwb_rdf::vocab::CONFIDENCE_SCORE),
                        Term::double(cell.confidence.value()),
                    );
                    store.insert(
                        subject,
                        Term::iri(iwb_rdf::vocab::IS_USER_DEFINED),
                        Term::boolean(cell.user_defined),
                    );
                }
            }
        }
        store
    }

    /// Evaluate an ad hoc basic-graph-pattern query over the
    /// materialised RDF view (§5.2: "the manager processes ad hoc
    /// queries posed to the IB").
    pub fn query(&self, patterns: &[TriplePattern]) -> (TripleStore, Vec<Bindings>) {
        let store = self.materialize_rdf();
        let solutions = select(&store, patterns);
        (store, solutions)
    }

    /// Export the whole blackboard as Turtle (share across workbench
    /// instances, §5.1.3).
    pub fn export_turtle(&self) -> String {
        iwb_rdf::turtle::write(&self.materialize_rdf())
    }

    /// Reconstruct a blackboard from a Turtle export (§5.1.3: "the
    /// blackboard should be shared across multiple workbench
    /// instances"). Schemata, matrices, cell scores, user-decision
    /// flags, row variables, column code and completion markers all
    /// survive; provenance restarts (the import itself is recorded).
    pub fn import_turtle(text: &str) -> Result<Blackboard, String> {
        let store = iwb_rdf::turtle::read(text).map_err(|e| e.to_string())?;
        let mut bb = Blackboard::new();

        // Schemata.
        let rdf_type = store.lookup(&Term::iri(iwb_rdf::vocab::RDF_TYPE));
        let schema_class = store.lookup(&Term::iri(iwb_rdf::vocab::SCHEMA_CLASS));
        if let (Some(p), Some(o)) = (rdf_type, schema_class) {
            for t in store.matching(None, Some(p), Some(o)) {
                let Some(iri) = store.term(t.s).as_iri() else {
                    continue;
                };
                let Some(id) = iri.strip_prefix("iwb:schema/") else {
                    continue;
                };
                let graph = schema_rdf::schema_from_rdf(&store, id)
                    .ok_or_else(|| format!("schema {id} did not reconstruct"))?;
                bb.put_schema(graph);
            }
        }

        // Matrices.
        let matrix_class = store.lookup(&Term::iri(iwb_rdf::vocab::MATRIX_CLASS));
        let lookup = |name: &str| store.lookup(&Term::iri(name));
        if let (Some(p), Some(o)) = (rdf_type, matrix_class) {
            for t in store.matching(None, Some(p), Some(o)) {
                let m_term = t.s;
                let Some(m_iri) = store.term(m_term).as_iri().map(str::to_owned) else {
                    continue;
                };
                let pair = m_iri
                    .strip_prefix("iwb:matrix/")
                    .and_then(|s| s.split_once("--"))
                    .ok_or_else(|| format!("unparseable matrix IRI {m_iri}"))?;
                let (source, target) = (SchemaId::new(pair.0), SchemaId::new(pair.1));
                if bb.schema(&source).is_none() || bb.schema(&target).is_none() {
                    return Err(format!("matrix {m_iri} references missing schemata"));
                }
                bb.ensure_matrix(&source, &target);
                // Matrix-level code.
                if let Some(code_p) = lookup(iwb_rdf::vocab::CODE) {
                    if let Some(code) = store
                        .object(m_term, code_p)
                        .and_then(|o| store.term(o).as_literal().map(str::to_owned))
                    {
                        bb.matrix_mut(&source, &target).expect("ensured").code = Some(code);
                    }
                }
                // Members (cells and headers) of this matrix.
                let Some(in_matrix_p) = lookup(iwb_rdf::vocab::IN_MATRIX) else {
                    continue;
                };
                let elem_index = |term_id| -> Option<usize> {
                    let iri: &str = store.term(term_id).as_iri()?;
                    iri.rsplit_once("#e")?.1.parse().ok()
                };
                for member in store.matching(None, Some(in_matrix_p), Some(m_term)) {
                    let subj = member.s;
                    let src_el = lookup(iwb_rdf::vocab::SOURCE_ELEMENT)
                        .and_then(|p| store.object(subj, p))
                        .and_then(elem_index)
                        .map(ElementId::from_index);
                    let tgt_el = lookup(iwb_rdf::vocab::TARGET_ELEMENT)
                        .and_then(|p| store.object(subj, p))
                        .and_then(elem_index)
                        .map(ElementId::from_index);
                    let confidence = lookup(iwb_rdf::vocab::CONFIDENCE_SCORE)
                        .and_then(|p| store.object(subj, p))
                        .and_then(|o| store.term(o).as_f64());
                    let complete = lookup(iwb_rdf::vocab::IS_COMPLETE)
                        .and_then(|p| store.object(subj, p))
                        .and_then(|o| store.term(o).as_bool())
                        .unwrap_or(false);
                    match (src_el, tgt_el, confidence) {
                        // A cell: both endpoints plus a confidence.
                        (Some(row), Some(col), Some(score)) => {
                            let user = lookup(iwb_rdf::vocab::IS_USER_DEFINED)
                                .and_then(|p| store.object(subj, p))
                                .and_then(|o| store.term(o).as_bool())
                                .unwrap_or(false);
                            if user {
                                bb.set_cell(
                                    "import",
                                    &source,
                                    &target,
                                    row,
                                    col,
                                    Confidence::raw(score),
                                    true,
                                );
                            } else {
                                bb.set_cell(
                                    "import",
                                    &source,
                                    &target,
                                    row,
                                    col,
                                    Confidence::engine(score),
                                    false,
                                );
                            }
                        }
                        // A row header.
                        (Some(row), None, None) => {
                            let variable = lookup(iwb_rdf::vocab::VARIABLE_NAME)
                                .and_then(|p| store.object(subj, p))
                                .and_then(|o| store.term(o).as_literal().map(str::to_owned));
                            if let Some(meta) = bb
                                .matrix_mut(&source, &target)
                                .and_then(|m| m.row_meta_mut(row))
                            {
                                meta.variable = variable;
                                meta.complete = complete;
                            }
                        }
                        // A column header.
                        (None, Some(col), None) => {
                            let code = lookup(iwb_rdf::vocab::CODE)
                                .and_then(|p| store.object(subj, p))
                                .and_then(|o| store.term(o).as_literal().map(str::to_owned));
                            if let Some(meta) = bb
                                .matrix_mut(&source, &target)
                                .and_then(|m| m.col_meta_mut(col))
                            {
                                meta.code = code;
                                meta.complete = complete;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};
    use iwb_rdf::PatternTerm;

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("po", Metamodel::Xml)
            .open("shipTo")
            .attr("subtotal", DataType::Decimal)
            .close()
            .build();
        let t = SchemaBuilder::new("inv", Metamodel::Xml)
            .open("shippingInfo")
            .attr("total", DataType::Decimal)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn schemas_install_and_version() {
        let (s, t) = schemas();
        let mut bb = Blackboard::new();
        assert_eq!(bb.put_schema(s.clone()), 1);
        assert_eq!(bb.put_schema(s.clone()), 2);
        bb.put_schema(t);
        assert_eq!(bb.schema_ids().len(), 2);
        assert_eq!(bb.versions.version_count(s.id()), 2);
    }

    #[test]
    fn matrix_lifecycle_and_cells() {
        let (s, t) = schemas();
        let mut bb = Blackboard::new();
        bb.put_schema(s.clone());
        bb.put_schema(t.clone());
        bb.ensure_matrix(s.id(), t.id());
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        assert!(bb.set_cell(
            "harmony",
            s.id(),
            t.id(),
            sub,
            total,
            Confidence::engine(0.8),
            false
        ));
        assert!(bb.set_cell("user", s.id(), t.id(), sub, total, Confidence::ACCEPT, true));
        // Machine cannot override the decision.
        assert!(!bb.set_cell(
            "harmony",
            s.id(),
            t.id(),
            sub,
            total,
            Confidence::engine(0.1),
            false
        ));
        let m = bb.matrix(s.id(), t.id()).unwrap();
        assert_eq!(m.cell(sub, total).confidence, Confidence::ACCEPT);
        assert_eq!(bb.provenance.cell_history(sub, total).len(), 2);
    }

    #[test]
    fn rdf_materialisation_supports_queries() {
        let (s, t) = schemas();
        let mut bb = Blackboard::new();
        bb.put_schema(s.clone());
        bb.put_schema(t.clone());
        bb.ensure_matrix(s.id(), t.id());
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        bb.set_cell("user", s.id(), t.id(), sub, total, Confidence::ACCEPT, true);
        // Query: which cells are user-defined?
        let (store, solutions) = bb.query(&[
            TriplePattern::new(
                PatternTerm::var("cell"),
                Term::iri(iwb_rdf::vocab::IS_USER_DEFINED),
                Term::boolean(true),
            ),
            TriplePattern::new(
                PatternTerm::var("cell"),
                Term::iri(iwb_rdf::vocab::SOURCE_ELEMENT),
                PatternTerm::var("src"),
            ),
        ]);
        assert_eq!(solutions.len(), 1);
        let src_term = store.term(solutions[0]["src"]);
        assert_eq!(
            src_term.as_iri().unwrap(),
            iwb_rdf::vocab::element_iri("po", sub.index())
        );
    }

    #[test]
    fn column_code_with_provenance() {
        let (s, t) = schemas();
        let mut bb = Blackboard::new();
        bb.put_schema(s.clone());
        bb.put_schema(t.clone());
        bb.ensure_matrix(s.id(), t.id());
        let total = t.find_by_name("total").unwrap();
        assert!(bb.set_column_code(
            "aqualogic",
            s.id(),
            t.id(),
            total,
            "data($shipto/subtotal) * 1.05"
        ));
        let m = bb.matrix(s.id(), t.id()).unwrap();
        assert!(m.col_meta(total).unwrap().code.is_some());
        assert_eq!(bb.provenance.by_tool("aqualogic").len(), 1);
        // Unknown column fails cleanly.
        assert!(!bb.set_column_code("x", s.id(), t.id(), s.root(), "nope"));
    }

    #[test]
    fn import_turtle_reconstructs_matrices() {
        let (s, t) = schemas();
        let mut bb = Blackboard::new();
        bb.put_schema(s.clone());
        bb.put_schema(t.clone());
        bb.ensure_matrix(s.id(), t.id());
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        let ship = s.find_by_name("shipTo").unwrap();
        bb.set_cell("user", s.id(), t.id(), sub, total, Confidence::ACCEPT, true);
        bb.set_cell(
            "harmony",
            s.id(),
            t.id(),
            ship,
            total,
            Confidence::engine(-0.4),
            false,
        );
        bb.matrix_mut(s.id(), t.id())
            .unwrap()
            .row_meta_mut(ship)
            .unwrap()
            .variable = Some("shipto".into());
        bb.set_column_code(
            "mapper",
            s.id(),
            t.id(),
            total,
            "data($shipto/subtotal) * 1.05",
        );
        bb.matrix_mut(s.id(), t.id())
            .unwrap()
            .col_meta_mut(total)
            .unwrap()
            .complete = true;
        bb.matrix_mut(s.id(), t.id()).unwrap().code = Some("the whole mapping".into());

        let text = bb.export_turtle();
        let imported = Blackboard::import_turtle(&text).expect("import");
        // Schemata are back.
        let s2 = imported.schema(s.id()).unwrap();
        assert_eq!(s2.len(), s.len());
        // Matrix state survived.
        let m = imported.matrix(s.id(), t.id()).unwrap();
        let cell = m.cell(sub, total);
        assert_eq!(cell.confidence, Confidence::ACCEPT);
        assert!(cell.user_defined);
        assert!((m.cell(ship, total).confidence.value() + 0.4).abs() < 1e-9);
        assert!(!m.cell(ship, total).user_defined);
        assert_eq!(
            m.row_meta(ship).unwrap().variable.as_deref(),
            Some("shipto")
        );
        assert!(m.col_meta(total).unwrap().complete);
        assert!(m
            .col_meta(total)
            .unwrap()
            .code
            .as_deref()
            .unwrap()
            .contains("1.05"));
        assert_eq!(m.code.as_deref(), Some("the whole mapping"));
        // The import is on the provenance record.
        assert!(imported.provenance.by_tool("import").len() >= 2);
        // And a second export is identical (idempotent sharing).
        assert_eq!(imported.export_turtle(), text);
    }

    #[test]
    fn import_rejects_matrix_without_schemata() {
        let text = "iwb:matrix/a--b rdf:type iwb:MappingMatrix .\n";
        assert!(Blackboard::import_turtle(text).is_err());
        assert!(Blackboard::import_turtle("not turtle at all").is_err());
    }

    #[test]
    fn turtle_export_round_trips_through_parser() {
        let (s, t) = schemas();
        let mut bb = Blackboard::new();
        bb.put_schema(s.clone());
        bb.put_schema(t);
        let text = bb.export_turtle();
        let reparsed = iwb_rdf::turtle::read(&text).unwrap();
        assert_eq!(reparsed.len(), bb.materialize_rdf().len());
    }
}
