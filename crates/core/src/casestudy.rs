//! The §5.3 case study, scripted end to end.
//!
//! "We have begun validating the integration workbench by using it to
//! allow Harmony and BEA's AquaLogic tool to interoperate." The pilot's
//! storyline, reproduced here step by step:
//!
//! 1. the mapping tool is "the first tool launched by the workbench";
//!    the engineer loads schemata (the Figure 2 purchase-order pair);
//! 2. she chooses a sub-tree and "requests recommended matches from
//!    Harmony"; Harmony runs inside one IB transaction;
//! 3. she accepts/rejects the proposals in the Harmony GUI (the
//!    Figure 3 decisions) and exits, completing the transaction;
//! 4. the mapping tool updates its internal representation from the
//!    changes, she "provides element and attribute transformations that
//!    are incorporated into the generated XQuery";
//! 5. "At any point this code can be tested on sample documents" — the
//!    generated mapping executes over a sample purchase order and the
//!    result is verified against the target schema.

use crate::manager::WorkbenchManager;
use crate::tool::{ToolArgs, ToolError};
use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};
use iwb_mapper::{
    execute, parse_expr, verify_instance, AttributeTransformation, EntityMapping, EntityRule,
    LogicalMapping, Node,
};
use iwb_model::SchemaId;

/// Everything the case study produced.
#[derive(Debug, Clone)]
pub struct CaseStudyReport {
    /// The full session trace (registration → events), for Figure 4.
    pub trace: Vec<String>,
    /// The rendered Figure 3 mapping matrix.
    pub matrix_text: String,
    /// The assembled XQuery (the matrix-level `code` annotation).
    pub xquery: String,
    /// The sample source document.
    pub sample_input: Node,
    /// The transformed target document.
    pub sample_output: Node,
    /// Verification violations against the target schema (empty = the
    /// mapping is valid, task 9 passes).
    pub violations: Vec<String>,
}

/// Run the full case study, returning the report.
pub fn run_case_study() -> Result<CaseStudyReport, ToolError> {
    let mut m = WorkbenchManager::with_builtin_tools();
    let po = SchemaId::new("purchaseOrder");
    let inv = SchemaId::new("invoice");

    // Step 1: load both schemata.
    for (text, id) in [
        (FIG2_SOURCE_XSD, "purchaseOrder"),
        (FIG2_TARGET_XSD, "invoice"),
    ] {
        m.invoke(
            "schema-loader",
            &ToolArgs::new()
                .with("format", "xsd")
                .with("text", text)
                .with("schema-id", id),
        )?;
    }

    // Step 2: the engineer picks the shipTo sub-tree and requests
    // recommended matches from Harmony (one IB transaction).
    m.invoke(
        "harmony",
        &ToolArgs::new()
            .with("source", "purchaseOrder")
            .with("target", "invoice")
            .with("subtree", "purchaseOrder/purchaseOrder/shipTo"),
    )?;

    // Step 3: she reviews in the Harmony GUI and records exactly the
    // Figure 3 decisions.
    let decisions = [
        ("accept", "shipTo/firstName", "shippingInfo/name"),
        ("accept", "shipTo/lastName", "shippingInfo/name"),
        ("accept", "shipTo/subtotal", "shippingInfo/total"),
        ("reject", "shipTo/firstName", "shippingInfo/total"),
        ("reject", "shipTo/lastName", "shippingInfo/total"),
        ("reject", "shipTo/subtotal", "shippingInfo/name"),
    ];
    for (action, row, col) in decisions {
        m.invoke(
            "harmony",
            &ToolArgs::new()
                .with("action", action)
                .with("source", "purchaseOrder")
                .with("target", "invoice")
                .with("row", format!("purchaseOrder/purchaseOrder/{row}"))
                .with("col", format!("invoice/invoice/{col}")),
        )?;
    }

    // Step 4: in the mapping tool she binds the Figure 3 row variables
    // and provides the element/attribute transformations.
    for (row, var) in [
        ("purchaseOrder/purchaseOrder/shipTo", "shipto"),
        ("purchaseOrder/purchaseOrder/shipTo/firstName", "fName"),
        ("purchaseOrder/purchaseOrder/shipTo/lastName", "lName"),
    ] {
        m.invoke(
            "aqualogic-mapper",
            &ToolArgs::new()
                .with("action", "bind-variable")
                .with("source", "purchaseOrder")
                .with("target", "invoice")
                .with("row", row)
                .with("variable", var),
        )?;
    }
    for (col, code) in [
        (
            "invoice/invoice/shippingInfo/name",
            "concat(data($lName), concat(\", \", data($fName)))",
        ),
        (
            "invoice/invoice/shippingInfo/total",
            "data($shipto/subtotal) * 1.05",
        ),
    ] {
        m.invoke(
            "aqualogic-mapper",
            &ToolArgs::new()
                .with("action", "set-code")
                .with("source", "purchaseOrder")
                .with("target", "invoice")
                .with("col", col)
                .with("code", code),
        )?;
    }

    // Step 5: generate the XQuery…
    let report = m.invoke(
        "xquery-codegen",
        &ToolArgs::new()
            .with("source", "purchaseOrder")
            .with("target", "invoice"),
    )?;
    let xquery = report.output;

    // …and test it on a sample document. The execution engine runs the
    // logical mapping the matrix encodes.
    let sample_input = Node::elem("purchaseOrder").with(
        Node::elem("shipTo")
            .with_leaf("firstName", "Ada")
            .with_leaf("lastName", "Lovelace")
            .with_leaf("subtotal", 100.0),
    );
    let logical = matrix_to_logical(&m, &po, &inv)?;
    let sample_output = execute(&logical, &sample_input)
        .map_err(|e| ToolError::Failed(format!("execution failed: {e}")))?;

    // Cross-check: the generated XQuery itself runs (via the FLWOR
    // interpreter) and must agree with the logical-mapping execution.
    // `$doc` is the document node whose child is the root element.
    let document = Node::elem("document").with(sample_input.clone());
    let via_xquery = iwb_mapper::run_xquery(&xquery, &document)
        .map_err(|e| ToolError::Failed(format!("generated XQuery failed to run: {e}")))?;
    let expected = sample_output
        .child("shippingInfo")
        .ok_or_else(|| ToolError::Failed("no shippingInfo produced".into()))?;
    let got_name = via_xquery.at("shippingInfo/name").or(via_xquery.at("name"));
    if got_name.map(|n| n.value.clone()) != expected.child("name").map(|n| n.value.clone()) {
        return Err(ToolError::Failed(
            "XQuery interpretation disagrees with logical-mapping execution".into(),
        ));
    }
    let target_schema = m
        .blackboard()
        .schema(&inv)
        .ok_or_else(|| ToolError::UnknownSchema("invoice".into()))?;
    let violations: Vec<String> = verify_instance(target_schema, &sample_output)
        .into_iter()
        .map(|v| v.to_string())
        .collect();

    let source_schema = m.blackboard().schema(&po).expect("loaded");
    let matrix_text = m
        .blackboard()
        .matrix(&po, &inv)
        .expect("created by the pipeline")
        .render(source_schema, target_schema);

    Ok(CaseStudyReport {
        trace: m.trace().to_vec(),
        matrix_text,
        xquery,
        sample_input,
        sample_output,
        violations,
    })
}

/// Translate the matrix's code annotations into an executable
/// [`LogicalMapping`]: one Direct rule over the shipTo entity whose
/// attribute expressions are the column code snippets, with the row
/// variables bound to the entity's children.
fn matrix_to_logical(
    m: &WorkbenchManager,
    po: &SchemaId,
    inv: &SchemaId,
) -> Result<LogicalMapping, ToolError> {
    let matrix = m
        .blackboard()
        .matrix(po, inv)
        .ok_or_else(|| ToolError::Failed("matrix missing".into()))?;
    let tg = m.blackboard().schema(inv).expect("loaded");
    let mut rule = EntityRule::new(
        "shippingInfo",
        EntityMapping::Direct {
            source: "shipTo".into(),
        },
    );
    for &col in matrix.cols() {
        if tg.element(col).kind != iwb_model::ElementKind::Attribute {
            continue;
        }
        let Some(code) = matrix.col_meta(col).and_then(|meta| meta.code.clone()) else {
            continue;
        };
        // Rebase the figure's variables onto the execution entity:
        // $shipto → $src, $fName/$lName → their paths under $src.
        let rebased = code
            .replace("$shipto", "$src")
            .replace("$fName", "$src/firstName")
            .replace("$lName", "$src/lastName");
        let expr = parse_expr(&rebased)
            .map_err(|e| ToolError::Failed(format!("bad column code {code:?}: {e}")))?;
        rule = rule.with_attr(iwb_mapper::logical::AttrRule::new(
            tg.element(col).name.clone(),
            AttributeTransformation::Scalar(expr),
        ));
    }
    Ok(LogicalMapping::new("invoice").with_rule(rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_mapper::Value;

    #[test]
    fn case_study_runs_end_to_end() {
        let report = run_case_study().unwrap();
        // Figure 3's annotations appear in the rendered matrix.
        assert!(report.matrix_text.contains("variable=shipto"));
        assert!(report
            .matrix_text
            .contains("confidence=+1.00 user-defined=true"));
        assert!(report
            .matrix_text
            .contains("confidence=-1.00 user-defined=true"));
        // The assembled XQuery has the figure's shape.
        assert!(report.xquery.contains("let $shipto :="));
        assert!(report.xquery.contains("* 1.05"));
        // The sample document transformed correctly.
        let info = report.sample_output.child("shippingInfo").unwrap();
        assert_eq!(info.value_at("name"), Value::from("Lovelace, Ada"));
        assert_eq!(info.value_at("total").as_num(), Some(105.0));
        // Task 9: the output verifies against the target schema.
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // The trace shows the Figure 4 flow.
        assert!(report.trace.iter().any(|t| t.contains("invoke harmony")));
        assert!(report.trace.iter().any(|t| t.contains("txn commit")));
    }
}
