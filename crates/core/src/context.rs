//! Shared contextual state (§5.1.3).
//!
//! "Based on Section 4.2, the blackboard should allow contextual
//! information, such as focus on a particular subschema, to be shared
//! across tools." One tool narrowing its view (the Harmony sub-tree
//! filter) updates the shared context; the next tool launched inherits
//! the focus.

use iwb_model::{ElementPath, SchemaId};

/// The shared focus/settings block stored on the blackboard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharedContext {
    /// The sub-schema the engineer is currently focused on, if any.
    pub focus: Option<Focus>,
    /// The confidence-slider threshold shared between tool GUIs.
    pub confidence_threshold: f64,
}

/// A sub-schema focus.
#[derive(Debug, Clone, PartialEq)]
pub struct Focus {
    /// Which schema.
    pub schema: SchemaId,
    /// Root of the focused sub-tree (by path).
    pub subtree: ElementPath,
}

impl SharedContext {
    /// A context with no focus and a zero threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Focus on a sub-schema.
    pub fn set_focus(&mut self, schema: SchemaId, subtree: ElementPath) {
        self.focus = Some(Focus { schema, subtree });
    }

    /// Clear the focus.
    pub fn clear_focus(&mut self) {
        self.focus = None;
    }

    /// True if the given path is inside the current focus (always true
    /// when unfocused or when the schema differs — other schemata are
    /// unconstrained).
    pub fn in_focus(&self, schema: &SchemaId, path: &ElementPath) -> bool {
        match &self.focus {
            None => true,
            Some(f) if &f.schema != schema => true,
            Some(f) => f.subtree.is_prefix_of(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focus_scopes_paths() {
        let mut ctx = SharedContext::new();
        let po = SchemaId::new("po");
        ctx.set_focus(po.clone(), ElementPath::parse("po/shipTo"));
        assert!(ctx.in_focus(&po, &ElementPath::parse("po/shipTo/firstName")));
        assert!(!ctx.in_focus(&po, &ElementPath::parse("po/billTo/zip")));
        // Other schemata unconstrained.
        assert!(ctx.in_focus(&SchemaId::new("inv"), &ElementPath::parse("inv/x")));
        ctx.clear_focus();
        assert!(ctx.in_focus(&po, &ElementPath::parse("po/billTo/zip")));
    }
}
