//! System implementation and deployment (tasks 12–13, §3.5).
//!
//! "Finally we are ready to develop and deploy a system that addresses
//! operational constraints—factors external to schema and instance
//! elements. Examples include determining the frequency and granularity
//! of updates and the policy that governs exceptional conditions." The
//! integration engineers who reviewed the task model "stressed the
//! significance of these constraints on real-world integration systems".
//!
//! [`IntegrationSolution`] packages an executable mapping with exactly
//! those operational decisions; [`IntegrationSolution::deploy`] wires it
//! into a [`DeployedApplication`] that processes document batches,
//! enforcing the exception policy and verifying output against the
//! target schema, with a running operations report.

use iwb_mapper::{execute, verify_instance, LogicalMapping, Node};
use iwb_model::SchemaGraph;
use std::fmt;

/// How often the integration runs (§3.5's "frequency of updates").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateFrequency {
    /// Each document is translated as it arrives.
    Continuous,
    /// Documents are queued and processed in batches of the given size.
    Batch(usize),
}

/// Granularity of updates: what is re-translated when sources change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateGranularity {
    /// Whole documents are re-translated.
    Document,
    /// Only changed entities are re-translated.
    Entity,
}

/// "The policy that governs exceptional conditions."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionPolicy {
    /// A failing document aborts the whole batch.
    Abort,
    /// Failing documents are skipped and counted.
    Skip,
    /// Failing documents are routed to a dead-letter queue for manual
    /// repair.
    DeadLetter,
}

/// The operational constraints of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationalConstraints {
    /// Update frequency.
    pub frequency: UpdateFrequency,
    /// Update granularity.
    pub granularity: UpdateGranularity,
    /// Exception handling policy.
    pub exceptions: ExceptionPolicy,
    /// Reject outputs that violate the target schema (task 9 enforced
    /// at run time).
    pub verify_output: bool,
}

impl Default for OperationalConstraints {
    fn default() -> Self {
        OperationalConstraints {
            frequency: UpdateFrequency::Continuous,
            granularity: UpdateGranularity::Document,
            exceptions: ExceptionPolicy::Skip,
            verify_output: true,
        }
    }
}

/// Task 12's output: the designed integration system.
///
/// # Examples
///
/// ```
/// use iwb_core::deploy::{IntegrationSolution, OperationalConstraints};
/// use iwb_mapper::logical::AttrRule;
/// use iwb_mapper::{parse_expr, AttributeTransformation, EntityMapping, EntityRule,
///                  LogicalMapping, Node};
/// use iwb_model::{DataType, Metamodel, SchemaBuilder};
///
/// let target = SchemaBuilder::new("out", Metamodel::Xml)
///     .open("item").attr("total", DataType::Decimal).close().build();
/// let mapping = LogicalMapping::new("out").with_rule(
///     EntityRule::new("item", EntityMapping::Direct { source: "row".into() })
///         .with_attr(AttrRule::new(
///             "total",
///             AttributeTransformation::Scalar(parse_expr("data($src/amount) * 2").unwrap()),
///         )),
/// );
/// let mut app = IntegrationSolution::new(
///     "doubler", mapping, target, OperationalConstraints::default(),
/// ).deploy();
/// let docs = vec![Node::elem("in").with(Node::elem("row").with_leaf("amount", 21.0))];
/// let out = app.process(&docs).unwrap();
/// assert_eq!(out[0].child("item").unwrap().value_at("total").as_num(), Some(42.0));
/// ```
#[derive(Debug, Clone)]
pub struct IntegrationSolution {
    /// Human-readable solution name.
    pub name: String,
    /// The executable mapping (task 8's deliverable).
    pub mapping: LogicalMapping,
    /// The target schema outputs are verified against.
    pub target: SchemaGraph,
    /// The operational decisions.
    pub constraints: OperationalConstraints,
}

impl IntegrationSolution {
    /// Package a solution.
    pub fn new(
        name: impl Into<String>,
        mapping: LogicalMapping,
        target: SchemaGraph,
        constraints: OperationalConstraints,
    ) -> Self {
        IntegrationSolution {
            name: name.into(),
            mapping,
            target,
            constraints,
        }
    }

    /// Task 13: deploy the application.
    pub fn deploy(self) -> DeployedApplication {
        DeployedApplication {
            solution: self,
            stats: RunStats::default(),
            dead_letters: Vec::new(),
        }
    }
}

/// Counters accumulated by a deployed application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Documents successfully translated.
    pub succeeded: usize,
    /// Documents that failed translation or verification.
    pub failed: usize,
    /// Batches processed.
    pub batches: usize,
}

/// A processing failure surfaced to the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// Translation failed and the policy is [`ExceptionPolicy::Abort`].
    Aborted {
        /// Index of the failing document within the submitted batch.
        document: usize,
        /// The underlying error.
        reason: String,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Aborted { document, reason } => {
                write!(f, "batch aborted at document {document}: {reason}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// The running application (task 13's deliverable).
#[derive(Debug, Clone)]
pub struct DeployedApplication {
    solution: IntegrationSolution,
    stats: RunStats,
    dead_letters: Vec<(Node, String)>,
}

impl DeployedApplication {
    /// The packaged solution.
    pub fn solution(&self) -> &IntegrationSolution {
        &self.solution
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Documents routed to the dead-letter queue, with their failure
    /// reasons.
    pub fn dead_letters(&self) -> &[(Node, String)] {
        &self.dead_letters
    }

    /// Process a stream of source documents under the configured
    /// frequency and exception policy. Returns the translated target
    /// documents (in input order, failures omitted).
    pub fn process(&mut self, documents: &[Node]) -> Result<Vec<Node>, DeployError> {
        let batch_size = match self.solution.constraints.frequency {
            UpdateFrequency::Continuous => 1,
            UpdateFrequency::Batch(n) => n.max(1),
        };
        let mut out = Vec::new();
        for batch in documents.chunks(batch_size) {
            self.stats.batches += 1;
            for (i, doc) in batch.iter().enumerate() {
                match self.translate_one(doc) {
                    Ok(translated) => {
                        self.stats.succeeded += 1;
                        out.push(translated);
                    }
                    Err(reason) => {
                        self.stats.failed += 1;
                        match self.solution.constraints.exceptions {
                            ExceptionPolicy::Abort => {
                                return Err(DeployError::Aborted {
                                    document: i,
                                    reason,
                                })
                            }
                            ExceptionPolicy::Skip => {}
                            ExceptionPolicy::DeadLetter => {
                                self.dead_letters.push((doc.clone(), reason));
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn translate_one(&self, doc: &Node) -> Result<Node, String> {
        let translated = execute(&self.solution.mapping, doc).map_err(|e| e.to_string())?;
        if self.solution.constraints.verify_output {
            let violations = verify_instance(&self.solution.target, &translated);
            if !violations.is_empty() {
                return Err(format!(
                    "verification failed: {}",
                    violations
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ));
            }
        }
        Ok(translated)
    }

    /// One-line operations summary for dashboards.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} ok, {} failed, {} batch(es), {} dead-lettered",
            self.solution.name,
            self.stats.succeeded,
            self.stats.failed,
            self.stats.batches,
            self.dead_letters.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_mapper::logical::AttrRule;
    use iwb_mapper::{parse_expr, AttributeTransformation, EntityMapping, EntityRule};
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn solution(constraints: OperationalConstraints) -> IntegrationSolution {
        let target = SchemaBuilder::new("out", Metamodel::Xml)
            .open("item")
            .attr("total", DataType::Decimal)
            .close()
            .build();
        let mapping = LogicalMapping::new("out").with_rule(
            EntityRule::new(
                "item",
                EntityMapping::Direct {
                    source: "row".into(),
                },
            )
            .with_attr(AttrRule::new(
                "total",
                AttributeTransformation::Scalar(parse_expr("data($src/amount) * 2").unwrap()),
            )),
        );
        IntegrationSolution::new("doubler", mapping, target, constraints)
    }

    fn good_doc(amount: f64) -> Node {
        Node::elem("in").with(Node::elem("row").with_leaf("amount", amount))
    }

    fn bad_doc() -> Node {
        // Non-numeric amount makes the expression fail.
        Node::elem("in").with(Node::elem("row").with_leaf("amount", "NaN-ish"))
    }

    #[test]
    fn continuous_processing_translates_documents() {
        let mut app = solution(OperationalConstraints::default()).deploy();
        let out = app.process(&[good_doc(1.0), good_doc(2.0)]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[1].child("item").unwrap().value_at("total").as_num(),
            Some(4.0)
        );
        assert_eq!(app.stats().succeeded, 2);
        assert_eq!(app.stats().batches, 2, "continuous = batch size 1");
    }

    #[test]
    fn batching_groups_documents() {
        let constraints = OperationalConstraints {
            frequency: UpdateFrequency::Batch(3),
            ..Default::default()
        };
        let mut app = solution(constraints).deploy();
        app.process(&[good_doc(1.0), good_doc(2.0), good_doc(3.0), good_doc(4.0)])
            .unwrap();
        assert_eq!(app.stats().batches, 2);
    }

    #[test]
    fn skip_policy_counts_failures_and_continues() {
        let mut app = solution(OperationalConstraints::default()).deploy();
        let out = app
            .process(&[good_doc(1.0), bad_doc(), good_doc(3.0)])
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(app.stats().failed, 1);
        assert!(app.dead_letters().is_empty());
        assert!(app.summary().contains("2 ok, 1 failed"));
    }

    #[test]
    fn abort_policy_stops_the_batch() {
        let constraints = OperationalConstraints {
            exceptions: ExceptionPolicy::Abort,
            ..Default::default()
        };
        let mut app = solution(constraints).deploy();
        let err = app.process(&[bad_doc()]).unwrap_err();
        assert!(matches!(err, DeployError::Aborted { document: 0, .. }));
        assert!(err.to_string().contains("aborted"));
    }

    #[test]
    fn dead_letter_policy_queues_failures() {
        let constraints = OperationalConstraints {
            exceptions: ExceptionPolicy::DeadLetter,
            ..Default::default()
        };
        let mut app = solution(constraints).deploy();
        app.process(&[bad_doc(), good_doc(1.0)]).unwrap();
        assert_eq!(app.dead_letters().len(), 1);
        assert!(app.dead_letters()[0].1.contains("not numeric"));
    }

    #[test]
    fn runtime_verification_rejects_invalid_output() {
        // A mapping that emits a column the target schema does not have.
        let target = SchemaBuilder::new("out", Metamodel::Xml)
            .open("item")
            .attr("total", DataType::Decimal)
            .close()
            .build();
        let mapping = LogicalMapping::new("out").with_rule(
            EntityRule::new(
                "item",
                EntityMapping::Direct {
                    source: "row".into(),
                },
            )
            .with_attr(AttrRule::new(
                "stray",
                AttributeTransformation::Scalar(parse_expr("1").unwrap()),
            )),
        );
        let sol =
            IntegrationSolution::new("strict", mapping, target, OperationalConstraints::default());
        let mut app = sol.deploy();
        let out = app.process(&[good_doc(1.0)]).unwrap();
        assert!(out.is_empty());
        assert_eq!(app.stats().failed, 1);
    }
}
