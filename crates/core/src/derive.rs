//! Target-schema derivation from inter-source correspondences.
//!
//! Task 2 is optional "because the target schema may be derived from
//! the correspondences identified among the source schemata, as is
//! assumed in [Batini et al.]" (§3.1), and §3.2 notes that "in the
//! absence of a target schema, correspondences can also be established
//! between pairs of source schemata". [`derive_target`] implements that
//! path: given two source schemata and a set of accepted inter-source
//! correspondences, it merges them into an integrated schema — matched
//! elements collapse into one (keeping the better-documented variant),
//! unmatched elements carry over.

use iwb_model::{ElementId, ElementKind, Metamodel, SchemaElement, SchemaGraph};
use std::collections::HashMap;

/// Where a derived element came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedOrigin {
    /// Path of the element in the derived target.
    pub target_path: String,
    /// Contributing source paths (1 for carried-over, 2 for merged).
    pub source_paths: Vec<String>,
}

/// The result of a derivation.
#[derive(Debug, Clone)]
pub struct DerivedTarget {
    /// The integrated schema.
    pub schema: SchemaGraph,
    /// Per-element origin records (mapping provenance for free).
    pub origins: Vec<DerivedOrigin>,
}

/// Merge two source schemata into a derived target, collapsing the
/// accepted `(left element, right element)` correspondences.
///
/// Supported shape: container elements (tables/entities/XML elements)
/// at depth 1 with leaf attributes at depth 2 — the shape every loader
/// in this workspace produces for relational and ER sources. Deeper XML
/// nesting carries over from the left source unmerged.
pub fn derive_target(
    id: &str,
    left: &SchemaGraph,
    right: &SchemaGraph,
    accepted: &[(ElementId, ElementId)],
    metamodel: Metamodel,
) -> DerivedTarget {
    let mut target = SchemaGraph::new(id, metamodel);
    let mut origins = Vec::new();
    let right_to_left: HashMap<ElementId, ElementId> =
        accepted.iter().map(|&(l, r)| (r, l)).collect();
    let left_to_right: HashMap<ElementId, ElementId> =
        accepted.iter().map(|&(l, r)| (l, r)).collect();

    // Which target node each left/right container landed in.
    let mut left_container: HashMap<ElementId, ElementId> = HashMap::new();
    let mut right_container: HashMap<ElementId, ElementId> = HashMap::new();

    let container_edge = metamodel.top_level_edge();
    let container_kind = metamodel.container_kind();

    // 1. Left containers (merged with their right counterparts).
    for &(_, l_cont) in left.children(left.root()) {
        if !left.element(l_cont).kind.is_container() {
            continue;
        }
        let r_cont = left_to_right.get(&l_cont).copied();
        let el = match r_cont {
            Some(r) => merged_element(left.element(l_cont), right.element(r), container_kind),
            None => retag(left.element(l_cont), container_kind),
        };
        let t = target.add_child(target.root(), container_edge, el);
        left_container.insert(l_cont, t);
        let mut source_paths = vec![left.name_path(l_cont)];
        if let Some(r) = r_cont {
            right_container.insert(r, t);
            source_paths.push(right.name_path(r));
        }
        origins.push(DerivedOrigin {
            target_path: target.name_path(t),
            source_paths,
        });
    }
    // 2. Right containers with no counterpart.
    for &(_, r_cont) in right.children(right.root()) {
        if !right.element(r_cont).kind.is_container() || right_container.contains_key(&r_cont) {
            continue;
        }
        if right_to_left.contains_key(&r_cont) {
            continue; // merged above
        }
        let t = target.add_child(
            target.root(),
            container_edge,
            retag(right.element(r_cont), container_kind),
        );
        right_container.insert(r_cont, t);
        origins.push(DerivedOrigin {
            target_path: target.name_path(t),
            source_paths: vec![right.name_path(r_cont)],
        });
    }

    // 3. Attributes: left side first (merging matched right attributes
    // in), then unmatched right attributes.
    for (&l_cont, &t_cont) in &left_container {
        for &(edge, l_attr) in left.children(l_cont) {
            if left.element(l_attr).kind != ElementKind::Attribute {
                continue;
            }
            let r_attr = left_to_right.get(&l_attr).copied();
            let el = match r_attr {
                Some(r) => merged_element(
                    left.element(l_attr),
                    right.element(r),
                    ElementKind::Attribute,
                ),
                None => left.element(l_attr).clone(),
            };
            let t = target.add_child(t_cont, edge, el);
            let mut source_paths = vec![left.name_path(l_attr)];
            if let Some(r) = r_attr {
                source_paths.push(right.name_path(r));
            }
            origins.push(DerivedOrigin {
                target_path: target.name_path(t),
                source_paths,
            });
        }
    }
    for (&r_cont, &t_cont) in &right_container {
        for &(edge, r_attr) in right.children(r_cont) {
            if right.element(r_attr).kind != ElementKind::Attribute
                || right_to_left.contains_key(&r_attr)
            {
                continue;
            }
            // Avoid sibling-name collisions with already-placed left
            // attributes.
            let mut el = right.element(r_attr).clone();
            let sibling_clash = target
                .children(t_cont)
                .iter()
                .any(|&(_, c)| target.element(c).name == el.name);
            if sibling_clash {
                el.name = format!("{}_2", el.name);
            }
            let t = target.add_child(t_cont, edge, el);
            origins.push(DerivedOrigin {
                target_path: target.name_path(t),
                source_paths: vec![right.name_path(r_attr)],
            });
        }
    }

    DerivedTarget {
        schema: target,
        origins,
    }
}

/// Merge two matched elements: keep the left name, the more specific
/// type, and the longer documentation (the integrated schema should be
/// at least as rich as its sources — §3.1's enrichment point).
fn merged_element(l: &SchemaElement, r: &SchemaElement, kind: ElementKind) -> SchemaElement {
    let mut el = SchemaElement::new(kind, l.name.clone());
    el.data_type = match (&l.data_type, &r.data_type) {
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (Some(a), Some(_)) => Some(a.clone()),
        (None, None) => None,
    };
    el.documentation = match (&l.documentation, &r.documentation) {
        (Some(a), Some(b)) => Some(if a.len() >= b.len() {
            a.clone()
        } else {
            b.clone()
        }),
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (None, None) => None,
    };
    el
}

/// Copy an element under a (possibly different) container kind, so an
/// XML element and a relational table can merge into the target
/// metamodel's container kind.
fn retag(el: &SchemaElement, kind: ElementKind) -> SchemaElement {
    let mut out = el.clone();
    if out.kind.is_container() {
        out.kind = kind;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, SchemaBuilder};

    fn sources() -> (SchemaGraph, SchemaGraph) {
        let a = SchemaBuilder::new("crm", Metamodel::Relational)
            .open("CUSTOMER")
            .doc("A customer record.")
            .attr_doc("ID", DataType::Integer, "Unique customer identifier.")
            .attr("NAME", DataType::Text)
            .close()
            .open("ORDERS")
            .attr("ORDER_ID", DataType::Integer)
            .close()
            .build();
        let b = SchemaBuilder::new("billing", Metamodel::Relational)
            .open("CLIENT")
            .doc("A client of the billing department, holding open invoices.")
            .attr("CLIENT_NO", DataType::Integer)
            .attr("TAX_CODE", DataType::Text)
            .close()
            .open("INVOICE")
            .attr("INV_NO", DataType::Integer)
            .close()
            .build();
        (a, b)
    }

    fn id_of(g: &SchemaGraph, name: &str) -> ElementId {
        g.find_by_name(name).unwrap()
    }

    #[test]
    fn matched_containers_merge_and_unmatched_carry_over() {
        let (a, b) = sources();
        let accepted = vec![
            (id_of(&a, "CUSTOMER"), id_of(&b, "CLIENT")),
            (id_of(&a, "ID"), id_of(&b, "CLIENT_NO")),
        ];
        let derived = derive_target("merged", &a, &b, &accepted, Metamodel::Relational);
        let t = &derived.schema;
        assert!(iwb_model::validate(t).is_empty());
        // CUSTOMER+CLIENT merged; ORDERS and INVOICE carried over.
        assert!(t.find_by_path("merged/CUSTOMER").is_some());
        assert!(t.find_by_path("merged/ORDERS").is_some());
        assert!(t.find_by_path("merged/INVOICE").is_some());
        assert!(t.find_by_name("CLIENT").is_none(), "merged into CUSTOMER");
        // Merged container keeps the longer documentation (from CLIENT).
        let cust = t.find_by_path("merged/CUSTOMER").unwrap();
        assert!(t
            .element(cust)
            .documentation
            .as_deref()
            .unwrap()
            .contains("billing"));
    }

    #[test]
    fn matched_attributes_collapse_unmatched_union() {
        let (a, b) = sources();
        let accepted = vec![
            (id_of(&a, "CUSTOMER"), id_of(&b, "CLIENT")),
            (id_of(&a, "ID"), id_of(&b, "CLIENT_NO")),
        ];
        let derived = derive_target("merged", &a, &b, &accepted, Metamodel::Relational);
        let t = &derived.schema;
        // ID ≡ CLIENT_NO collapsed; NAME and TAX_CODE both present.
        assert!(t.find_by_path("merged/CUSTOMER/ID").is_some());
        assert!(t.find_by_name("CLIENT_NO").is_none());
        assert!(t.find_by_path("merged/CUSTOMER/NAME").is_some());
        assert!(t.find_by_path("merged/CUSTOMER/TAX_CODE").is_some());
        // Merged attribute kept documentation from the documented side.
        let id = t.find_by_path("merged/CUSTOMER/ID").unwrap();
        assert!(t
            .element(id)
            .documentation
            .as_deref()
            .unwrap()
            .contains("identifier"));
    }

    #[test]
    fn origins_record_both_contributors() {
        let (a, b) = sources();
        let accepted = vec![(id_of(&a, "CUSTOMER"), id_of(&b, "CLIENT"))];
        let derived = derive_target("merged", &a, &b, &accepted, Metamodel::Relational);
        let merged_origin = derived
            .origins
            .iter()
            .find(|o| o.target_path == "merged/CUSTOMER")
            .unwrap();
        assert_eq!(
            merged_origin.source_paths,
            vec!["crm/CUSTOMER".to_owned(), "billing/CLIENT".to_owned()]
        );
        let carried = derived
            .origins
            .iter()
            .find(|o| o.target_path == "merged/INVOICE")
            .unwrap();
        assert_eq!(carried.source_paths, vec!["billing/INVOICE".to_owned()]);
    }

    #[test]
    fn no_correspondences_yields_disjoint_union() {
        let (a, b) = sources();
        let derived = derive_target("merged", &a, &b, &[], Metamodel::Relational);
        let t = &derived.schema;
        // 4 containers, all attributes preserved.
        assert_eq!(t.children(t.root()).len(), 4);
        assert!(t.find_by_name("CLIENT").is_some());
        assert!(t.find_by_name("TAX_CODE").is_some());
    }

    #[test]
    fn sibling_name_collisions_are_renamed() {
        let a = SchemaBuilder::new("a", Metamodel::Relational)
            .open("T")
            .attr("code", DataType::Text)
            .close()
            .build();
        let b = SchemaBuilder::new("b", Metamodel::Relational)
            .open("U")
            .attr("code", DataType::Integer)
            .close()
            .build();
        // Containers matched, but the two `code` attributes are NOT
        // matched — both survive, the second renamed.
        let accepted = vec![(id_of(&a, "T"), id_of(&b, "U"))];
        let derived = derive_target("m", &a, &b, &accepted, Metamodel::Relational);
        let t = &derived.schema;
        assert!(t.find_by_path("m/T/code").is_some());
        assert!(t.find_by_path("m/T/code_2").is_some());
        assert!(iwb_model::validate(t).is_empty());
    }

    #[test]
    fn derived_target_feeds_matching_back() {
        // The derived schema is itself matchable against a third source
        // (the iterative workflow the paper's workbench enables).
        let (a, b) = sources();
        let accepted = vec![(id_of(&a, "CUSTOMER"), id_of(&b, "CLIENT"))];
        let derived = derive_target("merged", &a, &b, &accepted, Metamodel::Relational);
        let mut session = iwb_harmony::MatchSession::new(&a, &derived.schema);
        let result = session.run();
        let cust_a = a.find_by_name("CUSTOMER").unwrap();
        let cust_t = derived.schema.find_by_name("CUSTOMER").unwrap();
        assert!(result.matrix.get(cust_a, cust_t).value() > 0.5);
    }
}
