//! The workbench event service (§5.2.2).
//!
//! "Tools generate events whenever they make any change to the contents
//! of the IB. The workbench manager propagates these events to allow any
//! tool to respond to the update. A different type of event is generated
//! for each major component of the IB so that a tool can register for
//! only those events relevant to that tool."

use iwb_model::{ElementId, SchemaId};
use std::fmt;

/// Which side of a mapping matrix a vector event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorSide {
    /// A row (source element) was updated.
    Row,
    /// A column (target element) was updated.
    Column,
}

/// An event emitted by a tool through the manager.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkbenchEvent {
    /// "A schema loader generates a *schema-graph event* when it imports
    /// a schema into the workbench."
    SchemaGraph {
        /// The imported schema.
        schema: SchemaId,
    },
    /// "A *mapping-cell event* is generated when a user manually
    /// establishes a correspondence. Multiple such events are triggered
    /// by an automatic matching tool."
    MappingCell {
        /// Source schema of the matrix.
        source: SchemaId,
        /// Target schema of the matrix.
        target: SchemaId,
        /// Row element.
        row: ElementId,
        /// Column element.
        col: ElementId,
    },
    /// "When a mapping tool establishes a transformation, it generates a
    /// *mapping-vector event*."
    MappingVector {
        /// Source schema of the matrix.
        source: SchemaId,
        /// Target schema of the matrix.
        target: SchemaId,
        /// Row or column.
        side: VectorSide,
        /// The updated row/column element.
        element: ElementId,
    },
    /// "The code generation tool … generates a *mapping-matrix event*
    /// when the user manually modifies the final mapping."
    MappingMatrix {
        /// Source schema of the matrix.
        source: SchemaId,
        /// Target schema of the matrix.
        target: SchemaId,
    },
}

/// The four event kinds, for subscription registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Schema imported.
    SchemaGraph,
    /// A cell changed.
    MappingCell,
    /// A row/column changed.
    MappingVector,
    /// The assembled mapping changed.
    MappingMatrix,
}

impl WorkbenchEvent {
    /// The kind of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            WorkbenchEvent::SchemaGraph { .. } => EventKind::SchemaGraph,
            WorkbenchEvent::MappingCell { .. } => EventKind::MappingCell,
            WorkbenchEvent::MappingVector { .. } => EventKind::MappingVector,
            WorkbenchEvent::MappingMatrix { .. } => EventKind::MappingMatrix,
        }
    }
}

impl fmt::Display for WorkbenchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkbenchEvent::SchemaGraph { schema } => write!(f, "schema-graph({schema})"),
            WorkbenchEvent::MappingCell {
                source,
                target,
                row,
                col,
            } => write!(f, "mapping-cell({source}→{target}, {row}×{col})"),
            WorkbenchEvent::MappingVector {
                source,
                target,
                side,
                element,
            } => write!(
                f,
                "mapping-vector({source}→{target}, {} {element})",
                match side {
                    VectorSide::Row => "row",
                    VectorSide::Column => "column",
                }
            ),
            WorkbenchEvent::MappingMatrix { source, target } => {
                write!(f, "mapping-matrix({source}→{target})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_events() {
        let e = WorkbenchEvent::SchemaGraph {
            schema: SchemaId::new("po"),
        };
        assert_eq!(e.kind(), EventKind::SchemaGraph);
        let e = WorkbenchEvent::MappingMatrix {
            source: SchemaId::new("po"),
            target: SchemaId::new("inv"),
        };
        assert_eq!(e.kind(), EventKind::MappingMatrix);
    }

    #[test]
    fn display_names_match_paper_vocabulary() {
        let e = WorkbenchEvent::MappingCell {
            source: SchemaId::new("po"),
            target: SchemaId::new("inv"),
            row: ElementId::from_index(1),
            col: ElementId::from_index(2),
        };
        assert_eq!(e.to_string(), "mapping-cell(po→inv, e1×e2)");
        let e = WorkbenchEvent::MappingVector {
            source: SchemaId::new("po"),
            target: SchemaId::new("inv"),
            side: VectorSide::Column,
            element: ElementId::from_index(3),
        };
        assert!(e.to_string().contains("column e3"));
    }
}
