//! # iwb-core — the Integration Workbench
//!
//! The paper's core contribution (§5): an open, extensible workbench in
//! which multiple schema integration tools interoperate through a shared
//! knowledge repository.
//!
//! * [`matrix`] — the annotated **mapping matrix** of §5.1.2 (Figure 3):
//!   per-cell `confidence-score`/`is-user-defined`, per-row
//!   `variable-name`, per-column `code`, per-row/column `is-complete`,
//!   and whole-matrix `code`;
//! * [`blackboard`] — the **Integration Blackboard** (§5.1): schema
//!   graphs and mapping matrices stored over the RDF substrate, with ad
//!   hoc queries;
//! * [`library`], [`version`], [`provenance`], [`context`] — the §5.1.3
//!   blackboard enhancements (mapping library/reuse, schema versioning,
//!   mapping provenance, shared focus context);
//! * [`event`] — the event service of §5.2.2 (`schema-graph`,
//!   `mapping-cell`, `mapping-vector`, `mapping-matrix` events);
//! * [`tool`] — the two-method tool interface of §5.2.1 (`initialize`,
//!   `invoke`) plus tool kinds and task capabilities;
//! * [`tools`] — the four built-in tools: a loader, the Harmony matcher,
//!   a manual mapping tool (the AquaLogic stand-in), and an XQuery code
//!   generator;
//! * [`proto`] — structured retryable protocol errors shared by the
//!   daemon, router, and client (`RETRY-AFTER` / `MOVED` / `DUPLICATE`
//!   / `SEQ-GAP`);
//! * [`manager`] — the **workbench manager** (§5.2): transactional
//!   updates, event propagation, query evaluation, tool registry;
//! * [`taskmodel`] — the 13-task model of §3, used for the tool-coverage
//!   analysis (experiment E4);
//! * [`casestudy`] — the §5.3 Harmony + mapper interoperation pilot,
//!   scripted end to end.

pub mod blackboard;
pub mod casestudy;
pub mod context;
pub mod deploy;
pub mod derive;
pub mod event;
pub mod library;
pub mod manager;
pub mod matrix;
pub mod persist;
pub mod proto;
pub mod provenance;
pub mod shell;
pub mod taskmodel;
pub mod tool;
pub mod tools;
pub mod version;

// The shared worker-pool primitive, re-exported so workbench hosts
// (shell, daemon) name one pool type without depending on the crate
// directly.
pub use iwb_pool as pool;

pub use blackboard::Blackboard;
pub use context::SharedContext;
pub use deploy::{DeployedApplication, IntegrationSolution, OperationalConstraints};
pub use derive::{derive_target, DerivedTarget};
pub use event::{EventKind, WorkbenchEvent};
pub use library::MappingLibrary;
pub use manager::{InvokeReport, WorkbenchManager};
pub use matrix::MappingMatrix;
pub use proto::RetryableError;
pub use provenance::ProvenanceLog;
pub use taskmodel::{Phase, Task};
pub use tool::{ToolArgs, ToolError, ToolKind, WorkbenchTool};
pub use version::SchemaVersions;
