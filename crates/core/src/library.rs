//! The mapping library (§5.1.3).
//!
//! "The blackboard should maintain a library of mappings, partly to
//! facilitate mapping reuse, but also as a resource for some matching
//! tools." Completed matrices are archived under their schema pair;
//! lookups serve both exact reuse (same pair again) and partial reuse
//! (any archived mapping touching a given schema, which a matcher can
//! mine for previously confirmed correspondences).

use crate::matrix::MappingMatrix;
use iwb_model::SchemaId;

/// An archived mapping with a version counter per pair.
#[derive(Debug, Clone)]
pub struct ArchivedMapping {
    /// Monotonic version within the pair's history.
    pub version: u32,
    /// The archived matrix snapshot.
    pub matrix: MappingMatrix,
}

/// The library of archived mappings.
#[derive(Debug, Clone, Default)]
pub struct MappingLibrary {
    entries: Vec<ArchivedMapping>,
}

impl MappingLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Archive a snapshot; assigns the next version for its pair.
    pub fn archive(&mut self, matrix: MappingMatrix) -> u32 {
        let version = self
            .history(matrix.source_id(), matrix.target_id())
            .last()
            .map(|a| a.version + 1)
            .unwrap_or(1);
        self.entries.push(ArchivedMapping { version, matrix });
        version
    }

    /// All archived versions for a pair, oldest first.
    pub fn history(&self, source: &SchemaId, target: &SchemaId) -> Vec<&ArchivedMapping> {
        self.entries
            .iter()
            .filter(|a| a.matrix.source_id() == source && a.matrix.target_id() == target)
            .collect()
    }

    /// The latest archived mapping for a pair (exact reuse).
    pub fn latest(&self, source: &SchemaId, target: &SchemaId) -> Option<&ArchivedMapping> {
        self.history(source, target).into_iter().last()
    }

    /// Any archived mappings that involve the schema on either side
    /// (partial reuse / matcher resource).
    pub fn involving(&self, schema: &SchemaId) -> Vec<&ArchivedMapping> {
        self.entries
            .iter()
            .filter(|a| a.matrix.source_id() == schema || a.matrix.target_id() == schema)
            .collect()
    }

    /// Number of archived mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};

    fn pair(a: &str, b: &str) -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new(a, Metamodel::Xml)
            .open("e")
            .attr("x", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new(b, Metamodel::Xml)
            .open("f")
            .attr("y", DataType::Text)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn versions_increment_per_pair() {
        let (s, t) = pair("po", "inv");
        let mut lib = MappingLibrary::new();
        assert_eq!(lib.archive(MappingMatrix::new(&s, &t)), 1);
        assert_eq!(lib.archive(MappingMatrix::new(&s, &t)), 2);
        let (u, v) = pair("a", "b");
        assert_eq!(lib.archive(MappingMatrix::new(&u, &v)), 1);
        assert_eq!(lib.history(s.id(), t.id()).len(), 2);
        assert_eq!(lib.latest(s.id(), t.id()).unwrap().version, 2);
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn involving_finds_either_side() {
        let (s, t) = pair("po", "inv");
        let mut lib = MappingLibrary::new();
        lib.archive(MappingMatrix::new(&s, &t));
        assert_eq!(lib.involving(s.id()).len(), 1);
        assert_eq!(lib.involving(t.id()).len(), 1);
        assert!(lib.involving(&SchemaId::new("zzz")).is_empty());
    }

    #[test]
    fn empty_library() {
        let lib = MappingLibrary::new();
        assert!(lib.is_empty());
        assert!(lib
            .latest(&SchemaId::new("a"), &SchemaId::new("b"))
            .is_none());
    }
}
