//! The workbench manager (§5.2).
//!
//! "All interaction with the IB occurs via the workbench manager, which
//! coordinates matchers, mappers, importers, and other tools. The
//! manager provides several services: First, it provides transactional
//! updates to the IB. Second, following each update, it notifies the
//! other tools using an event. Third, the manager processes ad hoc
//! queries posed to the IB."
//!
//! Every [`WorkbenchManager::invoke`] runs as one transaction: the tool
//! mutates the blackboard and *buffers* its events; only after the tool
//! returns successfully are the events propagated to subscribed tools
//! (§5.2.1: during automated matching "no events are generated until the
//! mapping matrix has been updated"). Event handlers may emit further
//! events; cascades are propagated breadth-first with a bounded number
//! of rounds.

use crate::blackboard::Blackboard;
use crate::event::WorkbenchEvent;
use crate::taskmodel::{coverage_table, Task};
use crate::tool::{ToolArgs, ToolError, WorkbenchTool};
use iwb_rdf::{Bindings, TriplePattern};

/// Maximum cascade rounds before the manager stops propagating (guards
/// against event loops between mutually-subscribed tools).
const MAX_CASCADE_ROUNDS: usize = 4;

/// The report of one tool invocation.
#[derive(Debug, Clone)]
pub struct InvokeReport {
    /// The invoked tool.
    pub tool: &'static str,
    /// The tool's human-readable output.
    pub output: String,
    /// Every event that flowed, in propagation order (invocation events
    /// first, then cascade rounds).
    pub events: Vec<WorkbenchEvent>,
    /// Trace lines (for the Figure 4 architecture demonstration).
    pub trace: Vec<String>,
}

/// The single-user workbench of Figure 4: one manager, one blackboard,
/// multiple tools.
///
/// # Examples
///
/// ```
/// use iwb_core::{WorkbenchManager, ToolArgs};
///
/// let mut wb = WorkbenchManager::with_builtin_tools();
/// wb.invoke("schema-loader", &ToolArgs::new()
///     .with("format", "er")
///     .with("text", "entity A { x : text }")
///     .with("schema-id", "left")).unwrap();
/// wb.invoke("schema-loader", &ToolArgs::new()
///     .with("format", "er")
///     .with("text", "entity B { y : text }")
///     .with("schema-id", "right")).unwrap();
/// let report = wb.invoke("harmony", &ToolArgs::new()
///     .with("source", "left")
///     .with("target", "right")).unwrap();
/// assert!(report.output.contains("cells updated"));
/// ```
#[derive(Default)]
pub struct WorkbenchManager {
    blackboard: Blackboard,
    // `Send` so a whole workbench can be moved into (and locked inside)
    // a server worker thread; see `iwb-server`.
    tools: Vec<Box<dyn WorkbenchTool + Send>>,
    session_trace: Vec<String>,
}

impl WorkbenchManager {
    /// An empty workbench.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workbench with the four built-in tools registered and
    /// initialised.
    pub fn with_builtin_tools() -> Self {
        let mut m = Self::new();
        m.register(crate::tools::LoaderTool::new());
        m.register(crate::tools::HarmonyTool::new());
        m.register(crate::tools::MapperTool::new());
        m.register(crate::tools::CodegenTool::new());
        m.register(crate::tools::BlockingTool::new());
        m.initialize_all();
        m
    }

    /// Register a tool.
    pub fn register(&mut self, tool: impl WorkbenchTool + Send + 'static) {
        self.session_trace
            .push(format!("register {} ({})", tool.name(), tool.kind()));
        self.tools.push(Box::new(tool));
    }

    /// Call every tool's initialize hook (§5.2.1: "when the workbench
    /// starts, each tool has the option of implementing an initialize
    /// method").
    pub fn initialize_all(&mut self) {
        for tool in &mut self.tools {
            tool.initialize();
            let subs: Vec<String> = tool
                .subscriptions()
                .iter()
                .map(|k| format!("{k:?}"))
                .collect();
            self.session_trace.push(format!(
                "initialize {} (subscribes: {})",
                tool.name(),
                if subs.is_empty() {
                    "nothing".to_owned()
                } else {
                    subs.join(", ")
                }
            ));
        }
    }

    /// The blackboard (read access).
    pub fn blackboard(&self) -> &Blackboard {
        &self.blackboard
    }

    /// The blackboard (mutable access for direct state setup in tests
    /// and experiments; regular mutation goes through tools).
    pub fn blackboard_mut(&mut self) -> &mut Blackboard {
        &mut self.blackboard
    }

    /// Registered tool names.
    pub fn tool_names(&self) -> Vec<&'static str> {
        self.tools.iter().map(|t| t.name()).collect()
    }

    /// Typed mutable access to a registered tool, for hosts that
    /// capture or prime tool state around persistence. Returns `None`
    /// when no tool has that name, the tool did not opt in via
    /// [`WorkbenchTool::as_any_mut`], or the concrete type differs.
    pub fn tool_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.tools
            .iter_mut()
            .find(|t| t.name() == name)?
            .as_any_mut()?
            .downcast_mut::<T>()
    }

    /// The session trace accumulated so far (registration,
    /// initialisation, every invocation and event delivery).
    pub fn trace(&self) -> &[String] {
        &self.session_trace
    }

    /// Invoke a tool by name inside a transaction, then propagate its
    /// events.
    pub fn invoke(&mut self, tool_name: &str, args: &ToolArgs) -> Result<InvokeReport, ToolError> {
        let idx = self
            .tools
            .iter()
            .position(|t| t.name() == tool_name)
            .ok_or_else(|| ToolError::Failed(format!("no tool named {tool_name:?}")))?;
        self.session_trace.push(format!("invoke {tool_name}"));

        // Transaction body: the tool buffers its events.
        let mut pending: Vec<WorkbenchEvent> = Vec::new();
        let output = self.tools[idx].invoke(&mut self.blackboard, args, &mut pending)?;
        self.session_trace
            .push(format!("  txn commit: {} event(s) buffered", pending.len()));

        // Propagation: deliver to subscribed tools; handlers may cascade.
        let mut all_events = Vec::new();
        let mut trace = Vec::new();
        let mut round = 0;
        let mut emitter_of: Vec<(WorkbenchEvent, usize)> =
            pending.into_iter().map(|e| (e, idx)).collect();
        while !emitter_of.is_empty() && round < MAX_CASCADE_ROUNDS {
            let mut next: Vec<(WorkbenchEvent, usize)> = Vec::new();
            for (event, emitter) in emitter_of {
                trace.push(format!("round {round}: {event}"));
                let kind = event.kind();
                for (i, tool) in self.tools.iter_mut().enumerate() {
                    if i == emitter || !tool.subscriptions().contains(&kind) {
                        continue;
                    }
                    let mut cascade = Vec::new();
                    tool.on_event(&mut self.blackboard, &event, &mut cascade);
                    if !cascade.is_empty() {
                        trace.push(format!(
                            "  {} reacted with {} event(s)",
                            tool.name(),
                            cascade.len()
                        ));
                    }
                    next.extend(cascade.into_iter().map(|e| (e, i)));
                }
                all_events.push(event);
            }
            emitter_of = next;
            round += 1;
        }
        for (event, _) in emitter_of {
            // Cascade budget exhausted: record but do not deliver.
            trace.push(format!("round {round} (suppressed): {event}"));
            all_events.push(event);
        }
        self.session_trace
            .extend(trace.iter().map(|t| format!("  {t}")));
        let tool = self.tools[idx].name();
        Ok(InvokeReport {
            tool,
            output,
            events: all_events,
            trace,
        })
    }

    /// Evaluate an ad hoc query over the IB.
    pub fn query(&self, patterns: &[TriplePattern]) -> Vec<Bindings> {
        self.blackboard.query(patterns).1
    }

    /// The task-coverage matrix over the registered tools (E4; §1.1:
    /// "we can ask what each tool contributes to each task").
    pub fn coverage(&self) -> String {
        let rows: Vec<(&str, Vec<Task>)> = self
            .tools
            .iter()
            .map(|t| (t.name(), t.capabilities()))
            .collect();
        coverage_table(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};

    fn loaded_workbench() -> WorkbenchManager {
        let mut m = WorkbenchManager::with_builtin_tools();
        m.invoke(
            "schema-loader",
            &ToolArgs::new()
                .with("format", "xsd")
                .with("text", FIG2_SOURCE_XSD)
                .with("schema-id", "purchaseOrder"),
        )
        .unwrap();
        m.invoke(
            "schema-loader",
            &ToolArgs::new()
                .with("format", "xsd")
                .with("text", FIG2_TARGET_XSD)
                .with("schema-id", "invoice"),
        )
        .unwrap();
        m
    }

    #[test]
    fn builtin_workbench_registers_the_tool_roster() {
        let m = WorkbenchManager::with_builtin_tools();
        assert_eq!(
            m.tool_names(),
            vec![
                "schema-loader",
                "harmony",
                "aqualogic-mapper",
                "xquery-codegen",
                "blocking"
            ]
        );
        assert!(m.trace().iter().any(|t| t.contains("subscribes")));
    }

    #[test]
    fn invoke_unknown_tool_fails() {
        let mut m = WorkbenchManager::new();
        assert!(m.invoke("ghost", &ToolArgs::new()).is_err());
    }

    #[test]
    fn accept_event_cascades_to_mapper_then_codegen() {
        let mut m = loaded_workbench();
        // User accepts subtotal → total in the matcher GUI. The mapper
        // (subscribed to mapping-cell) proposes a conversion, which
        // emits a mapping-vector event, which the code generator
        // (subscribed to mapping-vector) turns into assembled code.
        let report = m
            .invoke(
                "harmony",
                &ToolArgs::new()
                    .with("action", "accept")
                    .with("source", "purchaseOrder")
                    .with("target", "invoice")
                    .with("row", "purchaseOrder/purchaseOrder/shipTo/subtotal")
                    .with("col", "invoice/invoice/shippingInfo/total"),
            )
            .unwrap();
        let kinds: Vec<EventKind> = report.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&EventKind::MappingCell));
        assert!(kinds.contains(&EventKind::MappingVector), "{kinds:?}");
        assert!(kinds.contains(&EventKind::MappingMatrix), "{kinds:?}");
        // The assembled code exists on the blackboard.
        let po = iwb_model::SchemaId::new("purchaseOrder");
        let inv = iwb_model::SchemaId::new("invoice");
        let code = m
            .blackboard()
            .matrix(&po, &inv)
            .unwrap()
            .code
            .clone()
            .unwrap();
        assert!(code.contains("<total>"), "{code}");
    }

    #[test]
    fn automatic_match_commits_before_events_flow() {
        let mut m = loaded_workbench();
        let report = m
            .invoke(
                "harmony",
                &ToolArgs::new()
                    .with("source", "purchaseOrder")
                    .with("target", "invoice"),
            )
            .unwrap();
        assert!(report.output.contains("cells updated"));
        // The trace shows the transaction committed before propagation.
        assert!(m.trace().iter().any(|t| t.contains("txn commit")));
    }

    #[test]
    fn queries_reach_the_materialised_ib() {
        let mut m = loaded_workbench();
        use iwb_rdf::{PatternTerm, Term};
        let solutions = m.query(&[TriplePattern::new(
            PatternTerm::var("s"),
            Term::iri(iwb_rdf::vocab::RDF_TYPE),
            Term::iri(iwb_rdf::vocab::SCHEMA_CLASS),
        )]);
        assert_eq!(solutions.len(), 2);
        let _ = &mut m;
    }

    #[test]
    fn coverage_table_reports_combined_workbench() {
        let m = WorkbenchManager::with_builtin_tools();
        let table = m.coverage();
        // §5.3: "This combination of tools addresses all of the
        // desiderata" — matching, mapping and codegen are all covered.
        for needle in [
            "generate semantic correspondences",
            "create logical mappings",
            "develop attribute transformations",
        ] {
            let line = table.lines().find(|l| l.contains(needle)).unwrap();
            assert!(line.contains('✓'), "{needle} uncovered:\n{table}");
        }
    }
}
