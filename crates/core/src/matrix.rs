//! The annotated mapping matrix (§5.1.2, Figure 3).
//!
//! "Inter-schema relationships can be represented conceptually as a
//! *mapping matrix*. This matrix consists of headers (describing source
//! and target elements) plus content: a row for each source element and
//! a column for each target element. … Each cell in the mapping matrix
//! describes a potential correspondence between a source element and a
//! target element."

use iwb_harmony::matrix::matchable_ids;
use iwb_harmony::Confidence;
use iwb_model::{ElementId, SchemaGraph, SchemaId};
use std::fmt::Write;

/// One cell: a potential correspondence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// `confidence-score` ∈ [-1, +1].
    pub confidence: Confidence,
    /// `is-user-defined` — true when the user drew or decided the link.
    pub user_defined: bool,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            confidence: Confidence::UNKNOWN,
            user_defined: false,
        }
    }
}

/// Per-row annotations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowMeta {
    /// `variable-name` referenced by column code (Figure 3: `$shipto`).
    pub variable: Option<String>,
    /// `is-complete` progress marker.
    pub complete: bool,
}

/// Per-column annotations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColMeta {
    /// `code` that populates the target element.
    pub code: Option<String>,
    /// `is-complete` progress marker.
    pub complete: bool,
}

/// The mapping matrix between one source and one target schema.
#[derive(Debug, Clone)]
pub struct MappingMatrix {
    source: SchemaId,
    target: SchemaId,
    rows: Vec<ElementId>,
    cols: Vec<ElementId>,
    row_meta: Vec<RowMeta>,
    col_meta: Vec<ColMeta>,
    cells: Vec<Cell>,
    /// Whole-matrix `code` annotation (the assembled mapping).
    pub code: Option<String>,
}

impl MappingMatrix {
    /// A matrix over the matchable elements of two schemata, all cells
    /// unknown.
    pub fn new(source: &SchemaGraph, target: &SchemaGraph) -> Self {
        let rows = matchable_ids(source);
        let cols = matchable_ids(target);
        MappingMatrix {
            source: source.id().clone(),
            target: target.id().clone(),
            row_meta: vec![RowMeta::default(); rows.len()],
            col_meta: vec![ColMeta::default(); cols.len()],
            cells: vec![Cell::default(); rows.len() * cols.len()],
            rows,
            cols,
            code: None,
        }
    }

    /// Source schema id.
    pub fn source_id(&self) -> &SchemaId {
        &self.source
    }

    /// Target schema id.
    pub fn target_id(&self) -> &SchemaId {
        &self.target
    }

    /// Row element ids.
    pub fn rows(&self) -> &[ElementId] {
        &self.rows
    }

    /// Column element ids.
    pub fn cols(&self) -> &[ElementId] {
        &self.cols
    }

    fn row_index(&self, row: ElementId) -> Option<usize> {
        self.rows.iter().position(|&r| r == row)
    }

    fn col_index(&self, col: ElementId) -> Option<usize> {
        self.cols.iter().position(|&c| c == col)
    }

    /// Read a cell; default (unknown, machine) outside the matrix.
    pub fn cell(&self, row: ElementId, col: ElementId) -> Cell {
        match (self.row_index(row), self.col_index(col)) {
            (Some(r), Some(c)) => self.cells[r * self.cols.len() + c],
            _ => Cell::default(),
        }
    }

    /// Write a cell. Returns false when the pair is outside the matrix.
    pub fn set_cell(&mut self, row: ElementId, col: ElementId, cell: Cell) -> bool {
        match (self.row_index(row), self.col_index(col)) {
            (Some(r), Some(c)) => {
                let cols = self.cols.len();
                self.cells[r * cols + c] = cell;
                true
            }
            _ => false,
        }
    }

    /// Set a machine-suggested confidence (does not touch user cells;
    /// §4.3: decided links are frozen). Returns true if written.
    pub fn suggest(&mut self, row: ElementId, col: ElementId, confidence: Confidence) -> bool {
        let current = self.cell(row, col);
        if current.user_defined {
            return false;
        }
        self.set_cell(
            row,
            col,
            Cell {
                confidence,
                user_defined: false,
            },
        )
    }

    /// Record a user decision (±1).
    pub fn decide(&mut self, row: ElementId, col: ElementId, accepted: bool) -> bool {
        self.set_cell(
            row,
            col,
            Cell {
                confidence: if accepted {
                    Confidence::ACCEPT
                } else {
                    Confidence::REJECT
                },
                user_defined: true,
            },
        )
    }

    /// Row metadata.
    pub fn row_meta(&self, row: ElementId) -> Option<&RowMeta> {
        self.row_index(row).map(|r| &self.row_meta[r])
    }

    /// Mutable row metadata.
    pub fn row_meta_mut(&mut self, row: ElementId) -> Option<&mut RowMeta> {
        self.row_index(row).map(move |r| &mut self.row_meta[r])
    }

    /// Column metadata.
    pub fn col_meta(&self, col: ElementId) -> Option<&ColMeta> {
        self.col_index(col).map(|c| &self.col_meta[c])
    }

    /// Mutable column metadata.
    pub fn col_meta_mut(&mut self, col: ElementId) -> Option<&mut ColMeta> {
        self.col_index(col).map(move |c| &mut self.col_meta[c])
    }

    /// Accepted pairs (confidence exactly +1).
    pub fn accepted(&self) -> Vec<(ElementId, ElementId)> {
        let mut out = Vec::new();
        for (r, &row) in self.rows.iter().enumerate() {
            for (c, &col) in self.cols.iter().enumerate() {
                let cell = self.cells[r * self.cols.len() + c];
                if cell.confidence == Confidence::ACCEPT {
                    out.push((row, col));
                }
            }
        }
        out
    }

    /// Completion fraction over rows and columns (the §4.3 progress
    /// bar, matrix flavoured).
    pub fn completion(&self) -> f64 {
        let total = self.row_meta.len() + self.col_meta.len();
        if total == 0 {
            return 1.0;
        }
        let done = self.row_meta.iter().filter(|m| m.complete).count()
            + self.col_meta.iter().filter(|m| m.complete).count();
        done as f64 / total as f64
    }

    /// Render the matrix in the layout of Figure 3: a header block with
    /// the matrix code, column headers with code and is-complete, then
    /// one row per source element with its annotations and cells.
    pub fn render(&self, source: &SchemaGraph, target: &SchemaGraph) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mapping matrix {} → {}",
            self.source.as_str(),
            self.target.as_str()
        );
        let _ = writeln!(out, "code = {}", self.code.as_deref().unwrap_or("<unset>"));
        for (c, &col) in self.cols.iter().enumerate() {
            let meta = &self.col_meta[c];
            let _ = writeln!(
                out,
                "column [{}] is-complete={} code={}",
                target.element(col).name,
                meta.complete,
                meta.code.as_deref().unwrap_or("<unset>")
            );
        }
        for (r, &row) in self.rows.iter().enumerate() {
            let meta = &self.row_meta[r];
            let _ = writeln!(
                out,
                "row [{}] is-complete={} variable={}",
                source.element(row).name,
                meta.complete,
                meta.variable.as_deref().unwrap_or("<unset>")
            );
            for (c, &col) in self.cols.iter().enumerate() {
                let cell = self.cells[r * self.cols.len() + c];
                let _ = writeln!(
                    out,
                    "  × [{}] confidence={} user-defined={}",
                    target.element(col).name,
                    cell.confidence,
                    cell.user_defined
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("po", Metamodel::Xml)
            .open("shipTo")
            .attr("firstName", DataType::Text)
            .attr("lastName", DataType::Text)
            .attr("subtotal", DataType::Decimal)
            .close()
            .build();
        let t = SchemaBuilder::new("inv", Metamodel::Xml)
            .open("shippingInfo")
            .attr("name", DataType::Text)
            .attr("total", DataType::Decimal)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn figure3_shape_four_rows_three_cols() {
        let (s, t) = schemas();
        let m = MappingMatrix::new(&s, &t);
        // Figure 3 has rows shipTo/firstName/lastName/subtotal and
        // columns shippingInfo/name/total.
        assert_eq!(m.rows().len(), 4);
        assert_eq!(m.cols().len(), 3);
    }

    #[test]
    fn suggest_respects_user_decisions() {
        let (s, t) = schemas();
        let mut m = MappingMatrix::new(&s, &t);
        let first = s.find_by_name("firstName").unwrap();
        let name = t.find_by_name("name").unwrap();
        assert!(m.suggest(first, name, Confidence::engine(-0.4)));
        assert!(!m.cell(first, name).user_defined);
        m.decide(first, name, true);
        assert_eq!(m.cell(first, name).confidence, Confidence::ACCEPT);
        // A later engine suggestion must not override the decision.
        assert!(!m.suggest(first, name, Confidence::engine(0.1)));
        assert_eq!(m.cell(first, name).confidence, Confidence::ACCEPT);
    }

    #[test]
    fn annotations_round_trip() {
        let (s, t) = schemas();
        let mut m = MappingMatrix::new(&s, &t);
        let ship = s.find_by_name("shipTo").unwrap();
        let total = t.find_by_name("total").unwrap();
        m.row_meta_mut(ship).unwrap().variable = Some("shipto".into());
        m.col_meta_mut(total).unwrap().code = Some("data($shipto/subtotal) * 1.05".into());
        m.col_meta_mut(total).unwrap().complete = false;
        m.code = Some("let $shipto := $purchOrd/shipTo return …".into());
        assert_eq!(
            m.row_meta(ship).unwrap().variable.as_deref(),
            Some("shipto")
        );
        assert!(m
            .col_meta(total)
            .unwrap()
            .code
            .as_deref()
            .unwrap()
            .contains("1.05"));
    }

    #[test]
    fn accepted_lists_user_accepts_only() {
        let (s, t) = schemas();
        let mut m = MappingMatrix::new(&s, &t);
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        let first = s.find_by_name("firstName").unwrap();
        m.decide(sub, total, true);
        m.decide(first, total, false);
        m.suggest(
            first,
            t.find_by_name("name").unwrap(),
            Confidence::engine(0.9),
        );
        assert_eq!(m.accepted(), vec![(sub, total)]);
    }

    #[test]
    fn completion_tracks_marked_rows_and_cols() {
        let (s, t) = schemas();
        let mut m = MappingMatrix::new(&s, &t);
        assert_eq!(m.completion(), 0.0);
        let ship = s.find_by_name("shipTo").unwrap();
        m.row_meta_mut(ship).unwrap().complete = true;
        assert!((m.completion() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_matrix_access_is_safe() {
        let (s, t) = schemas();
        let mut m = MappingMatrix::new(&s, &t);
        let root = s.root();
        assert_eq!(m.cell(root, t.root()), Cell::default());
        assert!(!m.set_cell(root, t.root(), Cell::default()));
        assert!(m.row_meta(root).is_none());
    }

    #[test]
    fn render_reproduces_figure3_annotations() {
        let (s, t) = schemas();
        let mut m = MappingMatrix::new(&s, &t);
        let ship = s.find_by_name("shipTo").unwrap();
        let info = t.find_by_name("shippingInfo").unwrap();
        m.row_meta_mut(ship).unwrap().variable = Some("shipto".into());
        m.suggest(ship, info, Confidence::engine(0.8));
        let text = m.render(&s, &t);
        assert!(text.contains("variable=shipto"));
        assert!(text.contains("confidence=+0.80 user-defined=false"));
        assert!(text.contains("mapping matrix po → inv"));
    }
}
