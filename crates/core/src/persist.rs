//! Capture and prime workbench state around persistence.
//!
//! The `iwb-store` snapshot format persists three hot artifact
//! families: schema graphs with their text features, Harmony match
//! results, and the blocking inverted index. This module is the bridge
//! between a live [`Shell`] and those artifacts:
//!
//! * [`capture`] pulls the persistable state out of a shell (cheap
//!   clones — safe to call synchronously in a command path);
//! * [`prime_artifacts`] loads persisted match results and the blocking
//!   index into a *fresh* shell **before** journal replay — both are
//!   content-keyed, so replayed commands recognise and reuse them, and
//!   the `SchemaGraph` events replay emits cannot wipe them;
//! * [`prime_features`] loads persisted text features **after** replay
//!   — replayed `load` commands emit `SchemaGraph` events that clear
//!   the engine's feature cache, so priming earlier would be undone.
//!
//! Recovery order is therefore: `prime_artifacts` → replay the journal
//! → `prime_features`. Every prime is advisory: a key or fingerprint
//! that no longer matches simply leaves the engine on its cold path,
//! which recomputes the identical answer (the determinism suites prove
//! bit-equality between the warm and cold paths).

use crate::shell::Shell;
use crate::tools::{BlockingTool, HarmonyTool};
use iwb_harmony::TextFeatures;
use iwb_model::{ElementId, SchemaGraph, SchemaId};
use iwb_store::{
    blocking_artifact_key, stable_schema_fp, BlockingArtifact, CommandRecord, MatchArtifact,
    SessionSnapshot,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The persistable workbench state of one session — the artifact
/// fields of a [`SessionSnapshot`], without the host-owned identity
/// (session id, journal watermark, command prefix).
#[derive(Default)]
pub struct SessionState {
    /// Schema graphs on the blackboard, in sorted-id order (the
    /// snapshot image must not depend on load history).
    pub schemas: Vec<SchemaGraph>,
    /// Exported engine text features per schema.
    pub features: Vec<(SchemaId, HashMap<ElementId, Arc<TextFeatures>>)>,
    /// Content-keyed match results.
    pub matches: Vec<MatchArtifact>,
    /// The blocking index, when built from a seeded registry.
    pub blocking: Option<BlockingArtifact>,
}

impl SessionState {
    /// Rewrap into a full [`SessionSnapshot`] with the host-owned
    /// identity attached.
    pub fn into_snapshot(
        self,
        session_id: impl Into<String>,
        watermark: u64,
        commands: Vec<CommandRecord>,
    ) -> SessionSnapshot {
        SessionSnapshot {
            session_id: session_id.into(),
            watermark,
            commands,
            schemas: self.schemas,
            features: self.features,
            matches: self.matches,
            blocking: self.blocking,
        }
    }

    /// The artifact fields of a loaded snapshot (clones; the snapshot
    /// remains usable, e.g. for its command prefix).
    pub fn from_snapshot(snapshot: &SessionSnapshot) -> SessionState {
        SessionState {
            schemas: snapshot.schemas.clone(),
            features: snapshot.features.clone(),
            matches: snapshot.matches.clone(),
            blocking: snapshot.blocking.clone(),
        }
    }
}

/// Capture the persistable state of a shell.
///
/// Text features are exported for every schema on the blackboard
/// (computing any not already cached — capture runs at snapshot time,
/// where paying that cost once buys every future warm reopen).
pub fn capture(shell: &mut Shell) -> SessionState {
    let manager = shell.manager_mut();
    let mut ids = manager.blackboard().schema_ids();
    ids.sort();
    let schemas: Vec<SchemaGraph> = ids
        .iter()
        .map(|id| {
            manager
                .blackboard()
                .schema(id)
                .expect("listed schema exists")
                .clone()
        })
        .collect();

    let mut features = Vec::new();
    let mut matches = Vec::new();
    if let Some(tool) = manager.tool_mut::<HarmonyTool>("harmony") {
        for graph in &schemas {
            features.push((
                graph.id().clone(),
                tool.engine_mut().export_text_features(graph),
            ));
        }
        matches = tool
            .export_runs()
            .into_iter()
            .map(|(src, tgt, key, result)| MatchArtifact {
                src,
                tgt,
                key,
                result,
            })
            .collect();
    }

    let blocking = manager
        .tool_mut::<BlockingTool>("blocking")
        .and_then(|tool| tool.export_generated())
        .map(|(seed, scale, parts)| BlockingArtifact {
            seed,
            scale,
            key: blocking_artifact_key(seed, scale, &parts.config),
            parts,
        });

    SessionState {
        schemas,
        features,
        matches,
        blocking,
    }
}

/// Prime content-keyed artifacts into a fresh shell, **before** journal
/// replay: replayed `match` commands are served persisted results, and
/// a replayed `index-registry seed …` restores the persisted index in
/// place of the postings build.
pub fn prime_artifacts(shell: &mut Shell, state: &SessionState) {
    let manager = shell.manager_mut();
    if let Some(tool) = manager.tool_mut::<HarmonyTool>("harmony") {
        for artifact in &state.matches {
            tool.prime_run(artifact.key, artifact.result.clone());
        }
    }
    if let Some(blocking) = &state.blocking {
        if let Some(tool) = manager.tool_mut::<BlockingTool>("blocking") {
            tool.prime_generated(blocking.seed, blocking.scale, blocking.parts.clone());
        }
    }
}

/// Prime persisted text features, **after** journal replay.
///
/// Each schema's features are installed only when the replayed graph's
/// canonical fingerprint equals the fingerprint of the graph the
/// features were exported from — a replay that diverged (or a schema
/// the snapshot predates) stays on the cold path rather than being
/// primed with features for the wrong elements.
pub fn prime_features(shell: &mut Shell, state: &SessionState) {
    let manager = shell.manager_mut();
    let mut primable = Vec::new();
    for (id, features) in &state.features {
        let stored_fp = state
            .schemas
            .iter()
            .find(|g| g.id() == id)
            .map(stable_schema_fp);
        if let (Some(live), Some(fp)) = (manager.blackboard().schema(id), stored_fp) {
            if stable_schema_fp(live) == fp {
                primable.push((live.clone(), features.clone()));
            }
        }
    }
    if let Some(tool) = manager.tool_mut::<HarmonyTool>("harmony") {
        for (graph, features) in primable {
            tool.engine_mut().prime_text_features(&graph, features);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_harmony::Confidence;
    use iwb_model::ElementId;

    const SESSION: &str = "load er left <<EOF\n\
        entity SHIPMENT \"An outgoing shipment.\" { ship_dt : date \"Date shipped.\" }\n\
        EOF\n\
        load er right <<EOF\n\
        entity DELIVERY \"A delivery record.\" { deliver_dt : date \"Date delivered.\" }\n\
        EOF\n\
        match left right\n\
        accept left right left/SHIPMENT/ship_dt right/DELIVERY/deliver_dt\n\
        match left right\n\
        index-registry seed 7 scale 0.01\n";

    fn matrix_bits(shell: &Shell) -> Vec<(ElementId, ElementId, u64, bool)> {
        let bb = shell.manager().blackboard();
        let (s, t) = (SchemaId::new("left"), SchemaId::new("right"));
        let matrix = bb.matrix(&s, &t).expect("matrix exists");
        let mut cells = Vec::new();
        for &row in matrix.rows() {
            for &col in matrix.cols() {
                let cell = matrix.cell(row, col);
                cells.push((
                    row,
                    col,
                    cell.confidence.value().to_bits(),
                    cell.user_defined,
                ));
            }
        }
        cells
    }

    #[test]
    fn captured_state_warm_replays_bit_identically() {
        // Cold session: run the script, capture.
        let mut cold = Shell::new();
        let outcome = cold.run_on(SESSION);
        assert_eq!(outcome.errors, 0, "{}", outcome.transcript);
        let state = capture(&mut cold);
        assert_eq!(state.schemas.len(), 2);
        assert!(!state.matches.is_empty(), "runs were recorded");
        assert!(state.blocking.is_some(), "generated index was captured");

        // Warm session: prime artifacts, replay, prime features.
        let mut warm = Shell::new();
        prime_artifacts(&mut warm, &state);
        let replay = warm.run_on(SESSION);
        assert_eq!(replay.errors, 0, "{}", replay.transcript);
        prime_features(&mut warm, &state);

        // Both match commands were served from the primed store, and
        // the index build was restored from parts.
        let manager = warm.manager_mut();
        let harmony = manager.tool_mut::<HarmonyTool>("harmony").unwrap();
        assert_eq!(harmony.primed_hits(), 2, "both replayed matches warm");
        let blocking = manager.tool_mut::<BlockingTool>("blocking").unwrap();
        assert_eq!(blocking.primed_hits(), 1, "index restored, not rebuilt");

        // The warm matrix is bit-identical to the cold one.
        assert_eq!(matrix_bits(&cold), matrix_bits(&warm));

        // The user decision survived with its lock.
        let accepted = matrix_bits(&warm)
            .iter()
            .filter(|(_, _, bits, user)| *user && *bits == Confidence::ACCEPT.value().to_bits())
            .count();
        assert_eq!(accepted, 1);
    }

    #[test]
    fn primed_features_require_a_matching_fingerprint() {
        let mut cold = Shell::new();
        let outcome = cold.run_on(SESSION);
        assert_eq!(outcome.errors, 0, "{}", outcome.transcript);
        let state = capture(&mut cold);

        // A shell whose `left` diverged from the snapshot: the features
        // for `left` must not be primed (fingerprint mismatch), while
        // `right` — identical — still is.
        let mut warm = Shell::new();
        let diverged = warm.run_on(
            "load er left <<EOF\nentity OTHER { x : text }\nEOF\n\
             load er right <<EOF\n\
             entity DELIVERY \"A delivery record.\" { deliver_dt : date \"Date delivered.\" }\n\
             EOF\n",
        );
        assert_eq!(diverged.errors, 0, "{}", diverged.transcript);
        prime_features(&mut warm, &state);
        // Priming is advisory — the only observable contract is that a
        // subsequent match still completes correctly.
        let matched = warm.run_on("match left right\n");
        assert_eq!(matched.errors, 0, "{}", matched.transcript);
    }

    #[test]
    fn capture_on_a_fresh_shell_is_empty_but_valid() {
        let mut shell = Shell::new();
        let state = capture(&mut shell);
        assert!(state.schemas.is_empty());
        assert!(state.matches.is_empty());
        assert!(state.blocking.is_none());
        let snapshot = state.into_snapshot("s1", 0, Vec::new());
        assert_eq!(snapshot.session_id, "s1");
        let back = SessionState::from_snapshot(&snapshot);
        assert!(back.schemas.is_empty());
    }

    #[test]
    fn blackboard_built_index_is_not_captured() {
        let mut shell = Shell::new();
        let outcome = shell
            .run_on("load er a <<EOF\nentity VENDOR { vendor_id : text }\nEOF\nindex-registry\n");
        assert_eq!(outcome.errors, 0, "{}", outcome.transcript);
        let state = capture(&mut shell);
        assert!(
            state.blocking.is_none(),
            "blackboard indexes replay from schemas, not from the snapshot"
        );
    }
}
