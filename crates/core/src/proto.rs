//! Structured retryable protocol errors.
//!
//! The daemon's wire protocol reports failures as free-form `err` body
//! text, which is fine for humans but useless for a router that must
//! decide *mechanically* whether a failed command is safe to retry, and
//! where. This module gives the fleet a tiny shared vocabulary: each
//! variant renders to a stable, greppable first token and parses back
//! from a reply body with [`RetryableError::parse`].
//!
//! | rendered prefix | meaning                                            |
//! |-----------------|----------------------------------------------------|
//! | `RETRY-AFTER`   | the backend shed the request; retry after a delay  |
//! | `MOVED`         | the session lives (or is moving) elsewhere; re-resolve routing and retry |
//! | `DUPLICATE`     | the sequence-guarded command was already applied — **not** an error to retry; the effect happened exactly once |
//! | `SEQ-GAP`       | the command skipped ahead of the session's journal; refusing prevents a forked history |
//!
//! `RETRY-AFTER` keeps the exact `RETRY-AFTER {millis}ms: {detail}`
//! shape the admission controller has emitted since PR 5, so existing
//! `starts_with("RETRY-AFTER")` checks keep working unchanged.

use std::fmt;

/// A machine-readable retryable (or retry-forbidding) protocol error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryableError {
    /// The backend is overloaded and shed the request; the client may
    /// retry after roughly `millis` milliseconds (here or, for a
    /// router, on the next-ranked healthy backend).
    RetryAfter { millis: u64, detail: String },
    /// The session is owned by (or migrating to) another backend; the
    /// caller should re-resolve routing and retry the same command.
    Moved { session: String, detail: String },
    /// The sequence-guarded command was already applied by an earlier
    /// delivery. The effect happened exactly once; retrying is safe but
    /// pointless. Rendered on an `ok` reply, not an `err`.
    Duplicate { seq: u64 },
    /// The command's sequence number is ahead of the session's journal:
    /// some earlier mutation is missing, so executing would fork
    /// history. Never retried blindly — the router must re-sync first.
    SeqGap { expected: u64, got: u64 },
}

impl RetryableError {
    /// True when the *same* command may safely be sent again (possibly
    /// elsewhere) without risking a double execution.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RetryableError::RetryAfter { .. } | RetryableError::Moved { .. }
        )
    }

    /// The suggested retry delay, when the error carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            RetryableError::RetryAfter { millis, .. } => Some(*millis),
            _ => None,
        }
    }

    /// Parse a reply body back into a structured error. Returns `None`
    /// for ordinary free-form errors.
    pub fn parse(body: &str) -> Option<RetryableError> {
        let body = body.trim();
        if let Some(rest) = body.strip_prefix("RETRY-AFTER ") {
            let (head, detail) = match rest.split_once(':') {
                Some((h, d)) => (h.trim(), d.trim()),
                None => (rest.trim(), ""),
            };
            let millis = head.strip_suffix("ms")?.parse().ok()?;
            return Some(RetryableError::RetryAfter {
                millis,
                detail: detail.to_owned(),
            });
        }
        if let Some(rest) = body.strip_prefix("MOVED ") {
            let (session, detail) = match rest.split_once(':') {
                Some((s, d)) => (s.trim(), d.trim()),
                None => (rest.trim(), ""),
            };
            if session.is_empty() {
                return None;
            }
            return Some(RetryableError::Moved {
                session: session.to_owned(),
                detail: detail.to_owned(),
            });
        }
        if let Some(rest) = body.strip_prefix("DUPLICATE seq=") {
            let head = rest.split(':').next()?.trim();
            return Some(RetryableError::Duplicate {
                seq: head.parse().ok()?,
            });
        }
        if let Some(rest) = body.strip_prefix("SEQ-GAP expected=") {
            let (expected, rest) = rest.split_once(" got=")?;
            let got = rest.split(':').next()?.trim();
            return Some(RetryableError::SeqGap {
                expected: expected.trim().parse().ok()?,
                got: got.parse().ok()?,
            });
        }
        None
    }
}

impl fmt::Display for RetryableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryableError::RetryAfter { millis, detail } => {
                write!(f, "RETRY-AFTER {millis}ms: {detail}")
            }
            RetryableError::Moved { session, detail } => {
                write!(f, "MOVED {session}: {detail}")
            }
            RetryableError::Duplicate { seq } => {
                write!(f, "DUPLICATE seq={seq}: command already applied")
            }
            RetryableError::SeqGap { expected, got } => {
                write!(
                    f,
                    "SEQ-GAP expected={expected} got={got}: refusing out-of-order mutation"
                )
            }
        }
    }
}

impl std::error::Error for RetryableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_keeps_the_legacy_shape() {
        let err = RetryableError::RetryAfter {
            millis: 100,
            detail: "server at capacity (64 connections pending)".into(),
        };
        let body = err.to_string();
        assert!(body.starts_with("RETRY-AFTER "), "legacy prefix: {body}");
        assert_eq!(RetryableError::parse(&body).unwrap(), err);
        assert_eq!(err.retry_after_ms(), Some(100));
        assert!(err.is_retryable());
    }

    #[test]
    fn moved_roundtrips_and_is_retryable() {
        let err = RetryableError::Moved {
            session: "s7".into(),
            detail: "session migrating; retry".into(),
        };
        let parsed = RetryableError::parse(&err.to_string()).unwrap();
        assert_eq!(parsed, err);
        assert!(parsed.is_retryable());
        assert_eq!(parsed.retry_after_ms(), None);
    }

    #[test]
    fn duplicate_and_seq_gap_forbid_blind_retry() {
        let dup = RetryableError::Duplicate { seq: 4 };
        assert_eq!(RetryableError::parse(&dup.to_string()).unwrap(), dup);
        assert!(!dup.is_retryable());

        let gap = RetryableError::SeqGap {
            expected: 3,
            got: 9,
        };
        let body = gap.to_string();
        assert!(
            body.contains("expected=3") && body.contains("got=9"),
            "{body}"
        );
        assert_eq!(RetryableError::parse(&body).unwrap(), gap);
        assert!(!gap.is_retryable());
    }

    #[test]
    fn freeform_errors_parse_to_none() {
        assert_eq!(RetryableError::parse("schema \"po\" not found"), None);
        assert_eq!(RetryableError::parse("RETRY-AFTER soonish: eh"), None);
        assert_eq!(RetryableError::parse("MOVED : nowhere"), None);
        assert_eq!(RetryableError::parse("DUPLICATE seq=x"), None);
        assert_eq!(RetryableError::parse(""), None);
    }
}
