//! Mapping provenance (§5.1.3).
//!
//! "Mappings are also refined over time, especially once they are
//! tested on real data. The blackboard should maintain mapping
//! provenance." Every mutation of a mapping matrix is recorded: which
//! tool did it, what it set, in what order — enough to answer "who set
//! this cell to +1 and when (in sequence terms)".

use iwb_model::{ElementId, SchemaId};
use std::fmt;

/// What a provenance record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvenanceKind {
    /// A cell's confidence was set.
    CellSet {
        /// Row element.
        row: ElementId,
        /// Column element.
        col: ElementId,
        /// The new confidence value.
        confidence: f64,
        /// Whether it was a user decision.
        user_defined: bool,
    },
    /// A column's code was set.
    CodeSet {
        /// Column element.
        col: ElementId,
    },
    /// A row/column was marked complete.
    MarkedComplete {
        /// The element.
        element: ElementId,
    },
    /// The whole-matrix code was regenerated.
    MatrixCodeSet,
}

/// One provenance record.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Monotonic sequence number within the log.
    pub seq: u64,
    /// The acting tool.
    pub tool: String,
    /// The matrix (by schema pair).
    pub source: SchemaId,
    /// Target schema of the pair.
    pub target: SchemaId,
    /// What happened.
    pub kind: ProvenanceKind,
}

impl fmt::Display for ProvenanceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{}] {}→{}: ",
            self.seq, self.tool, self.source, self.target
        )?;
        match &self.kind {
            ProvenanceKind::CellSet {
                row,
                col,
                confidence,
                user_defined,
            } => write!(
                f,
                "cell {row}×{col} = {confidence:+.2} (user={user_defined})"
            ),
            ProvenanceKind::CodeSet { col } => write!(f, "code set on column {col}"),
            ProvenanceKind::MarkedComplete { element } => {
                write!(f, "{element} marked complete")
            }
            ProvenanceKind::MatrixCodeSet => write!(f, "matrix code regenerated"),
        }
    }
}

/// An append-only provenance log.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceLog {
    records: Vec<ProvenanceRecord>,
}

impl ProvenanceLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record; assigns the next sequence number.
    pub fn record(
        &mut self,
        tool: impl Into<String>,
        source: SchemaId,
        target: SchemaId,
        kind: ProvenanceKind,
    ) -> u64 {
        let seq = self.records.len() as u64 + 1;
        self.records.push(ProvenanceRecord {
            seq,
            tool: tool.into(),
            source,
            target,
            kind,
        });
        seq
    }

    /// All records, in order.
    pub fn records(&self) -> &[ProvenanceRecord] {
        &self.records
    }

    /// Records touching a particular cell, in order.
    pub fn cell_history(&self, row: ElementId, col: ElementId) -> Vec<&ProvenanceRecord> {
        self.records
            .iter()
            .filter(|r| {
                matches!(&r.kind, ProvenanceKind::CellSet { row: rr, col: cc, .. }
                    if *rr == row && *cc == col)
            })
            .collect()
    }

    /// Records produced by a tool.
    pub fn by_tool(&self, tool: &str) -> Vec<&ProvenanceRecord> {
        self.records.iter().filter(|r| r.tool == tool).collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (SchemaId, SchemaId, ElementId, ElementId) {
        (
            SchemaId::new("po"),
            SchemaId::new("inv"),
            ElementId::from_index(4),
            ElementId::from_index(2),
        )
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let (s, t, r, c) = ids();
        let mut log = ProvenanceLog::new();
        let a = log.record(
            "harmony",
            s.clone(),
            t.clone(),
            ProvenanceKind::CellSet {
                row: r,
                col: c,
                confidence: 0.8,
                user_defined: false,
            },
        );
        let b = log.record("aqualogic", s, t, ProvenanceKind::CodeSet { col: c });
        assert_eq!((a, b), (1, 2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn cell_history_filters() {
        let (s, t, r, c) = ids();
        let mut log = ProvenanceLog::new();
        log.record(
            "harmony",
            s.clone(),
            t.clone(),
            ProvenanceKind::CellSet {
                row: r,
                col: c,
                confidence: 0.8,
                user_defined: false,
            },
        );
        log.record(
            "user",
            s.clone(),
            t.clone(),
            ProvenanceKind::CellSet {
                row: r,
                col: c,
                confidence: 1.0,
                user_defined: true,
            },
        );
        log.record("user", s, t, ProvenanceKind::MatrixCodeSet);
        let history = log.cell_history(r, c);
        assert_eq!(history.len(), 2);
        // The final word on the cell was the user's.
        assert!(matches!(
            &history.last().unwrap().kind,
            ProvenanceKind::CellSet {
                user_defined: true,
                ..
            }
        ));
        assert_eq!(log.by_tool("user").len(), 2);
    }

    #[test]
    fn records_display_readably() {
        let (s, t, r, c) = ids();
        let mut log = ProvenanceLog::new();
        log.record(
            "harmony",
            s,
            t,
            ProvenanceKind::CellSet {
                row: r,
                col: c,
                confidence: -0.4,
                user_defined: false,
            },
        );
        let text = log.records()[0].to_string();
        assert!(text.contains("harmony"));
        assert!(text.contains("-0.40"));
    }
}
