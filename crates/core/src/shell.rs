//! A scriptable command shell over the workbench.
//!
//! The paper's workbench is driven through tool GUIs; headless
//! reproduction needs a command surface instead. [`run_script`]
//! interprets a small line language against one [`WorkbenchManager`],
//! returning the transcript. The `workbench` binary wraps it for
//! interactive or piped use.
//!
//! ```text
//! load <format> <schema-id> <<EOF … EOF      # task 1/2
//! match <source> <target> [subtree <path>]   # task 3 (automatic)
//! match-config [threads <n>] [cache on|off] [timeout <ms>]
//!                                             # engine parallelism/cache/deadline knobs
//! index-registry [seed <n>] [scale <f>] [threads <n>]
//!                                             # build the candidate index (no seed: blackboard)
//! find-candidates <query> [k] [rerank]        # top-k candidate models for a schema
//! accept <source> <target> <row> <col>       # task 3 (manual)
//! reject <source> <target> <row> <col>
//! bind <source> <target> <row> <variable>    # mapping
//! code <source> <target> <col> := <expr>     # mapping
//! generate <source> <target>                 # code generation
//! show schema <id> | matrix <source> <target> | coverage | trace
//! proposals <source> <target> [k <n>] [threshold <t>] [undecided]
//!                                             # ranked links (pure read; see iwb-eval)
//! weights                                     # engine re-weighting state (pure read)
//! query <s> <p> <o>                          # ad hoc IB query (use ?v for variables)
//! export                                     # Turtle dump
//! ```

use crate::manager::WorkbenchManager;
use crate::tool::{ToolArgs, ToolError};
use iwb_model::SchemaId;
use iwb_pool::Budget;
use iwb_rdf::{PatternTerm, Term, TriplePattern};
use std::fmt::Write;

/// A shell session holding the workbench and accumulating output.
pub struct Shell {
    manager: WorkbenchManager,
    /// Interruption budget attached to every tool invocation of the
    /// command currently executing (unlimited outside
    /// [`Shell::execute_with_budget`]).
    budget: Budget,
}

impl Default for Shell {
    fn default() -> Self {
        Shell {
            manager: WorkbenchManager::with_builtin_tools(),
            budget: Budget::unlimited(),
        }
    }
}

impl Shell {
    /// A shell over a fresh workbench with the built-in tools.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying manager.
    pub fn manager(&self) -> &WorkbenchManager {
        &self.manager
    }

    /// Mutable manager access, for hosts that capture or prime tool
    /// state around persistence (see [`crate::persist`]). Regular
    /// mutation goes through [`Shell::execute`].
    pub fn manager_mut(&mut self) -> &mut WorkbenchManager {
        &mut self.manager
    }

    /// Execute one command line (heredoc bodies are handled by
    /// [`run_script`]); returns the command's output text.
    ///
    /// # Panic safety
    ///
    /// `execute` itself never intentionally panics, but it runs tool
    /// code (see [`crate::tool::WorkbenchTool`]) that might. A panic
    /// can unwind out of a partially applied transaction, leaving the
    /// blackboard in an intermediate state; callers that must survive
    /// faulty tools (e.g. `iwb-server`) should wrap the call in
    /// [`std::panic::catch_unwind`] *inside* whatever lock guards the
    /// shell — so the lock is released cleanly instead of poisoned —
    /// and treat the session as suspect afterwards (the server
    /// quarantines it after repeated panics).
    pub fn execute(&mut self, line: &str, heredoc: Option<&str>) -> Result<String, ToolError> {
        self.execute_with_budget(line, heredoc, &Budget::unlimited())
    }

    /// [`Shell::execute`] under a cooperative interruption [`Budget`]
    /// (deadline and/or cancel token). The budget rides along on every
    /// tool invocation the command makes; an interrupted tool aborts
    /// with [`ToolError::Cancelled`] / [`ToolError::DeadlineExceeded`]
    /// before writing anything, so blackboard state is untouched.
    pub fn execute_with_budget(
        &mut self,
        line: &str,
        heredoc: Option<&str>,
        budget: &Budget,
    ) -> Result<String, ToolError> {
        self.budget = budget.clone();
        let result = self.dispatch(line, heredoc);
        self.budget = Budget::unlimited();
        result
    }

    /// Invoke a tool with the executing command's budget attached.
    fn invoke_tool(
        &mut self,
        tool: &str,
        args: ToolArgs,
    ) -> Result<crate::manager::InvokeReport, ToolError> {
        let args = args.with_budget(self.budget.clone());
        self.manager.invoke(tool, &args)
    }

    /// The `proposals` read: the engine's current link proposals for a
    /// matched pair, reconstructed from the blackboard matrix through
    /// the same link filters the evaluation harness uses
    /// ([`LinkFilter::BestPerElement`] + a confidence threshold), so a
    /// scripted oracle driving the shell (or the daemon) scores exactly
    /// what `iwb_eval::harness::predict` would. With `undecided`, the
    /// top-`k` machine suggestions awaiting a user decision instead —
    /// the list a curation replay accepts/rejects each round.
    fn proposals(
        &mut self,
        source: &str,
        target: &str,
        rest: &[&str],
    ) -> Result<String, ToolError> {
        use iwb_harmony::filters::{FilterSet, LinkFilter};
        use iwb_harmony::matrix::ScoreMatrix;
        const USAGE: &str =
            "usage: proposals <source> <target> [k <n>] [threshold <t>] [undecided]";
        let mut k = 10usize;
        let mut threshold = 0.25f64;
        let mut undecided = false;
        let mut it = rest.iter();
        while let Some(word) = it.next() {
            match *word {
                "k" => {
                    let v = it.next().ok_or_else(|| ToolError::Failed(USAGE.into()))?;
                    k = v
                        .parse()
                        .map_err(|_| ToolError::Failed(format!("k must be a number, got {v:?}")))?;
                }
                "threshold" => {
                    let v = it.next().ok_or_else(|| ToolError::Failed(USAGE.into()))?;
                    threshold = v.parse().map_err(|_| {
                        ToolError::Failed(format!("threshold must be a number, got {v:?}"))
                    })?;
                }
                "undecided" => undecided = true,
                other => {
                    return Err(ToolError::Failed(format!("{USAGE} — got {other:?}")));
                }
            }
        }
        let bb = self.manager.blackboard();
        let (s_id, t_id) = (SchemaId::new(source), SchemaId::new(target));
        let matrix = bb.matrix(&s_id, &t_id).ok_or_else(|| {
            ToolError::Failed("no matrix for that pair — run `match` first".into())
        })?;
        let s = bb
            .schema(&s_id)
            .ok_or_else(|| ToolError::UnknownSchema(s_id.to_string()))?;
        let t = bb
            .schema(&t_id)
            .ok_or_else(|| ToolError::UnknownSchema(t_id.to_string()))?;
        // Rebuild a score matrix over the mapping matrix's cells so the
        // harmony link filters apply verbatim (user decisions are ±1
        // raw scores, so `raw` preserves them exactly).
        let mut scores = ScoreMatrix::new(matrix.rows().to_vec(), matrix.cols().to_vec());
        let mut user = std::collections::HashSet::new();
        for &row in matrix.rows() {
            for &col in matrix.cols() {
                let cell = matrix.cell(row, col);
                scores.set(row, col, cell.confidence);
                if cell.user_defined {
                    user.insert((row, col));
                }
            }
        }
        let mut filters = FilterSet::new().with_link(LinkFilter::BestPerElement);
        if !undecided {
            filters = filters.with_link(LinkFilter::ConfidenceAtLeast(threshold));
        }
        let mut links = filters.visible(&scores, s, t, &user);
        if undecided {
            links.retain(|l| !l.user_defined && l.confidence.value() > 0.0);
        }
        // Deterministic order: confidence desc, then name paths —
        // confidences are clamped (never NaN) so the comparator is total.
        links.sort_by(|a, b| {
            b.confidence
                .value()
                .partial_cmp(&a.confidence.value())
                .expect("clamped confidences are never NaN")
                .then_with(|| s.name_path(a.src).cmp(&s.name_path(b.src)))
                .then_with(|| t.name_path(a.tgt).cmp(&t.name_path(b.tgt)))
        });
        if undecided {
            links.truncate(k);
        }
        let mut out = if undecided {
            format!(
                "proposals {source} -> {target}: {} undecided link(s) (top-{k})\n",
                links.len()
            )
        } else {
            format!(
                "proposals {source} -> {target}: {} link(s) (threshold {threshold})\n",
                links.len()
            )
        };
        for l in &links {
            let _ = writeln!(
                out,
                "{} -> {} {:+.6}{}",
                s.name_path(l.src),
                t.name_path(l.tgt),
                l.confidence.value(),
                if l.user_defined { " user" } else { "" }
            );
        }
        Ok(out)
    }

    fn dispatch(&mut self, line: &str, heredoc: Option<&str>) -> Result<String, ToolError> {
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["load", format, schema_id, ..] => {
                let text = heredoc
                    .ok_or_else(|| ToolError::Failed("load requires a <<EOF … EOF body".into()))?;
                let report = self.invoke_tool(
                    "schema-loader",
                    ToolArgs::new()
                        .with("format", *format)
                        .with("text", text)
                        .with("schema-id", *schema_id),
                )?;
                Ok(report.output)
            }
            ["match", source, target] => {
                let report = self.invoke_tool(
                    "harmony",
                    ToolArgs::new()
                        .with("source", *source)
                        .with("target", *target),
                )?;
                Ok(report.output)
            }
            ["match", source, target, "subtree", path] => {
                let report = self.invoke_tool(
                    "harmony",
                    ToolArgs::new()
                        .with("source", *source)
                        .with("target", *target)
                        .with("subtree", *path),
                )?;
                Ok(report.output)
            }
            ["match-config", rest @ ..] => {
                let mut tool_args = ToolArgs::new().with("action", "configure");
                let mut it = rest.iter();
                while let Some(key) = it.next() {
                    let value = it.next().ok_or_else(|| {
                        ToolError::Failed(
                            "usage: match-config [threads <n>] [cache on|off] [timeout <ms>]"
                                .into(),
                        )
                    })?;
                    match *key {
                        "threads" | "cache" | "timeout" => tool_args = tool_args.with(*key, *value),
                        other => {
                            return Err(ToolError::Failed(format!(
                                "unknown match-config key {other:?} (threads, cache, timeout)"
                            )))
                        }
                    }
                }
                Ok(self.invoke_tool("harmony", tool_args)?.output)
            }
            ["index-registry", rest @ ..] => {
                let mut tool_args = ToolArgs::new().with("action", "index");
                let mut it = rest.iter();
                while let Some(key) = it.next() {
                    let value = it.next().ok_or_else(|| {
                        ToolError::Failed(
                            "usage: index-registry [seed <n>] [scale <f>] [threads <n>]".into(),
                        )
                    })?;
                    match *key {
                        "seed" | "scale" | "threads" => tool_args = tool_args.with(*key, *value),
                        other => {
                            return Err(ToolError::Failed(format!(
                                "unknown index-registry key {other:?} (seed, scale, threads)"
                            )))
                        }
                    }
                }
                Ok(self.invoke_tool("blocking", tool_args)?.output)
            }
            ["find-candidates", query, rest @ ..] => {
                let mut tool_args = ToolArgs::new().with("action", "find").with("query", *query);
                for word in rest {
                    match *word {
                        "rerank" => tool_args = tool_args.with("rerank", "on"),
                        k if k.parse::<usize>().is_ok() => tool_args = tool_args.with("k", k),
                        other => {
                            return Err(ToolError::Failed(format!(
                                "usage: find-candidates <query> [k] [rerank] — got {other:?}"
                            )))
                        }
                    }
                }
                Ok(self.invoke_tool("blocking", tool_args)?.output)
            }
            [action @ ("accept" | "reject"), source, target, row, col] => {
                let report = self.invoke_tool(
                    "harmony",
                    ToolArgs::new()
                        .with("action", *action)
                        .with("source", *source)
                        .with("target", *target)
                        .with("row", *row)
                        .with("col", *col),
                )?;
                Ok(format!(
                    "{} ({} event(s) propagated)",
                    report.output,
                    report.events.len()
                ))
            }
            ["bind", source, target, row, variable] => {
                let report = self.invoke_tool(
                    "aqualogic-mapper",
                    ToolArgs::new()
                        .with("action", "bind-variable")
                        .with("source", *source)
                        .with("target", *target)
                        .with("row", *row)
                        .with("variable", *variable),
                )?;
                Ok(report.output)
            }
            ["code", source, target, col, ":=", ..] => {
                let expr = line
                    .split_once(":=")
                    .map(|(_, rhs)| rhs.trim())
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| ToolError::Failed("empty code expression".into()))?;
                let report = self.invoke_tool(
                    "aqualogic-mapper",
                    ToolArgs::new()
                        .with("action", "set-code")
                        .with("source", *source)
                        .with("target", *target)
                        .with("col", *col)
                        .with("code", expr),
                )?;
                Ok(report.output)
            }
            ["generate", source, target] => {
                let report = self.invoke_tool(
                    "xquery-codegen",
                    ToolArgs::new()
                        .with("source", *source)
                        .with("target", *target),
                )?;
                Ok(report.output)
            }
            ["show", "schema", id] => {
                let schema = self
                    .manager
                    .blackboard()
                    .schema(&SchemaId::new(*id))
                    .ok_or_else(|| ToolError::UnknownSchema((*id).to_owned()))?;
                Ok(iwb_model::display::render(schema))
            }
            ["show", "matrix", source, target] => {
                let bb = self.manager.blackboard();
                let (s_id, t_id) = (SchemaId::new(*source), SchemaId::new(*target));
                let matrix = bb
                    .matrix(&s_id, &t_id)
                    .ok_or_else(|| ToolError::Failed("no matrix for that pair".into()))?;
                let s = bb
                    .schema(&s_id)
                    .ok_or_else(|| ToolError::UnknownSchema(s_id.to_string()))?;
                let t = bb
                    .schema(&t_id)
                    .ok_or_else(|| ToolError::UnknownSchema(t_id.to_string()))?;
                Ok(matrix.render(s, t))
            }
            ["proposals", source, target, rest @ ..] => self.proposals(source, target, rest),
            ["weights"] => {
                let tool = self
                    .manager
                    .tool_mut::<crate::tools::HarmonyTool>("harmony")
                    .ok_or_else(|| ToolError::Failed("harmony tool not installed".into()))?;
                let engine = tool.engine();
                let mut out = format!("weights: epoch={}\n", engine.corpus_epoch());
                for (name, weight) in engine.reweight_state() {
                    let _ = writeln!(out, "{name} {weight:?}");
                }
                Ok(out)
            }
            ["show", "coverage"] => Ok(self.manager.coverage()),
            ["show", "trace"] => Ok(self.manager.trace().join("\n")),
            ["query", s, p, o] => {
                let part = |w: &str| -> PatternTerm {
                    if let Some(v) = w.strip_prefix('?') {
                        return PatternTerm::var(v);
                    }
                    match w {
                        "true" => PatternTerm::Const(Term::boolean(true)),
                        "false" => PatternTerm::Const(Term::boolean(false)),
                        _ => match w.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
                            Some(lit) => PatternTerm::Const(Term::literal(lit)),
                            None => PatternTerm::Const(Term::iri(w)),
                        },
                    }
                };
                let solutions =
                    self.manager
                        .query(&[TriplePattern::new(part(s), part(p), part(o))]);
                let mut out = format!("{} solution(s)\n", solutions.len());
                let store = self.manager.blackboard().materialize_rdf();
                for sol in solutions.iter().take(20) {
                    let mut kv: Vec<String> = sol
                        .iter()
                        .map(|(k, &v)| format!("?{k} = {}", store.term(v)))
                        .collect();
                    kv.sort();
                    let _ = writeln!(out, "  {}", kv.join(", "));
                }
                Ok(out)
            }
            ["export"] => Ok(self.manager.blackboard().export_turtle()),
            [] => Ok(String::new()),
            _ => Err(ToolError::Failed(format!("unknown command: {line}"))),
        }
    }
}

/// The heredoc marker a command line ends with to open a body
/// (`load er po <<EOF`).
pub const HEREDOC_MARKER: &str = "<<EOF";

/// The line terminating a heredoc body.
pub const HEREDOC_END: &str = "EOF";

/// Whether a command line mutates blackboard state (as opposed to
/// `show`/`query`/`export` reads and blank/comment lines).
///
/// This is the single source of truth for what the server's session
/// journal must persist: replaying exactly the successful mutating
/// commands of a session, in order, rebuilds its state.
pub fn mutates(line: &str) -> bool {
    matches!(
        line.split_whitespace().next().unwrap_or(""),
        // `match-config` mutates no matrix, but it changes engine state
        // that later `match` commands depend on — replaying it keeps a
        // recovered session's configuration (and thus timing) faithful.
        // `index-registry` is the same shape: it writes no blackboard
        // state but later `find-candidates` depend on the index, and
        // replaying it rebuilds the index deterministically (seeded
        // generation, order-invariant build). `find-candidates` itself
        // is a pure read and stays out of the journal.
        "load"
            | "match"
            | "match-config"
            | "index-registry"
            | "accept"
            | "reject"
            | "bind"
            | "code"
            | "generate"
    )
}

/// If `line` opens a heredoc, the command part without the marker.
///
/// Shared by [`run_script`] and the `iwb-server` connection loop so
/// the wire protocol and the script language stay identical.
pub fn heredoc_start(line: &str) -> Option<&str> {
    line.trim().strip_suffix(HEREDOC_MARKER).map(str::trim)
}

/// The outcome of running a script: the transcript plus how many
/// commands failed (scripted sessions are CI-checkable through the
/// error count — the `workbench` binary exits nonzero on it).
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// The interleaved `> command` / output transcript.
    pub transcript: String,
    /// Commands executed (comments and blank lines excluded).
    pub commands: usize,
    /// Commands that returned an error.
    pub errors: usize,
}

/// Run a whole script (commands separated by newlines; a trailing
/// `<<EOF` on a command starts a heredoc terminated by a line holding
/// only `EOF`). Lines starting with `#` are comments. Errors are
/// reported in the transcript and do not abort the script.
pub fn run_script(script: &str) -> String {
    run_script_counted(script).transcript
}

/// [`run_script`] with the error count, on a fresh workbench.
pub fn run_script_counted(script: &str) -> ScriptOutcome {
    Shell::new().run_on(script)
}

impl Shell {
    /// Run a script against *this* shell (state accumulates across
    /// calls), returning the transcript and error count.
    pub fn run_on(&mut self, script: &str) -> ScriptOutcome {
        let mut outcome = ScriptOutcome {
            transcript: String::new(),
            commands: 0,
            errors: 0,
        };
        let mut lines = script.lines();
        while let Some(line) = lines.next() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (command, heredoc) = match heredoc_start(trimmed) {
                Some(cmd) => {
                    let mut body = String::new();
                    for body_line in lines.by_ref() {
                        if body_line.trim() == HEREDOC_END {
                            break;
                        }
                        body.push_str(body_line);
                        body.push('\n');
                    }
                    (cmd.to_owned(), Some(body))
                }
                None => (trimmed.to_owned(), None),
            };
            outcome.commands += 1;
            let _ = writeln!(outcome.transcript, "> {command}");
            match self.execute(&command, heredoc.as_deref()) {
                Ok(out) => {
                    for l in out.lines() {
                        let _ = writeln!(outcome.transcript, "  {l}");
                    }
                }
                Err(e) => {
                    outcome.errors += 1;
                    let _ = writeln!(outcome.transcript, "  error: {e}");
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = r#"
# load two tiny schemata
load er left <<EOF
entity A "Left entity." { x : text "The x attribute." }
EOF
load er right <<EOF
entity B "Right entity." { y : text "The y attribute." }
EOF
match left right
accept left right left/A/x right/B/y
bind left right left/A shipvar
code left right right/B/y := data($shipvar/x)
generate left right
show matrix left right
query ?cell iwb:is-user-defined true
show coverage
"#;

    #[test]
    fn full_script_runs_without_errors() {
        let transcript = run_script(SCRIPT);
        assert!(!transcript.contains("error:"), "{transcript}");
        assert!(transcript.contains("loaded left"));
        assert!(transcript.contains("cells updated"));
        assert!(transcript.contains("event(s) propagated"));
        assert!(transcript.contains("variable=shipvar"));
        assert!(transcript.contains("confidence=+1.00 user-defined=true"));
        assert!(transcript.contains("1 solution(s)"));
        assert!(transcript.contains("generate semantic correspondences"));
    }

    #[test]
    fn unknown_commands_report_but_do_not_abort() {
        let transcript = run_script("frobnicate\nshow coverage\n");
        assert!(transcript.contains("error: unknown command"));
        assert!(transcript.contains("task"), "later commands still run");
    }

    #[test]
    fn counted_outcome_tracks_commands_and_errors() {
        let outcome = run_script_counted("frobnicate\nshow coverage\n# comment\n\n");
        assert_eq!(outcome.commands, 2);
        assert_eq!(outcome.errors, 1);
        let clean = run_script_counted("show coverage\n");
        assert_eq!((clean.commands, clean.errors), (1, 0));
    }

    #[test]
    fn run_on_accumulates_state_across_calls() {
        let mut shell = Shell::new();
        let first = shell.run_on("load er s <<EOF\nentity E { f : text }\nEOF\n");
        assert_eq!(first.errors, 0);
        let second = shell.run_on("show schema s\n");
        assert_eq!(second.errors, 0);
        assert!(second.transcript.contains("[contains-entity] E"));
    }

    #[test]
    fn heredoc_start_strips_marker() {
        assert_eq!(heredoc_start("load er po <<EOF"), Some("load er po"));
        assert_eq!(heredoc_start("  load er po <<EOF  "), Some("load er po"));
        assert_eq!(heredoc_start("show coverage"), None);
    }

    #[test]
    fn heredoc_missing_terminator_at_eof_takes_rest_of_script() {
        // No closing EOF line: the body runs to end of input, and the
        // command still executes (scripts truncated by a crash degrade
        // to a best-effort load rather than a hang).
        let outcome = run_script_counted("load er s <<EOF\nentity E { f : text }");
        assert_eq!((outcome.commands, outcome.errors), (1, 0));
        assert!(
            outcome.transcript.contains("loaded s"),
            "{}",
            outcome.transcript
        );
    }

    #[test]
    fn heredoc_terminator_tolerates_trailing_whitespace() {
        let outcome =
            run_script_counted("load er s <<EOF\nentity E { f : text }\nEOF   \nshow schema s\n");
        assert_eq!((outcome.commands, outcome.errors), (2, 0));
        assert!(outcome.transcript.contains("[contains-entity] E"));
    }

    #[test]
    fn heredoc_empty_body_loads_an_empty_schema() {
        let outcome = run_script_counted("load er s <<EOF\nEOF\n");
        assert_eq!((outcome.commands, outcome.errors), (1, 0));
        assert!(
            outcome.transcript.contains("loaded s (er, 1 elements"),
            "{}",
            outcome.transcript
        );
    }

    #[test]
    fn mutates_classifies_the_shell_language() {
        for cmd in [
            "load er po <<EOF",
            "match a b",
            "match-config threads 4",
            "index-registry seed 7 scale 0.01",
            "accept a b r c",
            "reject a b r c",
            "bind a b r v",
            "code a b c := x",
            "generate a b",
        ] {
            assert!(mutates(cmd), "{cmd} should mutate");
        }
        for cmd in [
            "show coverage",
            "query ? ? ?",
            "export",
            "",
            "# note",
            // Pure read: replay rebuilds the index from the journaled
            // `index-registry` line, so the query itself is not logged.
            "find-candidates q 5",
            // Pure reads over existing match state: replay rebuilds the
            // matrix (and the learned weights) from the journaled
            // `match`/`accept`/`reject` lines.
            "proposals a b k 5 undecided",
            "weights",
        ] {
            assert!(!mutates(cmd), "{cmd} should not mutate");
        }
    }

    #[test]
    fn proposals_lists_ranked_links_and_weights_reports_state() {
        let mut shell = Shell::new();
        let load = shell.run_on(
            "load er a <<EOF\nentity CUSTOMER \"A customer.\" { cust_name : text \"Name.\" }\nEOF\n\
             load er b <<EOF\nentity client \"A client.\" { client_name : text \"Name.\" }\nEOF\n\
             match a b\n",
        );
        assert_eq!(load.errors, 0, "{}", load.transcript);
        let all = shell.execute("proposals a b threshold 0.0", None).unwrap();
        assert!(all.contains("link(s) (threshold 0)"), "{all}");
        assert!(all.contains(" -> "), "{all}");
        let undecided = shell.execute("proposals a b k 2 undecided", None).unwrap();
        assert!(
            undecided.contains("undecided link(s) (top-2)"),
            "{undecided}"
        );
        assert!(!undecided.contains(" user"), "{undecided}");
        // A user decision shows up as `user` in the threshold view and
        // leaves the undecided view.
        shell
            .execute("accept a b a/CUSTOMER/cust_name b/client/client_name", None)
            .unwrap();
        let after = shell.execute("proposals a b threshold 0.5", None).unwrap();
        assert!(
            after.contains("a/CUSTOMER/cust_name -> b/client/client_name +1.000000 user"),
            "{after}"
        );
        let undecided = shell.execute("proposals a b k 10 undecided", None).unwrap();
        assert!(
            !undecided.contains("a/CUSTOMER/cust_name -> b/client/client_name"),
            "{undecided}"
        );
        let weights = shell.execute("weights", None).unwrap();
        assert!(weights.contains("weights: epoch="), "{weights}");
        assert!(weights.contains("name 1.0"), "{weights}");
        // Errors are structured.
        let err = shell.execute("proposals a b k", None).unwrap_err();
        assert!(err.to_string().contains("usage"), "{err}");
        let err = shell.execute("proposals a b sideways", None).unwrap_err();
        assert!(err.to_string().contains("usage"), "{err}");
        let err = shell
            .execute("proposals a nope threshold 0.1", None)
            .unwrap_err();
        assert!(err.to_string().contains("no matrix"), "{err}");
    }

    #[test]
    fn index_registry_and_find_candidates_round_trip() {
        let mut shell = Shell::new();
        let load = shell.run_on(
            "load er q <<EOF\nentity VENDOR { vendor_id : text }\nEOF\n\
             load er other <<EOF\nentity EMPLOYEE { emp_nbr : text }\nEOF\n",
        );
        assert_eq!(load.errors, 0, "{}", load.transcript);
        // No seed: index the blackboard's own schemas.
        let indexed = shell.execute("index-registry", None).unwrap();
        assert!(indexed.contains("blackboard snapshot"), "{indexed}");
        let found = shell.execute("find-candidates q 1", None).unwrap();
        assert!(found.contains("top-1, blocking only"), "{found}");
        // The query schema itself is its own best candidate.
        assert!(found.contains("1. q"), "{found}");
        let reranked = shell.execute("find-candidates q 2 rerank", None).unwrap();
        assert!(reranked.contains("reranked by full engine"), "{reranked}");
    }

    #[test]
    fn index_registry_generates_a_seeded_repository() {
        let mut shell = Shell::new();
        let load = shell.run_on("load er q <<EOF\nentity AIRCRAFT { acft_cd : text }\nEOF\n");
        assert_eq!(load.errors, 0, "{}", load.transcript);
        let indexed = shell
            .execute("index-registry seed 7 scale 0.02", None)
            .unwrap();
        assert!(indexed.contains("generated registry (seed 7"), "{indexed}");
        let found = shell.execute("find-candidates q 3", None).unwrap();
        assert!(found.contains("candidate(s) for q"), "{found}");
        let err = shell.execute("index-registry seed", None).unwrap_err();
        assert!(err.to_string().contains("usage"), "{err}");
        let err = shell.execute("index-registry epoch 9", None).unwrap_err();
        assert!(err.to_string().contains("unknown index-registry key"));
        let err = shell
            .execute("find-candidates q sideways", None)
            .unwrap_err();
        assert!(err.to_string().contains("usage"), "{err}");
    }

    #[test]
    fn match_config_shows_and_sets_engine_knobs() {
        let mut shell = Shell::new();
        let shown = shell.execute("match-config", None).unwrap();
        assert!(shown.contains("threads=1"), "{shown}");
        assert!(shown.contains("cache=on"), "{shown}");
        assert!(shown.contains("timeout=none"), "{shown}");
        let set = shell
            .execute("match-config threads 4 cache off timeout 2500", None)
            .unwrap();
        assert!(set.contains("threads=4"), "{set}");
        assert!(set.contains("cache=off"), "{set}");
        assert!(set.contains("timeout=2500ms"), "{set}");
        let cleared = shell.execute("match-config timeout 0", None).unwrap();
        assert!(cleared.contains("timeout=none"), "{cleared}");
        let err = shell.execute("match-config cache maybe", None).unwrap_err();
        assert!(err.to_string().contains("on or off"));
        let err = shell.execute("match-config threads", None).unwrap_err();
        assert!(err.to_string().contains("usage"));
        let err = shell.execute("match-config flux 9", None).unwrap_err();
        assert!(err.to_string().contains("unknown match-config key"));
        let err = shell
            .execute("match-config timeout never", None)
            .unwrap_err();
        assert!(err.to_string().contains("milliseconds"));
    }

    #[test]
    fn execute_with_budget_cancels_cooperative_commands() {
        use iwb_pool::{CancelToken, Deadline};
        let mut shell = Shell::new();
        let load = shell.run_on(
            "load er a <<EOF\nentity A { x : text }\nEOF\nload er b <<EOF\nentity B { y : text }\nEOF\n",
        );
        assert_eq!(load.errors, 0, "{}", load.transcript);
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::new(token, Deadline::none());
        let err = shell
            .execute_with_budget("match a b", None, &budget)
            .unwrap_err();
        assert_eq!(err, ToolError::Cancelled);
        // The budget does not leak into the next (plain) command.
        let out = shell.execute("match a b", None).unwrap();
        assert!(out.contains("cells updated"), "{out}");
    }

    #[test]
    fn load_without_heredoc_is_an_error() {
        let mut shell = Shell::new();
        let err = shell.execute("load er x", None).unwrap_err();
        assert!(err.to_string().contains("EOF"));
    }

    #[test]
    fn show_schema_renders() {
        let transcript = run_script("load er s <<EOF\nentity E { f : text }\nEOF\nshow schema s\n");
        assert!(transcript.contains("[contains-entity] E"));
        assert!(transcript.contains("[contains-attribute] f"));
    }

    #[test]
    fn export_emits_turtle() {
        let transcript = run_script("load er s <<EOF\nentity E { f : text }\nEOF\nexport\n");
        assert!(transcript.contains("iwb:schema/s rdf:type iwb:Schema ."));
    }
}
