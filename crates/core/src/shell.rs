//! A scriptable command shell over the workbench.
//!
//! The paper's workbench is driven through tool GUIs; headless
//! reproduction needs a command surface instead. [`run_script`]
//! interprets a small line language against one [`WorkbenchManager`],
//! returning the transcript. The `workbench` binary wraps it for
//! interactive or piped use.
//!
//! ```text
//! load <format> <schema-id> <<EOF … EOF      # task 1/2
//! match <source> <target> [subtree <path>]   # task 3 (automatic)
//! accept <source> <target> <row> <col>       # task 3 (manual)
//! reject <source> <target> <row> <col>
//! bind <source> <target> <row> <variable>    # mapping
//! code <source> <target> <col> := <expr>     # mapping
//! generate <source> <target>                 # code generation
//! show schema <id> | matrix <source> <target> | coverage | trace
//! query <s> <p> <o>                          # ad hoc IB query (use ?v for variables)
//! export                                     # Turtle dump
//! ```

use crate::manager::WorkbenchManager;
use crate::tool::{ToolArgs, ToolError};
use iwb_model::SchemaId;
use iwb_rdf::{PatternTerm, Term, TriplePattern};
use std::fmt::Write;

/// A shell session holding the workbench and accumulating output.
pub struct Shell {
    manager: WorkbenchManager,
}

impl Default for Shell {
    fn default() -> Self {
        Shell {
            manager: WorkbenchManager::with_builtin_tools(),
        }
    }
}

impl Shell {
    /// A shell over a fresh workbench with the built-in tools.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying manager.
    pub fn manager(&self) -> &WorkbenchManager {
        &self.manager
    }

    /// Execute one command line (heredoc bodies are handled by
    /// [`run_script`]); returns the command's output text.
    pub fn execute(&mut self, line: &str, heredoc: Option<&str>) -> Result<String, ToolError> {
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["load", format, schema_id, ..] => {
                let text = heredoc.ok_or_else(|| {
                    ToolError::Failed("load requires a <<EOF … EOF body".into())
                })?;
                let report = self.manager.invoke(
                    "schema-loader",
                    &ToolArgs::new()
                        .with("format", *format)
                        .with("text", text)
                        .with("schema-id", *schema_id),
                )?;
                Ok(report.output)
            }
            ["match", source, target] => {
                let report = self.manager.invoke(
                    "harmony",
                    &ToolArgs::new().with("source", *source).with("target", *target),
                )?;
                Ok(report.output)
            }
            ["match", source, target, "subtree", path] => {
                let report = self.manager.invoke(
                    "harmony",
                    &ToolArgs::new()
                        .with("source", *source)
                        .with("target", *target)
                        .with("subtree", *path),
                )?;
                Ok(report.output)
            }
            [action @ ("accept" | "reject"), source, target, row, col] => {
                let report = self.manager.invoke(
                    "harmony",
                    &ToolArgs::new()
                        .with("action", *action)
                        .with("source", *source)
                        .with("target", *target)
                        .with("row", *row)
                        .with("col", *col),
                )?;
                Ok(format!(
                    "{} ({} event(s) propagated)",
                    report.output,
                    report.events.len()
                ))
            }
            ["bind", source, target, row, variable] => {
                let report = self.manager.invoke(
                    "aqualogic-mapper",
                    &ToolArgs::new()
                        .with("action", "bind-variable")
                        .with("source", *source)
                        .with("target", *target)
                        .with("row", *row)
                        .with("variable", *variable),
                )?;
                Ok(report.output)
            }
            ["code", source, target, col, ":=", ..] => {
                let expr = line
                    .split_once(":=")
                    .map(|(_, rhs)| rhs.trim())
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| ToolError::Failed("empty code expression".into()))?;
                let report = self.manager.invoke(
                    "aqualogic-mapper",
                    &ToolArgs::new()
                        .with("action", "set-code")
                        .with("source", *source)
                        .with("target", *target)
                        .with("col", *col)
                        .with("code", expr),
                )?;
                Ok(report.output)
            }
            ["generate", source, target] => {
                let report = self.manager.invoke(
                    "xquery-codegen",
                    &ToolArgs::new().with("source", *source).with("target", *target),
                )?;
                Ok(report.output)
            }
            ["show", "schema", id] => {
                let schema = self
                    .manager
                    .blackboard()
                    .schema(&SchemaId::new(*id))
                    .ok_or_else(|| ToolError::UnknownSchema((*id).to_owned()))?;
                Ok(iwb_model::display::render(schema))
            }
            ["show", "matrix", source, target] => {
                let bb = self.manager.blackboard();
                let (s_id, t_id) = (SchemaId::new(*source), SchemaId::new(*target));
                let matrix = bb
                    .matrix(&s_id, &t_id)
                    .ok_or_else(|| ToolError::Failed("no matrix for that pair".into()))?;
                let s = bb.schema(&s_id).ok_or_else(|| ToolError::UnknownSchema(s_id.to_string()))?;
                let t = bb.schema(&t_id).ok_or_else(|| ToolError::UnknownSchema(t_id.to_string()))?;
                Ok(matrix.render(s, t))
            }
            ["show", "coverage"] => Ok(self.manager.coverage()),
            ["show", "trace"] => Ok(self.manager.trace().join("\n")),
            ["query", s, p, o] => {
                let part = |w: &str| -> PatternTerm {
                    if let Some(v) = w.strip_prefix('?') {
                        return PatternTerm::var(v);
                    }
                    match w {
                        "true" => PatternTerm::Const(Term::boolean(true)),
                        "false" => PatternTerm::Const(Term::boolean(false)),
                        _ => match w.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
                            Some(lit) => PatternTerm::Const(Term::literal(lit)),
                            None => PatternTerm::Const(Term::iri(w)),
                        },
                    }
                };
                let solutions = self
                    .manager
                    .query(&[TriplePattern::new(part(s), part(p), part(o))]);
                let mut out = format!("{} solution(s)\n", solutions.len());
                let store = self.manager.blackboard().materialize_rdf();
                for sol in solutions.iter().take(20) {
                    let mut kv: Vec<String> = sol
                        .iter()
                        .map(|(k, &v)| format!("?{k} = {}", store.term(v)))
                        .collect();
                    kv.sort();
                    let _ = writeln!(out, "  {}", kv.join(", "));
                }
                Ok(out)
            }
            ["export"] => Ok(self.manager.blackboard().export_turtle()),
            [] => Ok(String::new()),
            _ => Err(ToolError::Failed(format!("unknown command: {line}"))),
        }
    }
}

/// Run a whole script (commands separated by newlines; a trailing
/// `<<EOF` on a command starts a heredoc terminated by a line holding
/// only `EOF`). Lines starting with `#` are comments. Errors are
/// reported in the transcript and do not abort the script.
pub fn run_script(script: &str) -> String {
    let mut shell = Shell::new();
    let mut transcript = String::new();
    let mut lines = script.lines().peekable();
    while let Some(line) = lines.next() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (command, heredoc) = match trimmed.strip_suffix("<<EOF") {
            Some(cmd) => {
                let mut body = String::new();
                for body_line in lines.by_ref() {
                    if body_line.trim() == "EOF" {
                        break;
                    }
                    body.push_str(body_line);
                    body.push('\n');
                }
                (cmd.trim().to_owned(), Some(body))
            }
            None => (trimmed.to_owned(), None),
        };
        let _ = writeln!(transcript, "> {command}");
        match shell.execute(&command, heredoc.as_deref()) {
            Ok(out) => {
                for l in out.lines() {
                    let _ = writeln!(transcript, "  {l}");
                }
            }
            Err(e) => {
                let _ = writeln!(transcript, "  error: {e}");
            }
        }
    }
    transcript
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = r#"
# load two tiny schemata
load er left <<EOF
entity A "Left entity." { x : text "The x attribute." }
EOF
load er right <<EOF
entity B "Right entity." { y : text "The y attribute." }
EOF
match left right
accept left right left/A/x right/B/y
bind left right left/A shipvar
code left right right/B/y := data($shipvar/x)
generate left right
show matrix left right
query ?cell iwb:is-user-defined true
show coverage
"#;

    #[test]
    fn full_script_runs_without_errors() {
        let transcript = run_script(SCRIPT);
        assert!(!transcript.contains("error:"), "{transcript}");
        assert!(transcript.contains("loaded left"));
        assert!(transcript.contains("cells updated"));
        assert!(transcript.contains("event(s) propagated"));
        assert!(transcript.contains("variable=shipvar"));
        assert!(transcript.contains("confidence=+1.00 user-defined=true"));
        assert!(transcript.contains("1 solution(s)"));
        assert!(transcript.contains("generate semantic correspondences"));
    }

    #[test]
    fn unknown_commands_report_but_do_not_abort() {
        let transcript = run_script("frobnicate\nshow coverage\n");
        assert!(transcript.contains("error: unknown command"));
        assert!(transcript.contains("task"), "later commands still run");
    }

    #[test]
    fn load_without_heredoc_is_an_error() {
        let mut shell = Shell::new();
        let err = shell.execute("load er x", None).unwrap_err();
        assert!(err.to_string().contains("EOF"));
    }

    #[test]
    fn show_schema_renders() {
        let transcript = run_script("load er s <<EOF\nentity E { f : text }\nEOF\nshow schema s\n");
        assert!(transcript.contains("[contains-entity] E"));
        assert!(transcript.contains("[contains-attribute] f"));
    }

    #[test]
    fn export_emits_turtle() {
        let transcript = run_script("load er s <<EOF\nentity E { f : text }\nEOF\nexport\n");
        assert!(transcript.contains("iwb:schema/s rdf:type iwb:Schema ."));
    }
}
