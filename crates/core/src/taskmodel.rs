//! The 13-task model of data integration (paper §3).
//!
//! "The task model is important because it allows us to make
//! comparisons: Among integration problems, we can ask which of the
//! tasks are unnecessary because of simplifying conditions in the
//! problem instance. Among tools, we can ask what each tool contributes
//! to each task."

use std::fmt;

/// The five phases of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// §3.1 — capture knowledge about source/target schemata.
    SchemaPreparation,
    /// §3.2 — establish high-level correspondences.
    SchemaMatching,
    /// §3.3 — establish logical transformation rules.
    SchemaMapping,
    /// §3.4 — reconcile instances.
    InstanceIntegration,
    /// §3.5 — deploy under operational constraints.
    SystemImplementation,
}

impl Phase {
    /// Human-readable phase name.
    pub fn label(self) -> &'static str {
        match self {
            Phase::SchemaPreparation => "schema preparation",
            Phase::SchemaMatching => "schema matching",
            Phase::SchemaMapping => "schema mapping",
            Phase::InstanceIntegration => "instance integration",
            Phase::SystemImplementation => "system implementation",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 13 fine-grained tasks of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Task {
    /// 1) Obtain the source schemata.
    ObtainSourceSchemata,
    /// 2) Obtain or develop the target schema.
    ObtainTargetSchema,
    /// 3) Generate semantic correspondences.
    GenerateCorrespondences,
    /// 4) Develop domain transformations.
    DomainTransformations,
    /// 5) Develop attribute transformations.
    AttributeTransformations,
    /// 6) Develop entity transformations.
    EntityTransformations,
    /// 7) Determine object identity.
    ObjectIdentity,
    /// 8) Create logical mappings.
    LogicalMappings,
    /// 9) Verify mappings against target schema.
    VerifyMappings,
    /// 10) Link instance elements.
    LinkInstances,
    /// 11) Clean the data.
    CleanData,
    /// 12) Implement a solution.
    ImplementSolution,
    /// 13) Deploy the application.
    DeployApplication,
}

impl Task {
    /// All 13 tasks, in paper order.
    pub fn all() -> &'static [Task] {
        &[
            Task::ObtainSourceSchemata,
            Task::ObtainTargetSchema,
            Task::GenerateCorrespondences,
            Task::DomainTransformations,
            Task::AttributeTransformations,
            Task::EntityTransformations,
            Task::ObjectIdentity,
            Task::LogicalMappings,
            Task::VerifyMappings,
            Task::LinkInstances,
            Task::CleanData,
            Task::ImplementSolution,
            Task::DeployApplication,
        ]
    }

    /// The paper's 1-based task number.
    pub fn number(self) -> u8 {
        Task::all()
            .iter()
            .position(|&t| t == self)
            .expect("all() is complete") as u8
            + 1
    }

    /// Which phase the task belongs to (§3's grouping).
    pub fn phase(self) -> Phase {
        match self {
            Task::ObtainSourceSchemata | Task::ObtainTargetSchema => Phase::SchemaPreparation,
            Task::GenerateCorrespondences => Phase::SchemaMatching,
            Task::DomainTransformations
            | Task::AttributeTransformations
            | Task::EntityTransformations
            | Task::ObjectIdentity
            | Task::LogicalMappings
            | Task::VerifyMappings => Phase::SchemaMapping,
            Task::LinkInstances | Task::CleanData => Phase::InstanceIntegration,
            Task::ImplementSolution | Task::DeployApplication => Phase::SystemImplementation,
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Task::ObtainSourceSchemata => "obtain source schemata",
            Task::ObtainTargetSchema => "obtain/develop target schema",
            Task::GenerateCorrespondences => "generate semantic correspondences",
            Task::DomainTransformations => "develop domain transformations",
            Task::AttributeTransformations => "develop attribute transformations",
            Task::EntityTransformations => "develop entity transformations",
            Task::ObjectIdentity => "determine object identity",
            Task::LogicalMappings => "create logical mappings",
            Task::VerifyMappings => "verify mappings against target schema",
            Task::LinkInstances => "link instance elements",
            Task::CleanData => "clean the data",
            Task::ImplementSolution => "implement a solution",
            Task::DeployApplication => "deploy the application",
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}) {}", self.number(), self.label())
    }
}

/// Render the tool-coverage matrix (experiment E4): one row per task,
/// one column per (tool name, supported task set), with a combined
/// column showing what the workbench as a whole covers.
pub fn coverage_table(tools: &[(&str, Vec<Task>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "{:<42}", "task");
    for (name, _) in tools {
        let _ = write!(out, " {name:^12}");
    }
    let _ = writeln!(out, " {:^12}", "combined");
    for &task in Task::all() {
        let _ = write!(out, "{:<42}", task.to_string());
        let mut combined = false;
        for (_, tasks) in tools {
            let has = tasks.contains(&task);
            combined |= has;
            let _ = write!(out, " {:^12}", if has { "✓" } else { "·" });
        }
        let _ = writeln!(out, " {:^12}", if combined { "✓" } else { "·" });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_tasks_five_phases() {
        assert_eq!(Task::all().len(), 13);
        let phases: std::collections::BTreeSet<Phase> =
            Task::all().iter().map(|t| t.phase()).collect();
        assert_eq!(phases.len(), 5);
    }

    #[test]
    fn numbering_matches_paper() {
        assert_eq!(Task::ObtainSourceSchemata.number(), 1);
        assert_eq!(Task::GenerateCorrespondences.number(), 3);
        assert_eq!(Task::VerifyMappings.number(), 9);
        assert_eq!(Task::DeployApplication.number(), 13);
    }

    #[test]
    fn phase_grouping_matches_paper() {
        assert_eq!(Task::ObtainTargetSchema.phase(), Phase::SchemaPreparation);
        assert_eq!(Task::GenerateCorrespondences.phase(), Phase::SchemaMatching);
        assert_eq!(Task::ObjectIdentity.phase(), Phase::SchemaMapping);
        assert_eq!(Task::CleanData.phase(), Phase::InstanceIntegration);
        assert_eq!(Task::ImplementSolution.phase(), Phase::SystemImplementation);
    }

    #[test]
    fn coverage_table_shows_union() {
        // §5.3: Harmony supports loading + matching; AquaLogic supports
        // loading, mapping and code generation.
        let table = coverage_table(&[
            (
                "harmony",
                vec![Task::ObtainSourceSchemata, Task::GenerateCorrespondences],
            ),
            (
                "mapper",
                vec![
                    Task::ObtainSourceSchemata,
                    Task::AttributeTransformations,
                    Task::LogicalMappings,
                ],
            ),
        ]);
        let corr_line = table
            .lines()
            .find(|l| l.contains("semantic correspondences"))
            .unwrap();
        assert_eq!(corr_line.matches('✓').count(), 2); // harmony + combined
        let logical_line = table
            .lines()
            .find(|l| l.contains("logical mappings"))
            .unwrap();
        assert_eq!(logical_line.matches('✓').count(), 2); // mapper + combined
        let deploy_line = table.lines().find(|l| l.contains("deploy")).unwrap();
        assert_eq!(deploy_line.matches('✓').count(), 0);
    }
}
