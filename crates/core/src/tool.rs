//! The tool interface (§5.2.1).
//!
//! "All that is required is that a tool implements the tool interface.
//! The tool interface defines two methods. First, a tool must provide an
//! invoke method… Second, when the workbench starts, each tool has the
//! option of implementing an initialize method. Generally, this is done
//! when a tool needs to register for events."

use crate::blackboard::Blackboard;
use crate::event::{EventKind, WorkbenchEvent};
use crate::taskmodel::Task;
use iwb_pool::{Budget, Interrupt};
use std::collections::BTreeMap;
use std::fmt;

/// The four tool families of §5.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolKind {
    /// Parses schemata into the IB representation.
    Loader,
    /// Updates mapping-matrix cells.
    Matcher,
    /// Updates per-column transformation code.
    Mapper,
    /// Assembles column code into a coherent whole.
    CodeGenerator,
}

impl fmt::Display for ToolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ToolKind::Loader => "loader",
            ToolKind::Matcher => "matcher",
            ToolKind::Mapper => "mapper",
            ToolKind::CodeGenerator => "code-generator",
        })
    }
}

/// String-keyed invocation arguments (what the GUI dialog would gather),
/// plus the typed interruption [`Budget`] the host attached to the
/// invocation (unlimited by default).
#[derive(Debug, Clone, Default)]
pub struct ToolArgs {
    args: BTreeMap<String, String>,
    budget: Budget,
}

impl ToolArgs {
    /// Empty argument set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style argument.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.insert(key.into(), value.into());
        self
    }

    /// Builder-style interruption budget (deadline + cancel token) for
    /// this invocation. Long-running tools check it cooperatively and
    /// abort with [`ToolError::Cancelled`] / [`ToolError::DeadlineExceeded`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The interruption budget attached to this invocation.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Fetch an argument.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.args.get(key).map(String::as_str)
    }

    /// Fetch a required argument or produce a uniform error.
    pub fn require(&self, key: &str) -> Result<&str, ToolError> {
        self.get(key)
            .ok_or_else(|| ToolError::MissingArgument(key.to_owned()))
    }
}

/// A tool invocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolError {
    /// A required argument was not supplied.
    MissingArgument(String),
    /// A referenced schema is not on the blackboard.
    UnknownSchema(String),
    /// The invocation's [`Budget`] was cancelled mid-run. The tool
    /// aborted cooperatively before writing any result, so blackboard
    /// state is exactly as before the invocation.
    Cancelled,
    /// The invocation's [`Budget`] deadline passed mid-run; like
    /// [`ToolError::Cancelled`], no partial result was written.
    DeadlineExceeded,
    /// Anything else, with a message.
    Failed(String),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::MissingArgument(a) => write!(f, "missing argument {a:?}"),
            ToolError::UnknownSchema(s) => write!(f, "schema {s:?} not on the blackboard"),
            ToolError::Cancelled => f.write_str("cancelled"),
            ToolError::DeadlineExceeded => f.write_str("deadline exceeded"),
            ToolError::Failed(m) => f.write_str(m),
        }
    }
}

impl From<Interrupt> for ToolError {
    fn from(why: Interrupt) -> ToolError {
        match why {
            Interrupt::Cancelled => ToolError::Cancelled,
            Interrupt::DeadlineExceeded => ToolError::DeadlineExceeded,
        }
    }
}

impl std::error::Error for ToolError {}

/// A workbench tool.
///
/// Events a tool wants to emit are pushed into the `events` sink; the
/// manager wraps every invocation in a transaction and propagates the
/// events only after the tool returns (§5.2.1: "no events are generated
/// until the mapping matrix has been updated").
///
/// # Panic safety
///
/// Report failures through [`ToolError`], never by panicking: a panic
/// unwinds out of the manager's transaction and can leave the
/// blackboard half-updated. Hosts that embed third-party tools (the
/// `iwb-server` daemon) defend against this by catching unwinds at the
/// invocation boundary and quarantining sessions whose tools panic
/// repeatedly — but a quarantined session has lost in-memory state
/// fidelity, so `catch_unwind` is containment, not absolution.
pub trait WorkbenchTool {
    /// Unique tool name.
    fn name(&self) -> &'static str;

    /// The tool family.
    fn kind(&self) -> ToolKind;

    /// Which of the 13 tasks the tool supports (for the E4 coverage
    /// analysis).
    fn capabilities(&self) -> Vec<Task>;

    /// Event kinds the tool registers for during initialize (§5.2.1).
    fn subscriptions(&self) -> Vec<EventKind> {
        Vec::new()
    }

    /// Optional startup hook.
    fn initialize(&mut self) {}

    /// Perform the tool's action against the blackboard.
    fn invoke(
        &mut self,
        blackboard: &mut Blackboard,
        args: &ToolArgs,
        events: &mut Vec<WorkbenchEvent>,
    ) -> Result<String, ToolError>;

    /// React to an event another tool produced ("a tool listens for
    /// events immediately upstream or downstream in the task model").
    fn on_event(
        &mut self,
        _blackboard: &mut Blackboard,
        _event: &WorkbenchEvent,
        _events: &mut Vec<WorkbenchEvent>,
    ) {
    }

    /// Downcast hook for hosts that capture and prime tool state around
    /// persistence (the `iwb-server` snapshot store). Tools with
    /// persistable state override this to return `Some(self)`; the
    /// default opts out, so persistence silently skips unknown tools.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_builder_and_require() {
        let args = ToolArgs::new()
            .with("format", "xsd")
            .with("schema-id", "po");
        assert_eq!(args.get("format"), Some("xsd"));
        assert_eq!(args.require("schema-id").unwrap(), "po");
        let err = args.require("missing").unwrap_err();
        assert!(matches!(err, ToolError::MissingArgument(_)));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn tool_kinds_display() {
        assert_eq!(ToolKind::CodeGenerator.to_string(), "code-generator");
        assert_eq!(ToolKind::Loader.to_string(), "loader");
    }

    #[test]
    fn args_carry_an_interruption_budget() {
        use iwb_pool::CancelToken;
        let args = ToolArgs::new();
        assert_eq!(args.budget().check(), Ok(()), "default budget is unlimited");
        let token = CancelToken::new();
        let args = args.with_budget(Budget::new(token.clone(), iwb_pool::Deadline::none()));
        assert_eq!(args.budget().check(), Ok(()));
        token.cancel();
        assert_eq!(args.budget().check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn interrupts_convert_to_structured_tool_errors() {
        assert_eq!(ToolError::from(Interrupt::Cancelled), ToolError::Cancelled);
        assert_eq!(
            ToolError::from(Interrupt::DeadlineExceeded),
            ToolError::DeadlineExceeded
        );
        assert_eq!(ToolError::Cancelled.to_string(), "cancelled");
        assert_eq!(ToolError::DeadlineExceeded.to_string(), "deadline exceeded");
    }
}
