//! Registry-scale candidate retrieval as a workbench tool.
//!
//! The enterprise question behind the paper's Table 1 (and the MITRE
//! follow-up) is not "match this pair" but "which of these hundreds of
//! registered models matches mine?". This tool holds an
//! [`iwb_blocking::RegistryIndex`] over a model repository and answers
//! that question in two stages: cheap inverted-index retrieval of the
//! top-k candidate models, then (optionally) the full Harmony engine
//! reranking only the survivors — all under the invocation's budget.

use crate::blackboard::Blackboard;
use crate::event::{EventKind, WorkbenchEvent};
use crate::taskmodel::Task;
use crate::tool::{ToolArgs, ToolError, ToolKind, WorkbenchTool};
use iwb_blocking::{block_then_rerank, BlockingConfig, IndexParts, RegistryIndex};
use iwb_harmony::HarmonyEngine;
use iwb_model::SchemaGraph;
use iwb_registry::{generate_registry, GeneratorConfig};
use iwb_store::blocking_artifact_key;

/// Default candidate count for `find` when `k` is not given.
pub const DEFAULT_K: usize = 10;

/// Where the indexed models came from — decides staleness on
/// blackboard events and persistability.
enum IndexSource {
    /// Generated from `iwb-registry` with this seed and scale;
    /// independent of blackboard contents, so schema events never
    /// invalidate it — and the models regenerate deterministically, so
    /// only the index itself needs persisting.
    Generated { seed: u64, scale: f64 },
    /// Snapshot of the blackboard's schemas at index time; any
    /// schema-graph event makes it stale (and it is never persisted —
    /// journal replay rebuilds it from the replayed schemas).
    Blackboard,
}

/// Candidate blocking as a tool: `index` builds the inverted index,
/// `find` retrieves (and optionally reranks) candidates for a query
/// schema on the blackboard.
#[derive(Default)]
pub struct BlockingTool {
    config: BlockingConfig,
    /// The indexed repository and its index, once built.
    indexed: Option<(Vec<SchemaGraph>, RegistryIndex, IndexSource)>,
    /// A persisted index primed from a snapshot, keyed by its
    /// [`blocking_artifact_key`] (seed + scale + config, threads
    /// excluded). A replayed `index-registry` whose inputs produce the
    /// same key restores the index from these parts instead of
    /// rebuilding the postings.
    primed: Option<(u64, IndexParts)>,
    /// How many index builds were restored from [`Self::primed`].
    primed_hits: usize,
    /// Engine for the rerank stage — deliberately separate from the
    /// `harmony` tool's engine so reranking never perturbs that tool's
    /// learned weights or cache epoch.
    engine: HarmonyEngine,
}

impl BlockingTool {
    /// A tool with no index built yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The index, if one has been built (for tests and experiments).
    pub fn index(&self) -> Option<&RegistryIndex> {
        self.indexed.as_ref().map(|(_, index, _)| index)
    }

    /// The current index as a persistable artifact, if it was built
    /// from a seeded registry: `(seed, scale, parts)`. Blackboard
    /// indexes return `None` — replay rebuilds them from the replayed
    /// schemas, so persisting them would be redundant *and* fragile.
    pub fn export_generated(&self) -> Option<(u64, f64, IndexParts)> {
        match &self.indexed {
            Some((_, index, IndexSource::Generated { seed, scale })) => {
                Some((*seed, *scale, index.to_parts()))
            }
            _ => None,
        }
    }

    /// Prime a persisted generated-registry index. It is not installed
    /// immediately: the replayed `index-registry seed … scale …`
    /// command recognises it by content key and restores it in place of
    /// the postings build (the models regenerate from the seed either
    /// way). A key that never matches — config drift, different seed —
    /// leaves replay on the full build path, still correct.
    pub fn prime_generated(&mut self, seed: u64, scale: f64, parts: IndexParts) {
        let key = blocking_artifact_key(seed, scale, &parts.config);
        self.primed = Some((key, parts));
    }

    /// How many index builds were restored from a primed artifact
    /// (observability for warm-restart tests).
    pub fn primed_hits(&self) -> usize {
        self.primed_hits
    }

    fn parse<T: std::str::FromStr>(args: &ToolArgs, key: &str) -> Result<Option<T>, ToolError> {
        match args.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| ToolError::Failed(format!("{key} must be a number, got {raw:?}"))),
        }
    }

    /// `action=index`: build the index over a generated registry
    /// (`seed` [+ `scale`]) or over every schema on the blackboard.
    fn index_registry(&mut self, bb: &Blackboard, args: &ToolArgs) -> Result<String, ToolError> {
        if let Some(threads) = Self::parse::<usize>(args, "threads")? {
            self.config.threads = threads.max(1);
        }
        let budget = args.budget();
        let (models, source, what, primed) = match Self::parse::<u64>(args, "seed")? {
            Some(seed) => {
                let scale = Self::parse::<f64>(args, "scale")?.unwrap_or(1.0);
                if !scale.is_finite() || scale <= 0.0 {
                    return Err(ToolError::Failed(format!(
                        "scale must be positive, got {scale}"
                    )));
                }
                budget.check().map_err(ToolError::from)?;
                let registry = generate_registry(GeneratorConfig::scaled(seed, scale));
                let what = format!(
                    "generated registry (seed {seed}, scale {scale}): {} models, {} elements, {} attributes",
                    registry.models.len(),
                    registry.element_count(),
                    registry.attribute_count(),
                );
                // A primed artifact with the same content key replaces
                // the postings build (threads are excluded from the
                // key: they affect build scheduling, not the index).
                let key = blocking_artifact_key(seed, scale, &self.config);
                let primed = self
                    .primed
                    .as_ref()
                    .filter(|(k, _)| *k == key)
                    .map(|(_, parts)| parts.clone());
                (
                    registry.models,
                    IndexSource::Generated { seed, scale },
                    what,
                    primed,
                )
            }
            None => {
                let mut ids = bb.schema_ids();
                ids.sort();
                let models: Vec<SchemaGraph> = ids
                    .iter()
                    .map(|id| bb.schema(id).expect("listed schema exists").clone())
                    .collect();
                if models.is_empty() {
                    return Err(ToolError::Failed(
                        "nothing to index: no schemas on the blackboard and no seed given".into(),
                    ));
                }
                let what = format!("blackboard snapshot: {} schema(s)", models.len());
                (models, IndexSource::Blackboard, what, None)
            }
        };
        let index = match primed {
            Some(mut parts) => {
                self.primed_hits += 1;
                parts.config.threads = self.config.threads;
                RegistryIndex::from_parts(parts)
            }
            None => RegistryIndex::build_budgeted(&models, self.config.clone(), budget)
                .map_err(ToolError::from)?,
        };
        let summary = format!(
            "indexed {what}; {} models, {} distinct terms",
            index.len(),
            index.vocabulary()
        );
        self.indexed = Some((models, index, source));
        Ok(summary)
    }

    /// `action=find`: top-k candidates for a blackboard schema, with
    /// optional full-engine reranking.
    fn find_candidates(&mut self, bb: &Blackboard, args: &ToolArgs) -> Result<String, ToolError> {
        let (models, index, _) = self
            .indexed
            .as_ref()
            .ok_or_else(|| ToolError::Failed("no index built — run index-registry first".into()))?;
        let query_id = args.require("query")?;
        let query = bb
            .schema(&iwb_model::SchemaId::new(query_id))
            .ok_or_else(|| ToolError::UnknownSchema(query_id.to_owned()))?;
        let k = Self::parse::<usize>(args, "k")?.unwrap_or(DEFAULT_K).max(1);
        let rerank = args.get("rerank") == Some("on");
        let budget = args.budget();

        let mut out;
        if rerank {
            let result = block_then_rerank(&mut self.engine, index, models, query, k, budget)
                .map_err(ToolError::from)?;
            out = format!(
                "{} candidate(s) for {query_id} (top-{k}, reranked by full engine):\n",
                result.ranked.len()
            );
            for (rank, r) in result.ranked.iter().enumerate() {
                out.push_str(&format!(
                    "  {:>2}. {}  engine {:.3}  blocking {:.3}\n",
                    rank + 1,
                    r.id,
                    r.engine_score,
                    r.blocking_score,
                ));
            }
        } else {
            let candidates = index
                .query_budgeted(query, k, budget)
                .map_err(ToolError::from)?;
            out = format!(
                "{} candidate(s) for {query_id} (top-{k}, blocking only):\n",
                candidates.len()
            );
            for (rank, c) in candidates.iter().enumerate() {
                out.push_str(&format!(
                    "  {:>2}. {}  blocking {:.3}\n",
                    rank + 1,
                    c.id,
                    c.score,
                ));
            }
        }
        Ok(out.trim_end().to_owned())
    }
}

impl WorkbenchTool for BlockingTool {
    fn name(&self) -> &'static str {
        "blocking"
    }

    fn kind(&self) -> ToolKind {
        ToolKind::Matcher
    }

    fn capabilities(&self) -> Vec<Task> {
        // Candidate retrieval narrows which source schemata are worth
        // matching — the recommend half of recommend-then-rerank.
        vec![Task::ObtainSourceSchemata, Task::GenerateCorrespondences]
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::SchemaGraph]
    }

    fn on_event(
        &mut self,
        _blackboard: &mut Blackboard,
        event: &WorkbenchEvent,
        _events: &mut Vec<WorkbenchEvent>,
    ) {
        if let WorkbenchEvent::SchemaGraph { .. } = event {
            // A blackboard-derived index no longer reflects the board;
            // a generated registry is immutable and stays valid.
            if matches!(self.indexed, Some((_, _, IndexSource::Blackboard))) {
                self.indexed = None;
            }
            self.engine.invalidate_features();
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// Arguments: `action` = `index` | `find`. For `index`: optional
    /// `seed` and `scale` (generate a registry; omit `seed` to index
    /// the blackboard's schemas) and `threads` (index build workers).
    /// For `find`: `query` (a blackboard schema id), optional `k`
    /// (default [`DEFAULT_K`]) and `rerank` (`on` runs the full Harmony
    /// engine on the survivors). Both honour [`ToolArgs::budget`].
    fn invoke(
        &mut self,
        blackboard: &mut Blackboard,
        args: &ToolArgs,
        _events: &mut Vec<WorkbenchEvent>,
    ) -> Result<String, ToolError> {
        match args.get("action").unwrap_or("index") {
            "index" => self.index_registry(blackboard, args),
            "find" => self.find_candidates(blackboard, args),
            other => Err(ToolError::Failed(format!("unknown action {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};
    use iwb_pool::{Budget, CancelToken, Deadline};

    /// One-entity schema: `(schema id, entity name, attribute names)`.
    fn board_with(defs: &[(&str, &str, &[&str])]) -> Blackboard {
        let mut bb = Blackboard::new();
        for (id, entity, attrs) in defs {
            let mut b = SchemaBuilder::new(*id, Metamodel::EntityRelationship).open(*entity);
            for a in *attrs {
                b = b.attr(*a, DataType::Text);
            }
            bb.put_schema(b.close().build());
        }
        bb
    }

    #[test]
    fn index_generated_registry_and_find_candidates() {
        let mut bb = board_with(&[("query", "AIRCRAFT", &["acft_type_cd", "tail_nbr"])]);
        let mut tool = BlockingTool::new();
        let out = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "index")
                    .with("seed", "7")
                    .with("scale", "0.02"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(out.contains("generated registry (seed 7"), "{out}");
        assert!(tool.index().is_some());
        let found = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "find")
                    .with("query", "query")
                    .with("k", "3"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(found.contains("top-3, blocking only"), "{found}");
    }

    #[test]
    fn index_blackboard_when_no_seed_given() {
        let mut bb = board_with(&[
            ("a", "VENDOR", &["vendor_id"]),
            ("b", "EMPLOYEE", &["emp_nbr"]),
        ]);
        let mut tool = BlockingTool::new();
        let out = tool
            .invoke(&mut bb, &ToolArgs::new(), &mut Vec::new())
            .unwrap();
        assert!(out.contains("blackboard snapshot: 2 schema(s)"), "{out}");
        // The supplier query should hit the vendor schema first
        // (synonym-ring canonicalisation).
        let mut bb2 = board_with(&[
            ("a", "VENDOR", &["vendor_id"]),
            ("b", "EMPLOYEE", &["emp_nbr"]),
            ("q", "SUPPLIER", &["supplier_id"]),
        ]);
        let mut tool2 = BlockingTool::new();
        tool2
            .invoke(&mut bb2, &ToolArgs::new(), &mut Vec::new())
            .unwrap();
        let found = tool2
            .invoke(
                &mut bb2,
                &ToolArgs::new()
                    .with("action", "find")
                    .with("query", "q")
                    .with("k", "1"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(found.contains("1. a"), "{found}");
    }

    #[test]
    fn find_with_rerank_reports_engine_scores() {
        let mut bb = board_with(&[
            ("a", "VENDOR", &["vendor_id"]),
            ("q", "SUPPLIER", &["supplier_id"]),
        ]);
        let mut tool = BlockingTool::new();
        tool.invoke(&mut bb, &ToolArgs::new(), &mut Vec::new())
            .unwrap();
        let found = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "find")
                    .with("query", "q")
                    .with("rerank", "on"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(found.contains("reranked by full engine"), "{found}");
        assert!(found.contains("engine "), "{found}");
    }

    #[test]
    fn find_without_index_is_a_clean_error() {
        let mut bb = board_with(&[("q", "E", &["f"])]);
        let mut tool = BlockingTool::new();
        let err = tool
            .invoke(
                &mut bb,
                &ToolArgs::new().with("action", "find").with("query", "q"),
                &mut Vec::new(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("no index built"), "{err}");
    }

    #[test]
    fn empty_blackboard_without_seed_is_a_clean_error() {
        let mut bb = Blackboard::new();
        let mut tool = BlockingTool::new();
        let err = tool
            .invoke(&mut bb, &ToolArgs::new(), &mut Vec::new())
            .unwrap_err();
        assert!(err.to_string().contains("nothing to index"), "{err}");
    }

    #[test]
    fn cancelled_budget_aborts_indexing() {
        let mut bb = Blackboard::new();
        let mut tool = BlockingTool::new();
        let token = CancelToken::new();
        token.cancel();
        let err = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("seed", "7")
                    .with("scale", "0.02")
                    .with_budget(Budget::new(token, Deadline::none())),
                &mut Vec::new(),
            )
            .unwrap_err();
        assert_eq!(err, ToolError::Cancelled);
        assert!(tool.index().is_none());
    }

    #[test]
    fn schema_event_drops_blackboard_index_but_keeps_generated() {
        let mut bb = board_with(&[("a", "VENDOR", &["vendor_id"])]);
        let mut tool = BlockingTool::new();
        tool.invoke(&mut bb, &ToolArgs::new(), &mut Vec::new())
            .unwrap();
        assert!(tool.index().is_some());
        tool.on_event(
            &mut bb,
            &WorkbenchEvent::SchemaGraph {
                schema: iwb_model::SchemaId::new("a"),
            },
            &mut Vec::new(),
        );
        assert!(tool.index().is_none(), "blackboard index must go stale");

        tool.invoke(
            &mut bb,
            &ToolArgs::new().with("seed", "7").with("scale", "0.01"),
            &mut Vec::new(),
        )
        .unwrap();
        tool.on_event(
            &mut bb,
            &WorkbenchEvent::SchemaGraph {
                schema: iwb_model::SchemaId::new("a"),
            },
            &mut Vec::new(),
        );
        assert!(
            tool.index().is_some(),
            "generated registry is immutable and survives schema events"
        );
    }
}
