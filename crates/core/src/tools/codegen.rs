//! The code-generator tool.
//!
//! §5.2.1: "a code-generator assembles the code associated with each
//! column into a coherent whole … based on the structure of the target
//! schema graph (e.g., Clio)." It listens for mapping-vector events to
//! keep the assembled mapping in sync, and emits a mapping-matrix event
//! when the final code changes.

use crate::blackboard::Blackboard;
use crate::event::{EventKind, WorkbenchEvent};
use crate::taskmodel::Task;
use crate::tool::{ToolArgs, ToolError, ToolKind, WorkbenchTool};
use iwb_mapper::xquery::{generate_xquery, MatrixCodegen};
use iwb_model::SchemaId;

/// The XQuery assembler.
#[derive(Debug, Default)]
pub struct CodegenTool {
    /// Automatically regenerate on mapping-vector events.
    pub auto_regenerate: bool,
}

impl CodegenTool {
    /// A tool with auto-regeneration enabled.
    pub fn new() -> Self {
        CodegenTool {
            auto_regenerate: true,
        }
    }

    /// Assemble the matrix's code. Returns the generated program, or
    /// `None` when the matrix does not exist.
    fn assemble(bb: &mut Blackboard, source: &SchemaId, target: &SchemaId) -> Option<String> {
        let (sg, tg) = (bb.schema(source)?.clone(), bb.schema(target)?.clone());
        let matrix = bb.matrix(source, target)?;
        // Target element: the first container under the target root
        // whose columns carry code, else the first top-level element.
        let root_name = tg
            .children(tg.root())
            .first()
            .map(|&(_, c)| tg.element(c).name.clone())
            .unwrap_or_else(|| tg.element(tg.root()).name.clone());
        let mut input = MatrixCodegen::new(root_name);
        for &row in matrix.rows() {
            if let Some(meta) = matrix.row_meta(row) {
                if let Some(var) = &meta.variable {
                    // Bind relative to the source document variable.
                    let path = sg.name_path(row);
                    let rel = path.split('/').skip(1).collect::<Vec<_>>().join("/");
                    input = input.with_row(var.clone(), format!("$doc/{rel}"));
                }
            }
        }
        for &col in matrix.cols() {
            // Only leaf columns (attributes) become constructors.
            if tg.element(col).kind != iwb_model::ElementKind::Attribute {
                continue;
            }
            let name = tg.element(col).name.clone();
            match matrix.col_meta(col).and_then(|m| m.code.clone()) {
                Some(code) => input = input.with_column(name, code),
                None => input = input.with_empty_column(name),
            }
        }
        let program = generate_xquery(&input);
        let matrix = bb.matrix_mut(source, target)?;
        matrix.code = Some(program.clone());
        bb.provenance.record(
            "xquery-codegen",
            source.clone(),
            target.clone(),
            crate::provenance::ProvenanceKind::MatrixCodeSet,
        );
        Some(program)
    }
}

impl WorkbenchTool for CodegenTool {
    fn name(&self) -> &'static str {
        "xquery-codegen"
    }

    fn kind(&self) -> ToolKind {
        ToolKind::CodeGenerator
    }

    fn capabilities(&self) -> Vec<Task> {
        vec![Task::LogicalMappings, Task::VerifyMappings]
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        // "A code generation tool similarly listens for these events to
        // synchronize the assembled mapping."
        vec![EventKind::MappingVector]
    }

    /// Arguments: `action` = `generate` (default) | `set-code` (the user
    /// manually edits the final mapping; `code` required); `source`,
    /// `target`.
    fn invoke(
        &mut self,
        blackboard: &mut Blackboard,
        args: &ToolArgs,
        events: &mut Vec<WorkbenchEvent>,
    ) -> Result<String, ToolError> {
        let source = SchemaId::new(args.require("source")?);
        let target = SchemaId::new(args.require("target")?);
        match args.get("action").unwrap_or("generate") {
            "generate" => {
                let program = Self::assemble(blackboard, &source, &target)
                    .ok_or_else(|| ToolError::Failed("matrix or schemas missing".into()))?;
                events.push(WorkbenchEvent::MappingMatrix { source, target });
                Ok(program)
            }
            "set-code" => {
                let code = args.require("code")?.to_owned();
                let matrix = blackboard
                    .matrix_mut(&source, &target)
                    .ok_or_else(|| ToolError::Failed("matrix missing".into()))?;
                matrix.code = Some(code);
                blackboard.provenance.record(
                    self.name(),
                    source.clone(),
                    target.clone(),
                    crate::provenance::ProvenanceKind::MatrixCodeSet,
                );
                // "The code generation tool, in turn, generates a
                // mapping-matrix event when the user manually modifies
                // the final mapping."
                events.push(WorkbenchEvent::MappingMatrix { source, target });
                Ok("matrix code set".into())
            }
            other => Err(ToolError::Failed(format!("unknown action {other:?}"))),
        }
    }

    fn on_event(
        &mut self,
        blackboard: &mut Blackboard,
        event: &WorkbenchEvent,
        events: &mut Vec<WorkbenchEvent>,
    ) {
        if !self.auto_regenerate {
            return;
        }
        if let WorkbenchEvent::MappingVector { source, target, .. } = event {
            if Self::assemble(blackboard, source, target).is_some() {
                events.push(WorkbenchEvent::MappingMatrix {
                    source: source.clone(),
                    target: target.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn bb() -> (Blackboard, SchemaId, SchemaId) {
        let s = SchemaBuilder::new("po", Metamodel::Xml)
            .open("shipTo")
            .attr("subtotal", DataType::Decimal)
            .close()
            .build();
        let t = SchemaBuilder::new("inv", Metamodel::Xml)
            .open("shippingInfo")
            .attr("name", DataType::Text)
            .attr("total", DataType::Decimal)
            .close()
            .build();
        let mut bb = Blackboard::new();
        bb.put_schema(s);
        bb.put_schema(t);
        let (po, inv) = (SchemaId::new("po"), SchemaId::new("inv"));
        bb.ensure_matrix(&po, &inv);
        (bb, po, inv)
    }

    #[test]
    fn generate_assembles_rows_and_columns() {
        let (mut bb, po, inv) = bb();
        let s = bb.schema(&po).unwrap().clone();
        let t = bb.schema(&inv).unwrap().clone();
        let ship = s.find_by_name("shipTo").unwrap();
        let total = t.find_by_name("total").unwrap();
        bb.matrix_mut(&po, &inv)
            .unwrap()
            .row_meta_mut(ship)
            .unwrap()
            .variable = Some("shipto".into());
        bb.set_column_code("t", &po, &inv, total, "data($shipto/subtotal) * 1.05");
        let mut tool = CodegenTool::new();
        let mut events = Vec::new();
        let program = tool
            .invoke(
                &mut bb,
                &ToolArgs::new().with("source", "po").with("target", "inv"),
                &mut events,
            )
            .unwrap();
        assert!(program.contains("let $shipto := $doc/shipTo"));
        assert!(program.contains("<total>{ data($shipto/subtotal) * 1.05 }</total>"));
        assert!(program.contains("<name/>"), "column without code is empty");
        assert_eq!(events.len(), 1);
        assert!(bb.matrix(&po, &inv).unwrap().code.is_some());
    }

    #[test]
    fn regenerates_on_mapping_vector_event() {
        let (mut bb, po, inv) = bb();
        let t = bb.schema(&inv).unwrap().clone();
        let total = t.find_by_name("total").unwrap();
        bb.set_column_code("t", &po, &inv, total, "1 + 1");
        let mut tool = CodegenTool::new();
        let mut cascade = Vec::new();
        tool.on_event(
            &mut bb,
            &WorkbenchEvent::MappingVector {
                source: po.clone(),
                target: inv.clone(),
                side: crate::event::VectorSide::Column,
                element: total,
            },
            &mut cascade,
        );
        assert_eq!(cascade.len(), 1);
        assert!(bb
            .matrix(&po, &inv)
            .unwrap()
            .code
            .as_deref()
            .unwrap()
            .contains("1 + 1"));
    }

    #[test]
    fn manual_final_code_emits_matrix_event() {
        let (mut bb, _po, _inv) = bb();
        let mut tool = CodegenTool::new();
        let mut events = Vec::new();
        tool.invoke(
            &mut bb,
            &ToolArgs::new()
                .with("action", "set-code")
                .with("source", "po")
                .with("target", "inv")
                .with("code", "hand-edited"),
            &mut events,
        )
        .unwrap();
        assert!(matches!(events[0], WorkbenchEvent::MappingMatrix { .. }));
    }
}
