//! Harmony wrapped as a workbench tool.
//!
//! Supports both modes of §5.2.1: "Schema matching can be performed
//! manually, as is the case for most commercial tools, or
//! semi-automatically. (Harmony supports both approaches.) A match tool
//! updates the cells of the mapping matrix."

use crate::blackboard::Blackboard;
use crate::event::{EventKind, WorkbenchEvent};
use crate::taskmodel::Task;
use crate::tool::{ToolArgs, ToolError, ToolKind, WorkbenchTool};
use iwb_harmony::{Budget, Confidence, Feedback, HarmonyEngine, MatchResult};
use iwb_model::{ElementPath, SchemaId};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// The Harmony matcher as a tool. The engine persists across
/// invocations so learning (§4.3) carries forward.
pub struct HarmonyTool {
    engine: HarmonyEngine,
    /// Previous engine result per pair, for merger re-weighting.
    last_result: HashMap<(SchemaId, SchemaId), MatchResult>,
    /// Decisions already fed back, so each is learned once.
    learned: HashSet<(SchemaId, SchemaId, String, String)>,
    /// Every completed run this session, addressed by its content key
    /// (schema fingerprints + locked cells + corpus epoch + scope) —
    /// the persistable match artifacts a host snapshots. Recorded, but
    /// never consulted: a live session always runs the engine.
    runs: HashMap<u64, (SchemaId, SchemaId, MatchResult)>,
    /// Results primed from a persisted snapshot. A `match` whose inputs
    /// hash to a primed key is served the stored result instead of
    /// re-running the engine — this is how a snapshot-primed session
    /// replays its journal warm. Content addressing makes the map
    /// self-invalidating: any change to a schema, a decision, or
    /// learned weights produces a different key, so a stale entry is
    /// simply never hit.
    primed: HashMap<u64, MatchResult>,
    /// How many `match` invocations were served from [`Self::primed`].
    primed_hits: usize,
    /// Only cells at/above this magnitude produce mapping-cell events
    /// (the full matrix is still written to the IB).
    pub event_threshold: f64,
}

impl Default for HarmonyTool {
    fn default() -> Self {
        HarmonyTool {
            engine: HarmonyEngine::default(),
            last_result: HashMap::new(),
            learned: HashSet::new(),
            runs: HashMap::new(),
            primed: HashMap::new(),
            primed_hits: 0,
            event_threshold: 0.5,
        }
    }
}

impl HarmonyTool {
    /// A tool with the default engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the engine (e.g. for weight inspection in experiments).
    pub fn engine(&self) -> &HarmonyEngine {
        &self.engine
    }

    /// Mutable engine access (e.g. to install a thesaurus or tune the
    /// match configuration programmatically).
    pub fn engine_mut(&mut self) -> &mut HarmonyEngine {
        &mut self.engine
    }

    /// Every run recorded this session (and any primed from a
    /// snapshot), as `(source, target, content key, result)` sorted by
    /// key — the persistable match artifacts.
    pub fn export_runs(&self) -> Vec<(SchemaId, SchemaId, u64, MatchResult)> {
        let mut runs: Vec<_> = self
            .runs
            .iter()
            .map(|(&key, (src, tgt, result))| (src.clone(), tgt.clone(), key, result.clone()))
            .collect();
        runs.sort_by_key(|(_, _, key, _)| *key);
        runs
    }

    /// Prime a persisted run: a later `match` whose inputs produce
    /// `key` is served this result without re-running the engine. The
    /// key must have been computed by [`iwb_store::match_artifact_key`]
    /// over the exact inputs that produced `result`; a stale key is
    /// harmless (it never matches again).
    pub fn prime_run(&mut self, key: u64, result: MatchResult) {
        self.primed.insert(key, result);
    }

    /// How many `match` invocations were answered from a stored run
    /// instead of the engine (observability for warm-restart tests).
    pub fn primed_hits(&self) -> usize {
        self.primed_hits
    }

    /// The `configure` action: adjust `threads` / `cache` / `timeout`
    /// and report the resulting [`iwb_harmony::MatchConfig`] plus cache
    /// counters.
    fn configure(&mut self, args: &ToolArgs) -> Result<String, ToolError> {
        let mut config = self.engine.match_config();
        if let Some(t) = args.get("threads") {
            config.threads = t
                .parse()
                .map_err(|_| ToolError::Failed(format!("threads must be a number, got {t:?}")))?;
        }
        if let Some(c) = args.get("cache") {
            config.cache = match c {
                "on" => true,
                "off" => false,
                other => {
                    return Err(ToolError::Failed(format!(
                        "cache must be on or off, got {other:?}"
                    )))
                }
            };
        }
        if let Some(ms) = args.get("timeout") {
            let ms: u64 = ms.parse().map_err(|_| {
                ToolError::Failed(format!("timeout must be milliseconds, got {ms:?}"))
            })?;
            // `timeout 0` clears the per-run deadline.
            config.timeout_ms = (ms > 0).then_some(ms);
        }
        self.engine.set_match_config(config);
        let stats = self.engine.cache_stats();
        Ok(format!(
            "match-config: threads={} (effective {}), cache={}, timeout={}; \
             context cache {} hit(s) / {} miss(es), text cache {} hit(s) / {} miss(es)",
            config.threads,
            self.engine.effective_threads(),
            if config.cache { "on" } else { "off" },
            match config.timeout_ms {
                Some(ms) => format!("{ms}ms"),
                None => "none".to_owned(),
            },
            stats.context_hits,
            stats.context_misses,
            stats.text_hits,
            stats.text_misses,
        ))
    }

    fn resolve(
        bb: &Blackboard,
        schema: &SchemaId,
        path: &str,
    ) -> Result<iwb_model::ElementId, ToolError> {
        let graph = bb
            .schema(schema)
            .ok_or_else(|| ToolError::UnknownSchema(schema.to_string()))?;
        ElementPath::parse(path)
            .resolve(graph)
            .ok_or_else(|| ToolError::Failed(format!("path {path:?} not found in {schema}")))
    }

    fn run_match(
        &mut self,
        bb: &mut Blackboard,
        source: &SchemaId,
        target: &SchemaId,
        subtree: Option<&str>,
        budget: &Budget,
        events: &mut Vec<WorkbenchEvent>,
    ) -> Result<String, ToolError> {
        let src_graph = bb
            .schema(source)
            .ok_or_else(|| ToolError::UnknownSchema(source.to_string()))?
            .clone();
        let tgt_graph = bb
            .schema(target)
            .ok_or_else(|| ToolError::UnknownSchema(target.to_string()))?
            .clone();
        // Locked cells: existing user decisions in the matrix. The
        // matrix itself is only ensured *after* the engine completes —
        // an aborted run must leave the blackboard untouched, without
        // even an empty matrix as a trace.
        let mut locked = HashMap::new();
        let mut fresh_feedback = Vec::new();
        if let Some(matrix) = bb.matrix(source, target) {
            for &row in matrix.rows() {
                for &col in matrix.cols() {
                    let cell = matrix.cell(row, col);
                    if cell.user_defined {
                        locked.insert((row, col), cell.confidence);
                        let key = (
                            source.clone(),
                            target.clone(),
                            src_graph.name_path(row),
                            tgt_graph.name_path(col),
                        );
                        if self.learned.insert(key) {
                            fresh_feedback.push(Feedback {
                                src: row,
                                tgt: col,
                                accepted: cell.confidence == Confidence::ACCEPT,
                            });
                        }
                    }
                }
            }
        }

        // Learn from new decisions against the previous run (§4.3).
        if let Some(prev) = self.last_result.get(&(source.clone(), target.clone())) {
            if !fresh_feedback.is_empty() {
                self.engine
                    .learn(&src_graph, &tgt_graph, prev, &fresh_feedback);
            }
        }

        // Sub-tree restriction (§5.3: "she can choose a sub-tree
        // (including an entire schema) and request recommended matches").
        let scope: Option<HashSet<iwb_model::ElementId>> = match subtree {
            Some(path) => {
                let root = Self::resolve(bb, source, path)?;
                Some(src_graph.subtree(root).into_iter().collect())
            }
            None => None,
        };

        // The content key for this run. Computed *after* `learn` so the
        // corpus epoch it embeds reflects the weights the run will use
        // — a replayed session evolves its epoch identically and hits
        // the same keys.
        let key = iwb_store::match_artifact_key(
            &src_graph,
            &tgt_graph,
            &locked,
            self.engine.corpus_epoch(),
            subtree,
        );

        // The effective budget is the host's (per-command deadline,
        // cancel token) tightened by the engine's own configured
        // per-run timeout — whichever expires first wins. An abort
        // returns here *before* any cell is written, so the matrix is
        // exactly as it was (feedback learned above is monotone engine
        // state, not session output, and is kept).
        let budget = budget.tightened(
            self.engine
                .match_config()
                .timeout_ms
                .map(Duration::from_millis),
        );
        let result = match self.primed.get(&key) {
            Some(stored) => {
                // A stored run with the same schemas, decisions, epoch
                // and scope is bit-identical to what the engine would
                // recompute (the store's determinism suite proves it) —
                // serve it. Cancellation still applies, so a cancelled
                // command stays a no-op even on the warm path.
                budget.check().map_err(ToolError::from)?;
                self.primed_hits += 1;
                stored.clone()
            }
            None => self
                .engine
                .run_budgeted(&src_graph, &tgt_graph, &locked, &budget)
                .map_err(ToolError::from)?,
        };
        bb.ensure_matrix(source, target);
        let mut written = 0usize;
        let mut emitted = 0usize;
        for &row in result.matrix.src_ids() {
            if let Some(scope) = &scope {
                if !scope.contains(&row) {
                    continue;
                }
            }
            for &col in result.matrix.tgt_ids() {
                let c = result.matrix.get(row, col);
                if locked.contains_key(&(row, col)) {
                    continue;
                }
                if bb.set_cell(self.name(), source, target, row, col, c, false) {
                    written += 1;
                    if c.magnitude() >= self.event_threshold {
                        events.push(WorkbenchEvent::MappingCell {
                            source: source.clone(),
                            target: target.clone(),
                            row,
                            col,
                        });
                        emitted += 1;
                    }
                }
            }
        }
        self.runs
            .insert(key, (source.clone(), target.clone(), result.clone()));
        self.last_result
            .insert((source.clone(), target.clone()), result);
        Ok(format!(
            "matched {source} → {target}: {written} cells updated, {emitted} above display threshold"
        ))
    }
}

impl WorkbenchTool for HarmonyTool {
    fn name(&self) -> &'static str {
        "harmony"
    }

    fn kind(&self) -> ToolKind {
        ToolKind::Matcher
    }

    fn capabilities(&self) -> Vec<Task> {
        // §5.3: "Both tools support schema loading and manual matching.
        // Harmony also supports automated matching, but neither mapping
        // nor code generation."
        vec![Task::ObtainSourceSchemata, Task::GenerateCorrespondences]
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        // A (re)imported schema invalidates everything derived from its
        // elements: cached linguistic features and prior match results.
        vec![EventKind::SchemaGraph]
    }

    fn on_event(
        &mut self,
        _blackboard: &mut Blackboard,
        event: &WorkbenchEvent,
        _events: &mut Vec<WorkbenchEvent>,
    ) {
        if let WorkbenchEvent::SchemaGraph { schema } = event {
            self.engine.invalidate_features();
            self.last_result
                .retain(|(s, t), _| s != schema && t != schema);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// Arguments: `action` = `match` (default) | `accept` | `reject` |
    /// `configure`; `source`, `target`; for match: optional `subtree`
    /// (source path); for accept/reject: `row` and `col` paths; for
    /// configure: optional `threads` (0 = auto), `cache` (`on`/`off`),
    /// and `timeout` (per-run deadline in ms, 0 = none). A `match` also
    /// honours the invocation's [`ToolArgs::budget`].
    fn invoke(
        &mut self,
        blackboard: &mut Blackboard,
        args: &ToolArgs,
        events: &mut Vec<WorkbenchEvent>,
    ) -> Result<String, ToolError> {
        if args.get("action") == Some("configure") {
            return self.configure(args);
        }
        let source = SchemaId::new(args.require("source")?);
        let target = SchemaId::new(args.require("target")?);
        match args.get("action").unwrap_or("match") {
            "match" => self.run_match(
                blackboard,
                &source,
                &target,
                args.get("subtree"),
                args.budget(),
                events,
            ),
            action @ ("accept" | "reject") => {
                let row = Self::resolve(blackboard, &source, args.require("row")?)?;
                let col = Self::resolve(blackboard, &target, args.require("col")?)?;
                blackboard.ensure_matrix(&source, &target);
                let confidence = if action == "accept" {
                    Confidence::ACCEPT
                } else {
                    Confidence::REJECT
                };
                blackboard.set_cell(self.name(), &source, &target, row, col, confidence, true);
                // "A mapping-cell event is generated when a user
                // manually establishes a correspondence."
                events.push(WorkbenchEvent::MappingCell {
                    source,
                    target,
                    row,
                    col,
                });
                Ok(format!("{action}ed {row} × {col}"))
            }
            other => Err(ToolError::Failed(format!("unknown action {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};
    use iwb_loaders::{SchemaLoader, XsdLoader};

    fn loaded_bb() -> (Blackboard, SchemaId, SchemaId) {
        let mut bb = Blackboard::new();
        bb.put_schema(XsdLoader.load(FIG2_SOURCE_XSD, "purchaseOrder").unwrap());
        bb.put_schema(XsdLoader.load(FIG2_TARGET_XSD, "invoice").unwrap());
        (bb, SchemaId::new("purchaseOrder"), SchemaId::new("invoice"))
    }

    #[test]
    fn automatic_match_fills_matrix_and_emits_events() {
        let (mut bb, po, inv) = loaded_bb();
        let mut tool = HarmonyTool::new();
        let mut events = Vec::new();
        let args = ToolArgs::new()
            .with("source", "purchaseOrder")
            .with("target", "invoice");
        let out = tool.invoke(&mut bb, &args, &mut events).unwrap();
        assert!(out.contains("cells updated"));
        assert!(
            !events.is_empty(),
            "strong links must emit mapping-cell events"
        );
        let matrix = bb.matrix(&po, &inv).unwrap();
        let s = bb.schema(&po).unwrap();
        let t = bb.schema(&inv).unwrap();
        let ship = s.find_by_name("shipTo").unwrap();
        let info = t.find_by_name("shippingInfo").unwrap();
        assert!(matrix.cell(ship, info).confidence.value() > 0.3);
    }

    #[test]
    fn manual_decisions_lock_cells_across_reruns() {
        let (mut bb, po, inv) = loaded_bb();
        let mut tool = HarmonyTool::new();
        let mut events = Vec::new();
        tool.invoke(
            &mut bb,
            &ToolArgs::new()
                .with("action", "reject")
                .with("source", "purchaseOrder")
                .with("target", "invoice")
                .with("row", "purchaseOrder/purchaseOrder/shipTo/firstName")
                .with("col", "invoice/invoice/shippingInfo/total"),
            &mut events,
        )
        .unwrap();
        // Re-run the engine: the rejected cell must stay -1.
        tool.invoke(
            &mut bb,
            &ToolArgs::new()
                .with("source", "purchaseOrder")
                .with("target", "invoice"),
            &mut events,
        )
        .unwrap();
        let s = bb.schema(&po).unwrap();
        let t = bb.schema(&inv).unwrap();
        let row = s.find_by_name("firstName").unwrap();
        let col = t.find_by_name("total").unwrap();
        let cell = bb.matrix(&po, &inv).unwrap().cell(row, col);
        assert_eq!(cell.confidence, Confidence::REJECT);
        assert!(cell.user_defined);
    }

    #[test]
    fn subtree_restriction_scopes_updates() {
        let (mut bb, po, inv) = loaded_bb();
        let mut tool = HarmonyTool::new();
        let mut events = Vec::new();
        tool.invoke(
            &mut bb,
            &ToolArgs::new()
                .with("source", "purchaseOrder")
                .with("target", "invoice")
                .with("subtree", "purchaseOrder/purchaseOrder/shipTo"),
            &mut events,
        )
        .unwrap();
        let s = bb.schema(&po).unwrap();
        let matrix = bb.matrix(&po, &inv).unwrap();
        // The top-level purchaseOrder element is outside the subtree and
        // must remain untouched (unknown).
        let top = s.find_by_name("purchaseOrder").unwrap();
        let t = bb.schema(&inv).unwrap();
        let info = t.find_by_name("shippingInfo").unwrap();
        assert_eq!(matrix.cell(top, info).confidence, Confidence::UNKNOWN);
        // Inside the subtree, cells were written.
        let ship = s.find_by_name("shipTo").unwrap();
        assert_ne!(matrix.cell(ship, info).confidence, Confidence::UNKNOWN);
    }

    #[test]
    fn configure_action_sets_threads_and_cache() {
        let mut bb = Blackboard::new();
        let mut tool = HarmonyTool::new();
        let shown = tool
            .invoke(
                &mut bb,
                &ToolArgs::new().with("action", "configure"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(shown.contains("threads=1"), "{shown}");
        assert!(shown.contains("cache=on"), "{shown}");
        let set = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "configure")
                    .with("threads", "4")
                    .with("cache", "off"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(set.contains("threads=4"), "{set}");
        assert!(set.contains("cache=off"), "{set}");
        assert_eq!(tool.engine().match_config().threads, 4);
        assert!(!tool.engine().match_config().cache);
        let err = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "configure")
                    .with("cache", "maybe"),
                &mut Vec::new(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("on or off"));
    }

    #[test]
    fn configure_action_sets_and_clears_the_timeout() {
        let mut bb = Blackboard::new();
        let mut tool = HarmonyTool::new();
        let shown = tool
            .invoke(
                &mut bb,
                &ToolArgs::new().with("action", "configure"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(shown.contains("timeout=none"), "{shown}");
        let set = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "configure")
                    .with("timeout", "1500"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(set.contains("timeout=1500ms"), "{set}");
        assert_eq!(tool.engine().match_config().timeout_ms, Some(1500));
        let cleared = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "configure")
                    .with("timeout", "0"),
                &mut Vec::new(),
            )
            .unwrap();
        assert!(cleared.contains("timeout=none"), "{cleared}");
        assert_eq!(tool.engine().match_config().timeout_ms, None);
        let err = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("action", "configure")
                    .with("timeout", "soon"),
                &mut Vec::new(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("milliseconds"));
    }

    #[test]
    fn cancelled_match_aborts_and_leaves_the_matrix_untouched() {
        use iwb_harmony::{CancelToken, Deadline};
        let (mut bb, po, inv) = loaded_bb();
        let mut tool = HarmonyTool::new();
        let token = CancelToken::new();
        token.cancel();
        let args = ToolArgs::new()
            .with("source", "purchaseOrder")
            .with("target", "invoice")
            .with_budget(Budget::new(token, Deadline::none()));
        let err = tool.invoke(&mut bb, &args, &mut Vec::new()).unwrap_err();
        assert_eq!(err, ToolError::Cancelled);
        assert!(
            bb.matrix(&po, &inv).is_none(),
            "an aborted match must not leave even an empty matrix behind"
        );
    }

    #[test]
    fn expired_configured_timeout_aborts_the_match() {
        let (mut bb, _, _) = loaded_bb();
        let mut tool = HarmonyTool::new();
        tool.invoke(
            &mut bb,
            &ToolArgs::new()
                .with("action", "configure")
                .with("timeout", "1"),
            &mut Vec::new(),
        )
        .unwrap();
        // A 1ms deadline expires while the engine builds its context,
        // well before any cell is written.
        std::thread::sleep(Duration::from_millis(5));
        let args = ToolArgs::new()
            .with("source", "purchaseOrder")
            .with("target", "invoice");
        // The deadline starts at run time, not configure time, so spin
        // until the clock has visibly advanced past 1ms inside the run:
        // with such a tight budget the very first check can only pass
        // on an absurdly fast machine, in which case later stage checks
        // still fire. Either way the result must be a structured abort
        // or a completed, fully-written run — never a partial one.
        match tool.invoke(&mut bb, &args, &mut Vec::new()) {
            Err(ToolError::DeadlineExceeded) => {}
            Ok(out) => assert!(out.contains("cells updated"), "{out}"),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn generous_timeout_matches_identically_to_none() {
        let (mut bb1, po, inv) = loaded_bb();
        let (mut bb2, _, _) = loaded_bb();
        let mut plain = HarmonyTool::new();
        let args = ToolArgs::new()
            .with("source", "purchaseOrder")
            .with("target", "invoice");
        plain.invoke(&mut bb1, &args, &mut Vec::new()).unwrap();
        let mut timed = HarmonyTool::new();
        timed
            .invoke(
                &mut bb2,
                &ToolArgs::new()
                    .with("action", "configure")
                    .with("timeout", "3600000"),
                &mut Vec::new(),
            )
            .unwrap();
        timed.invoke(&mut bb2, &args, &mut Vec::new()).unwrap();
        let m1 = bb1.matrix(&po, &inv).unwrap();
        let m2 = bb2.matrix(&po, &inv).unwrap();
        for &row in m1.rows() {
            for &col in m1.cols() {
                assert_eq!(
                    m1.cell(row, col).confidence.value().to_bits(),
                    m2.cell(row, col).confidence.value().to_bits(),
                    "unexpired deadline must not change results"
                );
            }
        }
    }

    #[test]
    fn schema_graph_event_invalidates_the_feature_cache() {
        let (mut bb, po, inv) = loaded_bb();
        let mut tool = HarmonyTool::new();
        let args = ToolArgs::new()
            .with("source", "purchaseOrder")
            .with("target", "invoice");
        tool.invoke(&mut bb, &args, &mut Vec::new()).unwrap();
        tool.invoke(&mut bb, &args, &mut Vec::new()).unwrap();
        assert_eq!(tool.engine().cache_stats().context_hits, 1);
        // Re-importing a schema must drop the cached features and the
        // remembered result for every pair the schema participates in.
        assert!(tool.subscriptions().contains(&EventKind::SchemaGraph));
        tool.on_event(
            &mut bb,
            &WorkbenchEvent::SchemaGraph { schema: po.clone() },
            &mut Vec::new(),
        );
        assert!(!tool.last_result.contains_key(&(po, inv)));
        tool.invoke(&mut bb, &args, &mut Vec::new()).unwrap();
        assert_eq!(tool.engine().cache_stats().context_misses, 2);
    }

    #[test]
    fn unknown_schema_is_an_error() {
        let mut bb = Blackboard::new();
        let mut tool = HarmonyTool::new();
        let err = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("source", "ghost")
                    .with("target", "ghost2"),
                &mut Vec::new(),
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::UnknownSchema(_)));
    }
}
