//! The schema loader tool.
//!
//! "Loaders are used during schema preparation to parse a schema from a
//! file, database or metadata repository … into the internal
//! representation used by the IB. When the user invokes a loader, that
//! tool places the new objects in the IB, which extends the mapping
//! matrix accordingly and advises the other tools via an event."

use crate::blackboard::Blackboard;
use crate::event::WorkbenchEvent;
use crate::taskmodel::Task;
use crate::tool::{ToolArgs, ToolError, ToolKind, WorkbenchTool};
use iwb_loaders::{apply_dictionary, LoaderRegistry};
use iwb_model::SchemaId;

/// Loader tool over the built-in format registry.
pub struct LoaderTool {
    registry: LoaderRegistry,
}

impl Default for LoaderTool {
    fn default() -> Self {
        LoaderTool {
            registry: LoaderRegistry::with_builtin(),
        }
    }
}

impl LoaderTool {
    /// A loader with the built-in formats (xsd, sql-ddl, er).
    pub fn new() -> Self {
        Self::default()
    }
}

impl WorkbenchTool for LoaderTool {
    fn name(&self) -> &'static str {
        "schema-loader"
    }

    fn kind(&self) -> ToolKind {
        ToolKind::Loader
    }

    fn capabilities(&self) -> Vec<Task> {
        vec![Task::ObtainSourceSchemata, Task::ObtainTargetSchema]
    }

    /// Arguments: `format` (xsd | sql-ddl | er), `text` (the schema
    /// artifact), `schema-id`, optional `dictionary` (a `path =
    /// definition` sidecar applied after loading, task 1's "ancillary
    /// information").
    fn invoke(
        &mut self,
        blackboard: &mut Blackboard,
        args: &ToolArgs,
        events: &mut Vec<WorkbenchEvent>,
    ) -> Result<String, ToolError> {
        let format = args.require("format")?;
        let text = args.require("text")?;
        let schema_id = args.require("schema-id")?;
        let loader = self
            .registry
            .by_format(format)
            .ok_or_else(|| ToolError::Failed(format!("no loader for format {format:?}")))?;
        let mut graph = loader
            .load_validated(text, schema_id)
            .map_err(|e| ToolError::Failed(e.to_string()))?;
        let mut dict_note = String::new();
        if let Some(dict) = args.get("dictionary") {
            let report = apply_dictionary(&mut graph, dict, false)
                .map_err(|e| ToolError::Failed(e.to_string()))?;
            dict_note = format!(
                ", dictionary: {} applied / {} unresolved",
                report.applied, report.unresolved
            );
        }
        let element_count = graph.len();
        let version = blackboard.put_schema(graph);
        events.push(WorkbenchEvent::SchemaGraph {
            schema: SchemaId::new(schema_id),
        });
        Ok(format!(
            "loaded {schema_id} ({format}, {element_count} elements, version {version}{dict_note})"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_emits_schema_graph_event() {
        let mut bb = Blackboard::new();
        let mut tool = LoaderTool::new();
        let mut events = Vec::new();
        let out = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("format", "er")
                    .with("text", "entity A { x : text }")
                    .with("schema-id", "m1"),
                &mut events,
            )
            .unwrap();
        assert!(out.contains("loaded m1"));
        assert_eq!(events.len(), 1);
        assert!(bb.schema(&SchemaId::new("m1")).is_some());
    }

    #[test]
    fn dictionary_enrichment_applies() {
        let mut bb = Blackboard::new();
        let mut tool = LoaderTool::new();
        let mut events = Vec::new();
        let out = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("format", "sql-ddl")
                    .with("text", "CREATE TABLE T (X INT);")
                    .with("schema-id", "db")
                    .with("dictionary", "T/X = The only column."),
                &mut events,
            )
            .unwrap();
        assert!(out.contains("1 applied"));
        let g = bb.schema(&SchemaId::new("db")).unwrap();
        let x = g.find_by_path("db/T/X").unwrap();
        assert_eq!(
            g.element(x).documentation.as_deref(),
            Some("The only column.")
        );
    }

    #[test]
    fn bad_input_is_a_tool_error() {
        let mut bb = Blackboard::new();
        let mut tool = LoaderTool::new();
        let mut events = Vec::new();
        let err = tool
            .invoke(
                &mut bb,
                &ToolArgs::new()
                    .with("format", "xsd")
                    .with("text", "<broken")
                    .with("schema-id", "x"),
                &mut events,
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Failed(_)));
        assert!(events.is_empty());
        let missing = tool
            .invoke(&mut bb, &ToolArgs::new(), &mut events)
            .unwrap_err();
        assert!(matches!(missing, ToolError::MissingArgument(_)));
    }
}
