//! The manual mapping tool — the AquaLogic stand-in.
//!
//! §5.2.1: "A mapping tool updates the code associated with each
//! column." It also listens for mapping-cell events "to propose a
//! candidate transformation, such as a type conversion".

use crate::blackboard::Blackboard;
use crate::event::{EventKind, VectorSide, WorkbenchEvent};
use crate::taskmodel::Task;
use crate::tool::{ToolArgs, ToolError, ToolKind, WorkbenchTool};
use iwb_harmony::Confidence;
use iwb_model::{DataType, ElementPath, SchemaId};

/// The manual mapping tool.
#[derive(Debug, Default)]
pub struct MapperTool {
    /// Candidate transformations proposed from events (for reporting).
    pub proposals: Vec<String>,
}

impl MapperTool {
    /// A fresh mapper.
    pub fn new() -> Self {
        Self::default()
    }

    fn resolve(
        bb: &Blackboard,
        schema: &SchemaId,
        path: &str,
    ) -> Result<iwb_model::ElementId, ToolError> {
        let graph = bb
            .schema(schema)
            .ok_or_else(|| ToolError::UnknownSchema(schema.to_string()))?;
        ElementPath::parse(path)
            .resolve(graph)
            .ok_or_else(|| ToolError::Failed(format!("path {path:?} not found in {schema}")))
    }
}

impl WorkbenchTool for MapperTool {
    fn name(&self) -> &'static str {
        "aqualogic-mapper"
    }

    fn kind(&self) -> ToolKind {
        ToolKind::Mapper
    }

    fn capabilities(&self) -> Vec<Task> {
        // §5.3: "the AquaLogic development environment supports manual
        // mapping and automatic code generation" — this tool covers the
        // piecemeal mapping tasks 4–7 (codegen is its sibling tool).
        vec![
            Task::ObtainSourceSchemata,
            Task::ObtainTargetSchema,
            Task::DomainTransformations,
            Task::AttributeTransformations,
            Task::EntityTransformations,
            Task::ObjectIdentity,
        ]
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        // Downstream of matching: react to new correspondences.
        vec![EventKind::MappingCell]
    }

    /// Arguments: `action` = `bind-variable` | `set-code`;
    /// `source`, `target`; for bind-variable: `row` (source path) and
    /// `variable`; for set-code: `col` (target path) and `code`.
    fn invoke(
        &mut self,
        blackboard: &mut Blackboard,
        args: &ToolArgs,
        events: &mut Vec<WorkbenchEvent>,
    ) -> Result<String, ToolError> {
        let source = SchemaId::new(args.require("source")?);
        let target = SchemaId::new(args.require("target")?);
        blackboard.ensure_matrix(&source, &target);
        match args.require("action")? {
            "bind-variable" => {
                let row = Self::resolve(blackboard, &source, args.require("row")?)?;
                let variable = args.require("variable")?.to_owned();
                let matrix = blackboard
                    .matrix_mut(&source, &target)
                    .expect("ensured above");
                let meta = matrix
                    .row_meta_mut(row)
                    .ok_or_else(|| ToolError::Failed(format!("{row} is not a matrix row")))?;
                meta.variable = Some(variable.clone());
                events.push(WorkbenchEvent::MappingVector {
                    source,
                    target,
                    side: VectorSide::Row,
                    element: row,
                });
                Ok(format!("bound ${variable} to row {row}"))
            }
            "set-code" => {
                let col = Self::resolve(blackboard, &target, args.require("col")?)?;
                let code = args.require("code")?;
                if !blackboard.set_column_code(self.name(), &source, &target, col, code) {
                    return Err(ToolError::Failed(format!("{col} is not a matrix column")));
                }
                // "When a mapping tool establishes a transformation, it
                // generates a mapping-vector event."
                events.push(WorkbenchEvent::MappingVector {
                    source,
                    target,
                    side: VectorSide::Column,
                    element: col,
                });
                Ok(format!("set code on column {col}"))
            }
            other => Err(ToolError::Failed(format!("unknown action {other:?}"))),
        }
    }

    /// "A mapping tool can listen for these events to propose a
    /// candidate transformation, such as a type conversion": when a
    /// user-accepted correspondence appears and the column has no code
    /// yet, propose one from the row variable (or path) and the declared
    /// types.
    fn on_event(
        &mut self,
        blackboard: &mut Blackboard,
        event: &WorkbenchEvent,
        events: &mut Vec<WorkbenchEvent>,
    ) {
        let WorkbenchEvent::MappingCell {
            source,
            target,
            row,
            col,
        } = event
        else {
            return;
        };
        let Some(matrix) = blackboard.matrix(source, target) else {
            return;
        };
        let cell = matrix.cell(*row, *col);
        if !(cell.user_defined && cell.confidence == Confidence::ACCEPT) {
            return;
        }
        if matrix
            .col_meta(*col)
            .map(|m| m.code.is_some())
            .unwrap_or(true)
        {
            return;
        }
        let (Some(sg), Some(tg)) = (blackboard.schema(source), blackboard.schema(target)) else {
            return;
        };
        // Reference the row by its bound variable when one exists, else
        // by path from the document variable.
        let reference = match matrix.row_meta(*row).and_then(|m| m.variable.clone()) {
            Some(var) => format!("${var}"),
            None => {
                let path = sg.name_path(*row);
                let rel = path.split('/').skip(1).collect::<Vec<_>>().join("/");
                format!("$doc/{rel}")
            }
        };
        let src_type = sg.element(*row).data_type.clone();
        let tgt_type = tg.element(*col).data_type.clone();
        let code = propose_conversion(&reference, src_type.as_ref(), tgt_type.as_ref());
        self.proposals.push(format!(
            "{} → {}: {code}",
            sg.name_path(*row),
            tg.name_path(*col)
        ));
        blackboard.set_column_code(self.name(), source, target, *col, &code);
        events.push(WorkbenchEvent::MappingVector {
            source: source.clone(),
            target: target.clone(),
            side: VectorSide::Column,
            element: *col,
        });
    }
}

/// Candidate transformation for a type pair.
fn propose_conversion(reference: &str, from: Option<&DataType>, to: Option<&DataType>) -> String {
    use iwb_model::element::TypeFamily::*;
    let data = format!("data({reference})");
    match (from.map(DataType::family), to.map(DataType::family)) {
        (Some(a), Some(b)) if a == b => data,
        (Some(Textual), Some(Numeric)) => format!("number({data})"),
        (Some(Numeric), Some(Textual)) => format!("string({data})"),
        (Some(Coded), Some(Textual)) | (Some(Textual), Some(Coded)) => data,
        (Some(_), Some(_)) => format!("(: TODO type conversion :) {data}"),
        _ => data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{Metamodel, SchemaBuilder, SchemaGraph};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("po", Metamodel::Xml)
            .open("shipTo")
            .attr("subtotal", DataType::Decimal)
            .attr("zip", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("inv", Metamodel::Xml)
            .open("shippingInfo")
            .attr("total", DataType::Decimal)
            .attr("postalCode", DataType::Integer)
            .close()
            .build();
        (s, t)
    }

    fn bb() -> Blackboard {
        let (s, t) = schemas();
        let mut bb = Blackboard::new();
        bb.put_schema(s);
        bb.put_schema(t);
        bb
    }

    #[test]
    fn bind_variable_and_set_code() {
        let mut bb = bb();
        let mut tool = MapperTool::new();
        let mut events = Vec::new();
        tool.invoke(
            &mut bb,
            &ToolArgs::new()
                .with("action", "bind-variable")
                .with("source", "po")
                .with("target", "inv")
                .with("row", "po/shipTo")
                .with("variable", "shipto"),
            &mut events,
        )
        .unwrap();
        tool.invoke(
            &mut bb,
            &ToolArgs::new()
                .with("action", "set-code")
                .with("source", "po")
                .with("target", "inv")
                .with("col", "inv/shippingInfo/total")
                .with("code", "data($shipto/subtotal) * 1.05"),
            &mut events,
        )
        .unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            WorkbenchEvent::MappingVector {
                side: VectorSide::Row,
                ..
            }
        ));
        let po = SchemaId::new("po");
        let inv = SchemaId::new("inv");
        let s = bb.schema(&po).unwrap();
        let matrix = bb.matrix(&po, &inv).unwrap();
        let ship = s.find_by_name("shipTo").unwrap();
        assert_eq!(
            matrix.row_meta(ship).unwrap().variable.as_deref(),
            Some("shipto")
        );
    }

    #[test]
    fn proposes_type_conversion_on_accept_event() {
        let mut bb = bb();
        let po = SchemaId::new("po");
        let inv = SchemaId::new("inv");
        bb.ensure_matrix(&po, &inv);
        let s = bb.schema(&po).unwrap().clone();
        let t = bb.schema(&inv).unwrap().clone();
        let zip = s.find_by_name("zip").unwrap();
        let postal = t.find_by_name("postalCode").unwrap();
        bb.set_cell("user", &po, &inv, zip, postal, Confidence::ACCEPT, true);
        let event = WorkbenchEvent::MappingCell {
            source: po.clone(),
            target: inv.clone(),
            row: zip,
            col: postal,
        };
        let mut tool = MapperTool::new();
        let mut cascade = Vec::new();
        tool.on_event(&mut bb, &event, &mut cascade);
        // Text → Integer: a number() conversion is proposed.
        let code = bb
            .matrix(&po, &inv)
            .unwrap()
            .col_meta(postal)
            .unwrap()
            .code
            .clone()
            .unwrap();
        assert!(code.starts_with("number("), "{code}");
        assert_eq!(cascade.len(), 1);
        assert_eq!(tool.proposals.len(), 1);
    }

    #[test]
    fn does_not_override_existing_code_or_react_to_rejects() {
        let mut bb = bb();
        let po = SchemaId::new("po");
        let inv = SchemaId::new("inv");
        bb.ensure_matrix(&po, &inv);
        let s = bb.schema(&po).unwrap().clone();
        let t = bb.schema(&inv).unwrap().clone();
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        bb.set_column_code("user", &po, &inv, total, "handwritten");
        bb.set_cell("user", &po, &inv, sub, total, Confidence::ACCEPT, true);
        let mut tool = MapperTool::new();
        let mut cascade = Vec::new();
        tool.on_event(
            &mut bb,
            &WorkbenchEvent::MappingCell {
                source: po.clone(),
                target: inv.clone(),
                row: sub,
                col: total,
            },
            &mut cascade,
        );
        assert!(cascade.is_empty());
        assert_eq!(
            bb.matrix(&po, &inv)
                .unwrap()
                .col_meta(total)
                .unwrap()
                .code
                .as_deref(),
            Some("handwritten")
        );
    }

    #[test]
    fn conversion_proposals_by_type_family() {
        assert_eq!(
            propose_conversion("$x", Some(&DataType::Decimal), Some(&DataType::Decimal)),
            "data($x)"
        );
        assert_eq!(
            propose_conversion("$x", Some(&DataType::Text), Some(&DataType::Integer)),
            "number(data($x))"
        );
        assert_eq!(
            propose_conversion("$x", Some(&DataType::Integer), Some(&DataType::Text)),
            "string(data($x))"
        );
        assert!(
            propose_conversion("$x", Some(&DataType::Date), Some(&DataType::Boolean))
                .contains("TODO")
        );
    }
}
