//! The built-in workbench tools (§5.2.1's four families).
//!
//! * [`LoaderTool`] — schema preparation over the `iwb-loaders` registry;
//! * [`HarmonyTool`] — the Harmony matcher wrapped as a workbench tool
//!   (automatic matching plus manual accept/reject);
//! * [`MapperTool`] — the manual mapping tool standing in for BEA
//!   AquaLogic: binds row variables, sets column code, and proposes
//!   candidate transformations when correspondences appear;
//! * [`CodegenTool`] — assembles per-column code into the whole-matrix
//!   XQuery (Clio-style);
//! * [`BlockingTool`] — registry-scale candidate retrieval: indexes a
//!   model repository and narrows matching to the top-k candidates
//!   before the full engine runs (recommend-then-rerank).

mod blocking_tool;
mod codegen;
mod harmony_tool;
mod loader_tool;
mod mapper_tool;

pub use blocking_tool::BlockingTool;
pub use codegen::CodegenTool;
pub use harmony_tool::HarmonyTool;
pub use loader_tool::LoaderTool;
pub use mapper_tool::MapperTool;
