//! Schema versioning (§5.1.3).
//!
//! "Schemata inevitably change; the blackboard should track schemata
//! across versions." Versions of a schema are kept as a chain; a
//! structural diff between versions tells downstream tools which
//! correspondences need revisiting, and "one also needs a means to keep
//! the metadata in synch, as the actual systems change" (§3.1).

use iwb_model::{SchemaGraph, SchemaId};
use std::collections::{BTreeMap, BTreeSet};

/// A structural diff between two schema versions, by name path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaDiff {
    /// Paths present only in the newer version.
    pub added: Vec<String>,
    /// Paths present only in the older version.
    pub removed: Vec<String>,
    /// Paths present in both whose type or documentation changed.
    pub changed: Vec<String>,
}

impl SchemaDiff {
    /// True when the versions are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }
}

/// Compute the diff from `old` to `new`.
pub fn diff(old: &SchemaGraph, new: &SchemaGraph) -> SchemaDiff {
    let collect = |g: &SchemaGraph| -> BTreeMap<String, (String, String)> {
        g.iter()
            .map(|(id, el)| {
                (
                    g.name_path(id),
                    (
                        el.data_type
                            .as_ref()
                            .map(|t| t.to_string())
                            .unwrap_or_default(),
                        el.documentation.clone().unwrap_or_default(),
                    ),
                )
            })
            .collect()
    };
    let old_map = collect(old);
    let new_map = collect(new);
    let old_keys: BTreeSet<&String> = old_map.keys().collect();
    let new_keys: BTreeSet<&String> = new_map.keys().collect();
    SchemaDiff {
        added: new_keys
            .difference(&old_keys)
            .map(|s| (*s).clone())
            .collect(),
        removed: old_keys
            .difference(&new_keys)
            .map(|s| (*s).clone())
            .collect(),
        changed: old_keys
            .intersection(&new_keys)
            .filter(|k| old_map[**k] != new_map[**k])
            .map(|s| (*s).clone())
            .collect(),
    }
}

/// The version chain for every schema on the blackboard.
#[derive(Debug, Clone, Default)]
pub struct SchemaVersions {
    chains: BTreeMap<SchemaId, Vec<SchemaGraph>>,
}

impl SchemaVersions {
    /// Empty version store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a new version; returns the 1-based version number.
    pub fn record(&mut self, schema: SchemaGraph) -> u32 {
        let chain = self.chains.entry(schema.id().clone()).or_default();
        chain.push(schema);
        chain.len() as u32
    }

    /// Number of versions recorded for a schema.
    pub fn version_count(&self, id: &SchemaId) -> usize {
        self.chains.get(id).map(Vec::len).unwrap_or(0)
    }

    /// A specific version (1-based).
    pub fn version(&self, id: &SchemaId, version: u32) -> Option<&SchemaGraph> {
        self.chains.get(id)?.get(version.checked_sub(1)? as usize)
    }

    /// The latest version.
    pub fn latest(&self, id: &SchemaId) -> Option<&SchemaGraph> {
        self.chains.get(id).and_then(|c| c.last())
    }

    /// Diff two recorded versions.
    pub fn diff_versions(&self, id: &SchemaId, from: u32, to: u32) -> Option<SchemaDiff> {
        Some(diff(self.version(id, from)?, self.version(id, to)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn v1() -> SchemaGraph {
        SchemaBuilder::new("po", Metamodel::Xml)
            .open("shipTo")
            .attr("firstName", DataType::Text)
            .attr_doc("subtotal", DataType::Decimal, "Pre-tax sum.")
            .close()
            .build()
    }

    fn v2() -> SchemaGraph {
        SchemaBuilder::new("po", Metamodel::Xml)
            .open("shipTo")
            .attr("firstName", DataType::Text)
            .attr_doc("subtotal", DataType::Decimal, "Pre-tax sum in USD.") // doc changed
            .attr("zipCode", DataType::Text) // added
            .close()
            .build()
    }

    #[test]
    fn diff_reports_added_removed_changed() {
        let d = diff(&v1(), &v2());
        assert_eq!(d.added, vec!["po/shipTo/zipCode".to_owned()]);
        assert!(d.removed.is_empty());
        assert_eq!(d.changed, vec!["po/shipTo/subtotal".to_owned()]);
        assert!(!d.is_empty());
        let same = diff(&v1(), &v1());
        assert!(same.is_empty());
    }

    #[test]
    fn chains_record_and_diff() {
        let mut vs = SchemaVersions::new();
        assert_eq!(vs.record(v1()), 1);
        assert_eq!(vs.record(v2()), 2);
        let id = SchemaId::new("po");
        assert_eq!(vs.version_count(&id), 2);
        assert_eq!(vs.latest(&id).unwrap().len(), v2().len());
        let d = vs.diff_versions(&id, 1, 2).unwrap();
        assert_eq!(d.added.len(), 1);
        assert!(vs.diff_versions(&id, 1, 9).is_none());
        assert!(vs.version(&id, 0).is_none());
    }
}
