//! Calibrated synthetic domain generators.
//!
//! The registry crate reproduces the paper's aviation / procurement /
//! personnel vocabulary; experiments that only ever see those three
//! domains risk over-fitting voter weights and thresholds to one
//! naming culture. This module adds four further domains — clinical,
//! finance, geospatial, telecom — each with its own noun / qualifier /
//! suffix vocabulary and abbreviation table, and exposes *calibration
//! knobs* so a benchmark can dial difficulty:
//!
//! - `abbreviation_density`: probability an abbreviable name token is
//!   abbreviated in the target rendition,
//! - `doc_coverage`: probability an element carries its definition,
//! - `structural_skew`: exponent skewing the attribute budget across
//!   entities (shared with the registry via
//!   [`iwb_registry::split_budget`]),
//! - `near_duplicate_rate`: probability an entity spawns an
//!   adversarial near-duplicate decoy in the target schema (a cloned,
//!   slightly renamed entity that is *not* in the gold standard).
//!
//! Every Bernoulli draw is counted in [`GenStats`] at draw time, so
//! property tests can check knob adherence over many seeds without
//! re-deriving the generator's internals. Generation is deterministic
//! under (domain, knobs, seed).

use iwb_harmony::GoldStandard;
use iwb_model::{DataType, EdgeKind, ElementKind, Metamodel, SchemaElement, SchemaGraph};
use iwb_registry::vocabulary::{definition, pick};
use iwb_registry::{split_budget, SchemaPair};
use iwb_rng::StdRng;
use std::collections::HashSet;

/// A domain's static vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// Short lowercase domain name (used in schema ids and reports).
    pub name: &'static str,
    /// Mixed into the seed so equal seeds still diverge across domains.
    pub salt: u64,
    /// Nouns used for entity names.
    pub entity_nouns: &'static [&'static str],
    /// Qualifiers compounded with nouns.
    pub qualifiers: &'static [&'static str],
    /// Attribute-name suffixes.
    pub attr_suffixes: &'static [&'static str],
    /// Full-form → abbreviation pairs a DBA in this domain would use.
    pub abbreviations: &'static [(&'static str, &'static str)],
}

/// Difficulty knobs for one generated schema pair.
#[derive(Debug, Clone, Copy)]
pub struct DomainKnobs {
    /// Entities per schema.
    pub entities: usize,
    /// Mean attributes per entity (budget split across entities).
    pub attrs_per_entity: f64,
    /// P(abbreviate | token has an abbreviation) in target names.
    pub abbreviation_density: f64,
    /// P(element carries documentation), per side.
    pub doc_coverage: f64,
    /// Skew exponent for the attribute budget (1.0 even, ≥2 skewed).
    pub structural_skew: f64,
    /// P(entity spawns an adversarial near-duplicate decoy).
    pub near_duplicate_rate: f64,
}

impl Default for DomainKnobs {
    fn default() -> Self {
        DomainKnobs {
            entities: 10,
            attrs_per_entity: 5.0,
            abbreviation_density: 0.3,
            doc_coverage: 0.8,
            structural_skew: 2.0,
            near_duplicate_rate: 0.2,
        }
    }
}

/// Counters recorded at Bernoulli-draw time, so observed rates can be
/// compared against the requested knobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Entities in the source schema.
    pub entities: usize,
    /// Attributes in the source schema.
    pub attributes: usize,
    /// Tokens that *could* have been abbreviated.
    pub abbrev_eligible: usize,
    /// Tokens that were abbreviated.
    pub abbrev_applied: usize,
    /// Documentation slots (element × side).
    pub doc_slots: usize,
    /// Slots that received documentation.
    pub doc_present: usize,
    /// Entities eligible to spawn a decoy.
    pub near_dup_candidates: usize,
    /// Decoys actually spawned.
    pub near_dups: usize,
}

impl GenStats {
    /// Observed abbreviation rate (0 when nothing was eligible).
    pub fn abbreviation_rate(&self) -> f64 {
        rate(self.abbrev_applied, self.abbrev_eligible)
    }

    /// Observed documentation coverage.
    pub fn doc_rate(&self) -> f64 {
        rate(self.doc_present, self.doc_slots)
    }

    /// Observed near-duplicate rate.
    pub fn near_dup_rate(&self) -> f64 {
        rate(self.near_dups, self.near_dup_candidates)
    }

    /// Accumulate another run's counters (for multi-seed calibration).
    pub fn absorb(&mut self, other: &GenStats) {
        self.entities += other.entities;
        self.attributes += other.attributes;
        self.abbrev_eligible += other.abbrev_eligible;
        self.abbrev_applied += other.abbrev_applied;
        self.doc_slots += other.doc_slots;
        self.doc_present += other.doc_present;
        self.near_dup_candidates += other.near_dup_candidates;
        self.near_dups += other.near_dups;
    }
}

fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One benchmark case: a generated schema pair with gold standard plus
/// the generation statistics behind it.
#[derive(Debug, Clone)]
pub struct EvalCase {
    /// Domain the case was drawn from.
    pub domain: &'static str,
    /// Seed it was drawn under.
    pub seed: u64,
    /// The knobs it was drawn with.
    pub knobs: DomainKnobs,
    /// Source, target, and gold mapping (same shape the perturbation
    /// workload and [`crate::harness`] use).
    pub pair: SchemaPair,
    /// Draw-time counters.
    pub stats: GenStats,
}

/// The clinical-records domain: heavy abbreviation culture
/// (chart-speak), good documentation.
pub const CLINICAL: DomainSpec = DomainSpec {
    name: "clinical",
    salt: 0x11,
    entity_nouns: &[
        "patient",
        "encounter",
        "diagnosis",
        "procedure",
        "medication",
        "prescription",
        "allergy",
        "immunization",
        "laboratory",
        "specimen",
        "observation",
        "admission",
        "discharge",
        "provider",
        "practitioner",
        "ward",
        "clinic",
        "insurance",
        "claim",
        "referral",
    ],
    qualifiers: &[
        "primary",
        "secondary",
        "admitting",
        "attending",
        "chronic",
        "acute",
        "inpatient",
        "outpatient",
        "surgical",
        "clinical",
    ],
    attr_suffixes: &[
        "identifier",
        "code",
        "name",
        "date",
        "status",
        "type",
        "dosage",
        "frequency",
        "result",
        "severity",
        "onset",
        "number",
    ],
    abbreviations: &[
        ("patient", "pt"),
        ("diagnosis", "dx"),
        ("procedure", "px"),
        ("medication", "med"),
        ("prescription", "rx"),
        ("laboratory", "lab"),
        ("admission", "adm"),
        ("discharge", "dschg"),
        ("provider", "prov"),
        ("identifier", "id"),
        ("number", "nbr"),
        ("date", "dt"),
        ("status", "stat"),
        ("frequency", "freq"),
    ],
};

/// The retail-finance domain: moderate abbreviation, dense
/// documentation, many near-duplicate products/accounts.
pub const FINANCE: DomainSpec = DomainSpec {
    name: "finance",
    salt: 0x22,
    entity_nouns: &[
        "account",
        "ledger",
        "journal",
        "transaction",
        "payment",
        "transfer",
        "statement",
        "balance",
        "portfolio",
        "security",
        "holding",
        "dividend",
        "loan",
        "mortgage",
        "collateral",
        "counterparty",
        "branch",
        "customer",
        "beneficiary",
        "settlement",
    ],
    qualifiers: &[
        "posted",
        "pending",
        "cleared",
        "reconciled",
        "accrued",
        "fiscal",
        "quarterly",
        "retail",
        "corporate",
        "nostro",
    ],
    attr_suffixes: &[
        "identifier",
        "number",
        "code",
        "amount",
        "currency",
        "date",
        "rate",
        "balance",
        "status",
        "type",
        "reference",
        "description",
    ],
    abbreviations: &[
        ("account", "acct"),
        ("transaction", "txn"),
        ("payment", "pmt"),
        ("transfer", "xfer"),
        ("statement", "stmt"),
        ("balance", "bal"),
        ("customer", "cust"),
        ("identifier", "id"),
        ("number", "nbr"),
        ("amount", "amt"),
        ("currency", "ccy"),
        ("date", "dt"),
        ("reference", "ref"),
        ("description", "desc"),
    ],
};

/// The geospatial domain: sparse documentation (field-collected data),
/// mild abbreviation.
pub const GEOSPATIAL: DomainSpec = DomainSpec {
    name: "geospatial",
    salt: 0x33,
    entity_nouns: &[
        "feature",
        "parcel",
        "boundary",
        "centroid",
        "elevation",
        "contour",
        "raster",
        "layer",
        "projection",
        "datum",
        "waypoint",
        "corridor",
        "easement",
        "watershed",
        "basin",
        "terrain",
        "surface",
        "imagery",
        "survey",
        "monument",
    ],
    qualifiers: &[
        "measured",
        "surveyed",
        "derived",
        "interpolated",
        "projected",
        "geodetic",
        "cadastral",
        "topographic",
        "hydrographic",
        "orthometric",
    ],
    attr_suffixes: &[
        "identifier",
        "code",
        "name",
        "latitude",
        "longitude",
        "elevation",
        "accuracy",
        "scale",
        "area",
        "length",
        "source",
        "date",
    ],
    abbreviations: &[
        ("elevation", "elev"),
        ("latitude", "lat"),
        ("longitude", "lon"),
        ("boundary", "bndry"),
        ("projection", "proj"),
        ("identifier", "id"),
        ("accuracy", "acc"),
        ("surveyed", "svy"),
        ("monument", "mon"),
        ("date", "dt"),
        ("source", "src"),
        ("length", "len"),
    ],
};

/// The telecom-inventory domain: deep structural skew (a few huge
/// entities), moderate everything else.
pub const TELECOM: DomainSpec = DomainSpec {
    name: "telecom",
    salt: 0x44,
    entity_nouns: &[
        "subscriber",
        "handset",
        "simcard",
        "tariff",
        "bundle",
        "invoice",
        "usage",
        "session",
        "cell",
        "antenna",
        "spectrum",
        "circuit",
        "trunk",
        "switch",
        "gateway",
        "roaming",
        "provisioning",
        "outage",
        "ticket",
        "network",
    ],
    qualifiers: &[
        "active",
        "suspended",
        "prepaid",
        "postpaid",
        "domestic",
        "international",
        "billed",
        "unbilled",
        "peak",
        "offpeak",
    ],
    attr_suffixes: &[
        "identifier",
        "number",
        "code",
        "status",
        "type",
        "date",
        "duration",
        "volume",
        "capacity",
        "bandwidth",
        "priority",
        "description",
    ],
    abbreviations: &[
        ("subscriber", "subs"),
        ("handset", "hs"),
        ("invoice", "inv"),
        ("session", "sess"),
        ("antenna", "ant"),
        ("circuit", "cct"),
        ("gateway", "gw"),
        ("network", "net"),
        ("identifier", "id"),
        ("number", "nbr"),
        ("duration", "dur"),
        ("bandwidth", "bw"),
        ("description", "desc"),
        ("provisioning", "prov"),
    ],
};

/// All calibrated domains, in report order.
pub fn domains() -> Vec<&'static DomainSpec> {
    vec![&CLINICAL, &FINANCE, &GEOSPATIAL, &TELECOM]
}

/// Default knobs per domain (each stresses a different regime).
pub fn default_knobs(spec: &DomainSpec) -> DomainKnobs {
    match spec.name {
        // Chart-speak: abbreviation-heavy, well documented.
        "clinical" => DomainKnobs {
            entities: 12,
            attrs_per_entity: 5.0,
            abbreviation_density: 0.45,
            doc_coverage: 0.85,
            structural_skew: 2.0,
            near_duplicate_rate: 0.15,
        },
        // Product sprawl: many near-duplicate decoys.
        "finance" => DomainKnobs {
            entities: 14,
            attrs_per_entity: 5.0,
            abbreviation_density: 0.25,
            doc_coverage: 0.9,
            structural_skew: 2.0,
            near_duplicate_rate: 0.35,
        },
        // Field data: documentation is scarce.
        "geospatial" => DomainKnobs {
            entities: 12,
            attrs_per_entity: 4.0,
            abbreviation_density: 0.3,
            doc_coverage: 0.35,
            structural_skew: 2.0,
            near_duplicate_rate: 0.1,
        },
        // Inventory: a few huge entities dominate the attribute budget.
        "telecom" => DomainKnobs {
            entities: 16,
            attrs_per_entity: 6.0,
            abbreviation_density: 0.3,
            doc_coverage: 0.75,
            structural_skew: 4.0,
            near_duplicate_rate: 0.2,
        },
        _ => DomainKnobs::default(),
    }
}

/// The standard benchmark suite: every domain at its default knobs
/// under one seed.
pub fn standard_suite(seed: u64) -> Vec<EvalCase> {
    domains()
        .into_iter()
        .map(|spec| generate_case(spec, &default_knobs(spec), seed))
        .collect()
}

/// Generate one schema pair with gold standard for `spec` under
/// `knobs` and `seed`. Deterministic: equal inputs produce structurally
/// identical output (identical names, docs, gold and stats).
pub fn generate_case(spec: &DomainSpec, knobs: &DomainKnobs, seed: u64) -> EvalCase {
    let mut rng = StdRng::seed_from_u64(seed ^ spec.salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut stats = GenStats::default();

    let src_id = format!("{}_src", spec.name);
    let tgt_id = format!("{}_tgt", spec.name);
    let mut source = SchemaGraph::new(src_id, Metamodel::EntityRelationship);
    let mut target = SchemaGraph::new(tgt_id, Metamodel::EntityRelationship);
    let mut gold = GoldStandard::new();

    let entities = knobs.entities.max(1);
    let total_attrs = ((entities as f64 * knobs.attrs_per_entity).round() as usize).max(entities);
    let budget = split_budget(&mut rng, total_attrs, entities, knobs.structural_skew);

    let mut src_entity_names: HashSet<String> = HashSet::new();
    let mut tgt_entity_names: HashSet<String> = HashSet::new();

    // Decoys are spawned by systematic (stratified) sampling with a
    // random phase rather than independent Bernoulli draws: per schema
    // the decoy count then stays within one of entities × rate, so the
    // observed near-duplicate rate tracks the knob tightly — which is
    // the point of a *calibrated* generator. The expectation per
    // entity is still exactly `near_duplicate_rate`.
    let mut decoy_acc = rng.next_f64();

    for &attr_budget in budget.iter() {
        // Entity name: QUALIFIER_NOUN, extended until unique.
        let mut tokens = vec![
            pick(&mut rng, spec.qualifiers).to_owned(),
            pick(&mut rng, spec.entity_nouns).to_owned(),
        ];
        while !src_entity_names.insert(snake_upper(&tokens)) {
            tokens.push(pick(&mut rng, spec.entity_nouns).to_owned());
        }
        let src_name = snake_upper(&tokens);
        let mut tgt_name = camel(&abbreviate(&mut rng, spec, knobs, &tokens, &mut stats));
        while !tgt_entity_names.insert(tgt_name.clone()) {
            tgt_name.push_str("Alt");
        }
        stats.entities += 1;

        let subject = tokens.join(" ");
        let (src_doc, tgt_doc) = doc_pair(&mut rng, &subject, 11.1, knobs, &mut stats);
        let src_ent = source.add_child(
            source.root(),
            EdgeKind::ContainsEntity,
            with_opt_doc(SchemaElement::new(ElementKind::Entity, &src_name), src_doc),
        );
        let tgt_ent = target.add_child(
            target.root(),
            EdgeKind::ContainsEntity,
            with_opt_doc(SchemaElement::new(ElementKind::Entity, &tgt_name), tgt_doc),
        );
        gold.add(source.name_path(src_ent), target.name_path(tgt_ent));

        // Attributes: NOUN_SUFFIX, unique per entity.
        let n_attrs = attr_budget.max(1);
        let mut attr_names: HashSet<String> = HashSet::new();
        let mut attr_plans: Vec<(Vec<String>, DataType)> = Vec::new();
        for _ in 0..n_attrs {
            let mut a_tokens = vec![
                pick(&mut rng, spec.entity_nouns).to_owned(),
                pick(&mut rng, spec.attr_suffixes).to_owned(),
            ];
            while !attr_names.insert(snake_upper(&a_tokens)) {
                a_tokens.insert(0, pick(&mut rng, spec.qualifiers).to_owned());
            }
            let data_type = draw_type(&mut rng);
            let src_a = snake_upper(&a_tokens);
            let tgt_a = camel(&abbreviate(&mut rng, spec, knobs, &a_tokens, &mut stats));
            stats.attributes += 1;

            let suffix = a_tokens.last().cloned().unwrap_or_default();
            let (sd, td) = doc_pair(&mut rng, &suffix, 16.4, knobs, &mut stats);
            let src_at = source.add_child(
                src_ent,
                EdgeKind::ContainsAttribute,
                with_opt_doc(
                    SchemaElement::new(ElementKind::Attribute, &src_a).with_type(data_type.clone()),
                    sd,
                ),
            );
            let tgt_at = target.add_child(
                tgt_ent,
                EdgeKind::ContainsAttribute,
                with_opt_doc(
                    SchemaElement::new(ElementKind::Attribute, &tgt_a).with_type(data_type.clone()),
                    td,
                ),
            );
            gold.add(source.name_path(src_at), target.name_path(tgt_at));
            attr_plans.push((a_tokens, data_type));
        }

        // Adversarial near-duplicate: a decoy entity in the target that
        // clones this entity's naming but is NOT a correspondence.
        stats.near_dup_candidates += 1;
        decoy_acc += knobs.near_duplicate_rate;
        if decoy_acc >= 1.0 {
            decoy_acc -= 1.0;
            stats.near_dups += 1;
            let mut d_tokens = tokens.clone();
            d_tokens.push(pick(&mut rng, spec.qualifiers).to_owned());
            let mut d_name = camel(&abbreviate(&mut rng, spec, knobs, &d_tokens, &mut stats));
            while !tgt_entity_names.insert(d_name.clone()) {
                d_name.push_str("Dup");
            }
            // The decoy reuses the real entity's documentation subject,
            // so doc voters cannot trivially separate them.
            let (_, d_doc) = doc_pair(&mut rng, &subject, 11.1, knobs, &mut stats);
            let decoy = target.add_child(
                target.root(),
                EdgeKind::ContainsEntity,
                with_opt_doc(SchemaElement::new(ElementKind::Entity, &d_name), d_doc),
            );
            for (a_tokens, data_type) in attr_plans.iter().take(3) {
                let d_a = camel(&abbreviate(&mut rng, spec, knobs, a_tokens, &mut stats));
                target.add_child(
                    decoy,
                    EdgeKind::ContainsAttribute,
                    SchemaElement::new(ElementKind::Attribute, d_a).with_type(data_type.clone()),
                );
            }
        }
    }

    EvalCase {
        domain: spec.name,
        seed,
        knobs: *knobs,
        pair: SchemaPair {
            source,
            target,
            gold,
        },
        stats,
    }
}

/// Abbreviate each abbreviable token with probability
/// `abbreviation_density`, counting eligibility and application.
fn abbreviate(
    rng: &mut StdRng,
    spec: &DomainSpec,
    knobs: &DomainKnobs,
    tokens: &[String],
    stats: &mut GenStats,
) -> Vec<String> {
    tokens
        .iter()
        .map(|t| {
            if let Some((_, abbr)) = spec.abbreviations.iter().find(|(full, _)| full == t) {
                stats.abbrev_eligible += 1;
                if rng.gen_bool(knobs.abbreviation_density) {
                    stats.abbrev_applied += 1;
                    return (*abbr).to_owned();
                }
            }
            t.clone()
        })
        .collect()
}

/// Draw one definition text and include it on each side with
/// probability `doc_coverage` (two counted slots). Both sides share the
/// text when both are documented — matching real registries, where the
/// same steward wrote both definitions.
fn doc_pair(
    rng: &mut StdRng,
    subject: &str,
    target_words: f64,
    knobs: &DomainKnobs,
    stats: &mut GenStats,
) -> (Option<String>, Option<String>) {
    let text = definition(rng, subject, target_words);
    stats.doc_slots += 2;
    let on_src = rng.gen_bool(knobs.doc_coverage);
    let on_tgt = rng.gen_bool(knobs.doc_coverage);
    stats.doc_present += usize::from(on_src) + usize::from(on_tgt);
    (on_src.then(|| text.clone()), on_tgt.then_some(text))
}

fn draw_type(rng: &mut StdRng) -> DataType {
    match rng.gen_range(0..6u32) {
        0 => DataType::Integer,
        1 => DataType::Decimal,
        2 => DataType::Date,
        3 => DataType::VarChar(8 * (1 + rng.gen_range(0..8u32))),
        4 => DataType::Boolean,
        _ => DataType::Text,
    }
}

fn with_opt_doc(el: SchemaElement, doc: Option<String>) -> SchemaElement {
    match doc {
        Some(d) => el.with_doc(d),
        None => el,
    }
}

fn snake_upper(tokens: &[String]) -> String {
    tokens.join("_").to_uppercase()
}

fn camel(tokens: &[String]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i == 0 {
            out.push_str(&t.to_lowercase());
        } else {
            let lower = t.to_lowercase();
            let mut c = lower.chars();
            if let Some(f) = c.next() {
                out.extend(f.to_uppercase());
                out.push_str(c.as_str());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_loaders::{ErLoader, SchemaLoader};

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(&CLINICAL, &default_knobs(&CLINICAL), 7);
        let b = generate_case(&CLINICAL, &default_knobs(&CLINICAL), 7);
        assert_eq!(
            iwb_loaders::to_er_text(&a.pair.source),
            iwb_loaders::to_er_text(&b.pair.source)
        );
        assert_eq!(
            iwb_loaders::to_er_text(&a.pair.target),
            iwb_loaders::to_er_text(&b.pair.target)
        );
        assert_eq!(a.pair.gold.len(), b.pair.gold.len());
        let c = generate_case(&CLINICAL, &default_knobs(&CLINICAL), 8);
        assert_ne!(
            iwb_loaders::to_er_text(&a.pair.source),
            iwb_loaders::to_er_text(&c.pair.source),
            "different seeds must differ"
        );
    }

    #[test]
    fn domains_differ_under_equal_seed() {
        let a = generate_case(&CLINICAL, &DomainKnobs::default(), 7);
        let b = generate_case(&FINANCE, &DomainKnobs::default(), 7);
        assert_ne!(
            iwb_loaders::to_er_text(&a.pair.source),
            iwb_loaders::to_er_text(&b.pair.source)
        );
    }

    #[test]
    fn er_text_round_trips_name_paths() {
        for case in standard_suite(3) {
            for graph in [&case.pair.source, &case.pair.target] {
                let text = iwb_loaders::to_er_text(graph);
                let reloaded = ErLoader
                    .load(&text, graph.id().as_str())
                    .expect("generated schema must reload");
                let paths = |g: &SchemaGraph| {
                    let mut v: Vec<String> = g.ids().skip(1).map(|i| g.name_path(i)).collect();
                    v.sort();
                    v
                };
                assert_eq!(paths(graph), paths(&reloaded), "{}", graph.id().as_str());
            }
        }
    }

    #[test]
    fn decoys_are_outside_the_gold_standard() {
        let knobs = DomainKnobs {
            near_duplicate_rate: 1.0,
            ..DomainKnobs::default()
        };
        let case = generate_case(&FINANCE, &knobs, 11);
        assert_eq!(case.stats.near_dups, case.stats.near_dup_candidates);
        // Gold covers exactly the source elements; the target has more
        // (the decoys), and every target-side gold path resolves.
        let tgt_gold: HashSet<&str> = case.pair.gold.iter().map(|(_, t)| t).collect();
        let tgt_paths: HashSet<String> = case
            .pair
            .target
            .ids()
            .skip(1)
            .map(|i| case.pair.target.name_path(i))
            .collect();
        assert!(tgt_gold.len() < tgt_paths.len(), "decoys must add elements");
        for p in &tgt_gold {
            assert!(tgt_paths.contains(*p), "{p}");
        }
    }
}
