//! Shared evaluation harness: ground-truth workloads and scoring.
//!
//! Moved here from `iwb-bench` so that experiment binaries, the golden
//! regression suite, and the curation-replay workload all score
//! against one implementation. `iwb-bench` re-exports these names, so
//! existing experiment code is unaffected.

use iwb_harmony::filters::{FilterSet, Link, LinkFilter};
use iwb_harmony::{HarmonyEngine, PrMetrics};
use iwb_registry::perturb::{perturb_schema, set_doc_density, PerturbConfig};
use iwb_registry::{generate_registry, GeneratorConfig, SchemaPair};
use std::collections::HashMap;

/// Standard workload: `n` registry models of roughly
/// `elements_per_model` entities/relationships each (with the Table 1
/// attribute and domain densities), each perturbed into a
/// (source, target, gold) pair.
pub fn standard_pairs(
    seed: u64,
    n: usize,
    elements_per_model: usize,
    perturb: &PerturbConfig,
) -> Vec<SchemaPair> {
    let cfg = GeneratorConfig {
        seed,
        models: n,
        elements: n * elements_per_model,
        attributes: n * elements_per_model * 5,
        domain_values: n * elements_per_model * 8,
        ..GeneratorConfig::default()
    };
    generate_registry(cfg)
        .models
        .into_iter()
        .map(|m| perturb_schema(&m, perturb))
        .collect()
}

/// Apply a documentation density to both sides of a pair (E1's sweep).
pub fn with_doc_density(pair: &SchemaPair, density: f64, seed: u64) -> SchemaPair {
    SchemaPair {
        source: set_doc_density(&pair.source, density, seed),
        target: set_doc_density(&pair.target, density, seed.wrapping_add(1)),
        gold: pair.gold.clone(),
    }
}

/// Predict links from an engine run: best-per-element links whose
/// confidence clears `threshold`.
pub fn predict(
    engine: &mut HarmonyEngine,
    pair: &SchemaPair,
    threshold: f64,
) -> (Vec<Link>, usize) {
    let result = engine.run(&pair.source, &pair.target, &HashMap::new());
    let filters = FilterSet::new()
        .with_link(LinkFilter::BestPerElement)
        .with_link(LinkFilter::ConfidenceAtLeast(threshold));
    let links = filters.visible(
        &result.matrix,
        &pair.source,
        &pair.target,
        &std::collections::HashSet::new(),
    );
    (links, result.flooding_iterations)
}

/// Score an engine against a pair's gold standard.
pub fn score(engine: &mut HarmonyEngine, pair: &SchemaPair, threshold: f64) -> PrMetrics {
    let (links, _) = predict(engine, pair, threshold);
    pair.gold.score(&pair.source, &pair.target, &links)
}

/// Micro-average several metric observations.
pub fn micro_average(metrics: &[PrMetrics]) -> PrMetrics {
    PrMetrics {
        true_positives: metrics.iter().map(|m| m.true_positives).sum(),
        predicted: metrics.iter().map(|m| m.predicted).sum(),
        actual: metrics.iter().map(|m| m.actual).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{default_knobs, domains, standard_suite};

    #[test]
    fn standard_pairs_produce_gold() {
        let pairs = standard_pairs(42, 2, 8, &PerturbConfig::mild(1));
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|p| !p.gold.is_empty()));
    }

    #[test]
    fn engine_beats_chance_on_mild_perturbation() {
        let pairs = standard_pairs(42, 1, 10, &PerturbConfig::mild(1));
        let mut engine = HarmonyEngine::default();
        let m = score(&mut engine, &pairs[0], 0.25);
        assert!(m.f1() > 0.5, "engine too weak: {m}");
    }

    #[test]
    fn doc_density_zero_strips_documentation() {
        let pairs = standard_pairs(42, 1, 8, &PerturbConfig::mild(1));
        let bare = with_doc_density(&pairs[0], 0.0, 9);
        assert!(bare
            .source
            .iter()
            .filter(|(_, e)| matches!(
                e.kind,
                iwb_model::ElementKind::Entity | iwb_model::ElementKind::Attribute
            ))
            .all(|(_, e)| e.documentation.is_none()));
        assert_eq!(bare.gold.len(), pairs[0].gold.len());
    }

    #[test]
    fn micro_average_pools_counts() {
        let a = PrMetrics {
            true_positives: 1,
            predicted: 2,
            actual: 2,
        };
        let b = PrMetrics {
            true_positives: 3,
            predicted: 4,
            actual: 6,
        };
        let avg = micro_average(&[a, b]);
        assert_eq!(avg.true_positives, 4);
        assert_eq!(avg.predicted, 6);
        assert_eq!(avg.actual, 8);
    }

    #[test]
    fn engine_beats_chance_on_every_calibrated_domain() {
        for case in standard_suite(42) {
            let mut engine = HarmonyEngine::default();
            let m = score(&mut engine, &case.pair, 0.25);
            assert!(m.f1() > 0.3, "{}: engine too weak: {m}", case.domain);
        }
        assert_eq!(domains().len(), 4);
        for spec in domains() {
            let k = default_knobs(spec);
            assert!(k.entities >= 10, "{} too small for the suite", spec.name);
        }
    }
}
