//! # iwb-eval — benchmark suite & curation-replay workload
//!
//! The evaluation layer above the matcher: calibrated synthetic
//! domains beyond the registry's aviation/procurement/personnel
//! vocabulary ([`domains`]), the shared scoring harness the experiment
//! binaries use ([`harness`]), and a scripted-oracle curation replay
//! that measures how match quality and voter weights evolve under
//! feedback ([`replay`]) — in-process or against a live `workbenchd`.
//!
//! The `bench_eval` binary in `iwb-bench` sweeps engines × thresholds
//! × blocking-k over these domains and gates the committed
//! `BENCH_eval.json` leaderboard against pinned per-domain F1 floors.

pub mod domains;
pub mod harness;
pub mod replay;

pub use domains::{
    default_knobs, domains, generate_case, standard_suite, DomainKnobs, DomainSpec, EvalCase,
    GenStats,
};
pub use harness::{micro_average, predict, score, standard_pairs, with_doc_density};
pub use replay::{
    run_replay, ClientTransport, OracleConfig, ReplayOutcome, ReplayTransport, RoundMetrics,
    ShellTransport,
};
