//! Curation-replay workload: a scripted oracle drives the engine's
//! feedback loop.
//!
//! §4.3 of the paper argues the interesting number is not one-shot
//! match quality but how fast quality improves as an analyst confirms
//! and rejects proposals. This module replays that curation session
//! mechanically: each round the oracle fetches the engine's top-k
//! undecided proposals, accepts the ones in the gold standard, rejects
//! the rest (through the ordinary locked-cell `accept`/`reject`
//! commands), re-matches, and records precision/recall/F1 plus how far
//! the vote-merger weights moved.
//!
//! The oracle speaks the workbench *shell language*, through a
//! [`ReplayTransport`]. Two transports ship: [`ShellTransport`] runs
//! in-process, [`ClientTransport`] drives a live `workbenchd` over TCP
//! — the identical command stream, so a replay exercises the daemon's
//! journal path for free. Metrics are computed from integer
//! true-positive/predicted/actual counts, so equal sessions produce
//! bit-identical P/R/F1 regardless of transport, thread count, or
//! cache mode.
//!
//! The oracle need not be perfect: [`OracleConfig::noise`] makes it
//! wrongly accept a non-gold proposal with that probability (seeded by
//! [`OracleConfig::noise_seed`], one draw per reviewed proposal), which
//! models analyst mistakes and lets the suite check that re-weighting
//! degrades gracefully and the plateau detector stays honest under bad
//! feedback.

use crate::domains::EvalCase;
use iwb_core::shell::Shell;
use iwb_harmony::PrMetrics;
use iwb_loaders::to_er_text;
use iwb_rng::StdRng;
use iwb_server::Client;
use std::collections::HashSet;

/// How a replay talks to a workbench: in-process shell or TCP client.
pub trait ReplayTransport {
    /// Execute one shell-language command, optionally with a heredoc
    /// body, returning the command's output text.
    fn execute(&mut self, command: &str, heredoc: Option<&str>) -> Result<String, String>;
}

/// In-process transport around [`iwb_core::shell::Shell`].
#[derive(Default)]
pub struct ShellTransport {
    /// The wrapped shell (public so tests can pre-set `match-config`).
    pub shell: Shell,
}

impl ShellTransport {
    /// A fresh workbench shell.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplayTransport for ShellTransport {
    fn execute(&mut self, command: &str, heredoc: Option<&str>) -> Result<String, String> {
        self.shell
            .execute(command, heredoc)
            .map_err(|e| e.to_string())
    }
}

/// TCP transport around an attached [`iwb_server::Client`] session.
pub struct ClientTransport<'a>(pub &'a mut Client);

impl ReplayTransport for ClientTransport<'_> {
    fn execute(&mut self, command: &str, heredoc: Option<&str>) -> Result<String, String> {
        let resp = match heredoc {
            Some(body) => self.0.request_with_heredoc(command, body),
            None => self.0.request(command),
        }
        .map_err(|e| e.to_string())?;
        if resp.ok {
            Ok(resp.body)
        } else {
            Err(resp.body)
        }
    }
}

/// Oracle parameters.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Feedback rounds to run after the baseline round 0.
    pub rounds: usize,
    /// Proposals the oracle reviews per round.
    pub k: usize,
    /// Confidence threshold for the scored link set.
    pub threshold: f64,
    /// A round whose re-match moved no voter weight further than this
    /// counts as plateaued.
    pub plateau_eps: f64,
    /// Probability that the oracle wrongly *accepts* a proposal that is
    /// not in the gold standard (an analyst mistake). `0.0` keeps the
    /// oracle perfect; draws come from a generator seeded with
    /// [`OracleConfig::noise_seed`], one draw per reviewed proposal, so
    /// runs are reproducible for any noise level.
    pub noise: f64,
    /// Seed for the noise draws (independent of the case seed, so the
    /// same session can be replayed with different mistake patterns).
    pub noise_seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            rounds: 5,
            k: 8,
            threshold: 0.25,
            plateau_eps: 1e-9,
            noise: 0.0,
            noise_seed: 0x0a_c1de,
        }
    }
}

/// One feedback round's outcome.
#[derive(Debug, Clone)]
pub struct RoundMetrics {
    /// Round index (0 = baseline, before any feedback).
    pub round: usize,
    /// Proposals the oracle confirmed this round.
    pub accepted: usize,
    /// Proposals the oracle rejected this round.
    pub rejected: usize,
    /// Confirmations that were oracle *mistakes* — non-gold proposals
    /// accepted by a noise draw (a subset of `accepted`).
    pub noisy_accepts: usize,
    /// Quality of the thresholded link set after this round's re-match.
    pub metrics: PrMetrics,
    /// Largest per-voter weight movement this round's re-match caused.
    pub max_weight_delta: f64,
}

/// A full replay: per-round curves plus convergence summary.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Round 0 (baseline) through round `rounds`.
    pub rounds: Vec<RoundMetrics>,
    /// Final per-voter weights, in voter order.
    pub weights: Vec<(String, f64)>,
    /// First feedback round from which no weight moved again
    /// (re-weighting converged), if any.
    pub rounds_to_plateau: Option<usize>,
}

impl ReplayOutcome {
    /// F1 per round, in round order.
    pub fn f1_curve(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.metrics.f1()).collect()
    }

    /// True when each round's F1 is no worse than the previous round's
    /// minus `eps`, i.e. feedback monotonically helps (or plateaus).
    pub fn monotone_or_plateau(&self, eps: f64) -> bool {
        self.f1_curve().windows(2).all(|w| w[1] >= w[0] - eps)
    }

    /// Total oracle mistakes (noisy accepts) across all rounds.
    pub fn noisy_accepts(&self) -> usize {
        self.rounds.iter().map(|r| r.noisy_accepts).sum()
    }
}

/// Replay a curation session for `case` over `transport`.
///
/// Loads both schemas (as ER text), matches, then runs
/// `cfg.rounds` oracle rounds. Returns per-round metrics; errors carry
/// the failing command's message.
pub fn run_replay<T: ReplayTransport>(
    transport: &mut T,
    case: &EvalCase,
    cfg: &OracleConfig,
) -> Result<ReplayOutcome, String> {
    let src = case.pair.source.id().as_str().to_owned();
    let tgt = case.pair.target.id().as_str().to_owned();
    let gold: HashSet<(&str, &str)> = case.pair.gold.iter().collect();

    transport.execute(
        &format!("load er {src}"),
        Some(&to_er_text(&case.pair.source)),
    )?;
    transport.execute(
        &format!("load er {tgt}"),
        Some(&to_er_text(&case.pair.target)),
    )?;
    transport.execute(&format!("match {src} {tgt}"), None)?;

    let mut prev_weights = parse_weights(&transport.execute("weights", None)?)?;
    let mut rounds = vec![RoundMetrics {
        round: 0,
        accepted: 0,
        rejected: 0,
        noisy_accepts: 0,
        metrics: measure(transport, &src, &tgt, &gold, cfg)?,
        max_weight_delta: 0.0,
    }];

    // One draw per reviewed proposal — even at noise 0.0 — so the
    // decision stream for a given (case, noise_seed) pair is a pure
    // function of the proposal order, never of earlier flips.
    let mut noise_rng = StdRng::seed_from_u64(cfg.noise_seed);

    for round in 1..=cfg.rounds {
        let listing = transport.execute(
            &format!("proposals {src} {tgt} k {} undecided", cfg.k),
            None,
        )?;
        let (mut accepted, mut rejected, mut noisy_accepts) = (0, 0, 0);
        for (sp, tp, _) in parse_links(&listing)? {
            let flip = noise_rng.next_f64() < cfg.noise;
            let verb = if gold.contains(&(sp.as_str(), tp.as_str())) {
                accepted += 1;
                "accept"
            } else if flip {
                accepted += 1;
                noisy_accepts += 1;
                "accept"
            } else {
                rejected += 1;
                "reject"
            };
            transport.execute(&format!("{verb} {src} {tgt} {sp} {tp}"), None)?;
        }
        transport.execute(&format!("match {src} {tgt}"), None)?;

        let weights = parse_weights(&transport.execute("weights", None)?)?;
        let max_weight_delta = weights
            .iter()
            .zip(&prev_weights)
            .map(|((_, w), (_, p))| (w - p).abs())
            .fold(0.0f64, f64::max);
        prev_weights = weights;

        rounds.push(RoundMetrics {
            round,
            accepted,
            rejected,
            noisy_accepts,
            metrics: measure(transport, &src, &tgt, &gold, cfg)?,
            max_weight_delta,
        });
    }

    // Convergence: the first feedback round from which every later
    // round (itself included) moved no weight beyond eps.
    let mut rounds_to_plateau = None;
    for r in (1..rounds.len()).rev() {
        if rounds[r].max_weight_delta < cfg.plateau_eps {
            rounds_to_plateau = Some(r);
        } else {
            break;
        }
    }

    Ok(ReplayOutcome {
        rounds,
        weights: prev_weights,
        rounds_to_plateau,
    })
}

/// Score the current thresholded proposal set against the gold paths.
fn measure<T: ReplayTransport>(
    transport: &mut T,
    src: &str,
    tgt: &str,
    gold: &HashSet<(&str, &str)>,
    cfg: &OracleConfig,
) -> Result<PrMetrics, String> {
    let listing = transport.execute(
        &format!("proposals {src} {tgt} threshold {}", cfg.threshold),
        None,
    )?;
    let predicted = parse_links(&listing)?;
    let true_positives = predicted
        .iter()
        .filter(|(sp, tp, _)| gold.contains(&(sp.as_str(), tp.as_str())))
        .count();
    Ok(PrMetrics {
        true_positives,
        predicted: predicted.len(),
        actual: gold.len(),
    })
}

/// Parse a `proposals` listing into (source path, target path,
/// confidence) triples. The header line is skipped.
pub fn parse_links(listing: &str) -> Result<Vec<(String, String, f64)>, String> {
    let mut out = Vec::new();
    for line in listing.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let line = line.strip_suffix(" user").unwrap_or(line);
        let (paths, conf) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed proposal line {line:?}"))?;
        let (sp, tp) = paths
            .split_once(" -> ")
            .ok_or_else(|| format!("malformed proposal line {line:?}"))?;
        let conf: f64 = conf
            .parse()
            .map_err(|_| format!("bad confidence in {line:?}"))?;
        out.push((sp.to_owned(), tp.to_owned(), conf));
    }
    Ok(out)
}

/// Parse a `weights` listing into (voter, weight) pairs in voter order.
pub fn parse_weights(listing: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in listing.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let (name, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed weight line {line:?}"))?;
        let weight: f64 = weight
            .parse()
            .map_err(|_| format!("bad weight in {line:?}"))?;
        out.push((name.to_owned(), weight));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{generate_case, DomainKnobs, CLINICAL};

    fn small_case() -> EvalCase {
        let knobs = DomainKnobs {
            entities: 5,
            attrs_per_entity: 3.0,
            ..DomainKnobs::default()
        };
        generate_case(&CLINICAL, &knobs, 77)
    }

    #[test]
    fn parse_links_handles_user_marker_and_signs() {
        let listing = "proposals a -> b: 2 link(s) (threshold 0.25)\n\
                       a/E/x -> b/e/y +0.812345 user\n\
                       a/E/z -> b/e/w -1.000000\n";
        let links = parse_links(listing).unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].0, "a/E/x");
        assert_eq!(links[0].1, "b/e/y");
        assert!((links[0].2 - 0.812345).abs() < 1e-12);
        assert_eq!(links[1].2, -1.0);
        assert!(parse_links("header\ngarbage without arrow 1.0\n").is_err());
    }

    #[test]
    fn parse_weights_reads_debug_floats() {
        let listing = "weights: epoch=3\nname 1.0\ndoc 1.25\n";
        let w = parse_weights(listing).unwrap();
        assert_eq!(w, vec![("name".into(), 1.0), ("doc".into(), 1.25)]);
    }

    #[test]
    fn replay_improves_f1_and_reports_convergence() {
        let case = small_case();
        let mut t = ShellTransport::new();
        let cfg = OracleConfig::default();
        let outcome = run_replay(&mut t, &case, &cfg).expect("replay");
        assert_eq!(outcome.rounds.len(), cfg.rounds + 1);
        let first = outcome.rounds.first().unwrap().metrics.f1();
        let last = outcome.rounds.last().unwrap().metrics.f1();
        assert!(
            last >= first - 1e-12,
            "feedback must not hurt: {first} -> {last}"
        );
        assert!(
            last > 0.9,
            "oracle-confirmed session should approach perfect F1, got {last}"
        );
        // The oracle decided something.
        let decisions: usize = outcome.rounds.iter().map(|r| r.accepted + r.rejected).sum();
        assert!(decisions > 0);
        assert_eq!(
            outcome.weights.len(),
            iwb_harmony::HarmonyEngine::default().voter_names().len()
        );
    }

    /// A case whose top-k proposals include non-gold decoys, so the
    /// oracle actually has rejects for noise to flip.
    fn decoy_heavy_case() -> EvalCase {
        let knobs = DomainKnobs {
            entities: 6,
            attrs_per_entity: 3.0,
            near_duplicate_rate: 1.0,
            ..DomainKnobs::default()
        };
        generate_case(&CLINICAL, &knobs, 77)
    }

    #[test]
    fn noisy_oracle_records_mistakes_and_keeps_plateau_honest() {
        let case = decoy_heavy_case();
        let cfg = OracleConfig {
            noise: 0.3,
            ..OracleConfig::default()
        };
        let outcome = run_replay(&mut ShellTransport::new(), &case, &cfg).expect("noisy replay");
        assert!(
            outcome.noisy_accepts() >= 1,
            "noise 0.3 over {} rounds should flip at least one reject",
            cfg.rounds
        );
        for r in &outcome.rounds {
            assert!(r.noisy_accepts <= r.accepted, "noisy ⊆ accepted: {r:?}");
        }
        // A claimed plateau must still mean what it says: every round
        // from it onward moved no weight beyond eps, mistakes included.
        if let Some(p) = outcome.rounds_to_plateau {
            assert!(outcome.rounds[p..]
                .iter()
                .all(|r| r.max_weight_delta < cfg.plateau_eps));
        }
        // A perfect oracle records zero mistakes no matter the seed.
        let clean =
            run_replay(&mut ShellTransport::new(), &case, &OracleConfig::default()).unwrap();
        assert_eq!(clean.noisy_accepts(), 0);
    }

    #[test]
    fn replay_is_deterministic_in_process() {
        let case = small_case();
        let cfg = OracleConfig::default();
        let a = run_replay(&mut ShellTransport::new(), &case, &cfg).unwrap();
        let b = run_replay(&mut ShellTransport::new(), &case, &cfg).unwrap();
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.metrics, rb.metrics);
            assert_eq!(ra.max_weight_delta.to_bits(), rb.max_weight_delta.to_bits());
        }
        assert_eq!(a.rounds_to_plateau, b.rounds_to_plateau);
    }
}
