//! Table-1-style calibration pins for the domain generators, in the
//! same spirit as `iwb-registry`'s pinned registry statistics: the
//! standard suite under the canonical seed must reproduce these exact
//! counts and rates. A change here means the generator's draw sequence
//! changed — which silently invalidates every committed benchmark
//! number — so the table is pinned tight. Re-derive it with
//! `cargo test -p iwb-eval --test calibration -- --nocapture` and
//! update deliberately if the generator is *meant* to change.

use iwb_eval::domains::{default_knobs, domains, generate_case};

/// Same canonical seed the registry Table 1 reproduction uses.
const CAL_SEED: u64 = 20060406;

#[test]
fn standard_suite_counts_are_pinned() {
    let mut table = String::from(
        "domain      entities  attrs  gold  src_els  tgt_els  abbrev  doc    neardup\n",
    );
    for spec in domains() {
        let case = generate_case(spec, &default_knobs(spec), CAL_SEED);
        table.push_str(&format!(
            "{:<12}{:>8}{:>7}{:>6}{:>9}{:>9}{:>8.3}{:>7.3}{:>9.3}\n",
            case.domain,
            case.stats.entities,
            case.stats.attributes,
            case.pair.gold.len(),
            case.pair.source.len(),
            case.pair.target.len(),
            case.stats.abbreviation_rate(),
            case.stats.doc_rate(),
            case.stats.near_dup_rate(),
        ));
    }
    let expected = "\
domain      entities  attrs  gold  src_els  tgt_els  abbrev  doc    neardup
clinical          12     61    73       74       78   0.522  0.853    0.167
finance           14     71    85       86      102   0.298  0.933    0.357
geospatial        12     50    62       63       65   0.289  0.294    0.083
telecom           16    101   117      118      131   0.379  0.773    0.250
";
    println!("{table}");
    assert_eq!(table, expected, "\ncalibration drifted; actual:\n{table}");
}
