//! Property tests for the calibrated domain generators: every gold
//! pair must reference existing elements, generation must be
//! deterministic under seed, and the observed abbreviation /
//! near-duplicate / documentation rates must track the requested knobs
//! within ±10% when aggregated over 100 seeds.

use iwb_eval::domains::{default_knobs, domains, generate_case, DomainKnobs, GenStats};
use iwb_model::ElementPath;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every gold pair resolves to an element on both sides, for any
    /// domain and any knob setting in the supported range.
    #[test]
    fn gold_pairs_resolve_in_both_schemas(
        seed in 0u64..10_000,
        which in 0usize..4,
        near_dup in 0.0f64..0.6,
        abbrev in 0.0f64..0.8,
        doc in 0.0f64..1.0,
    ) {
        let spec = domains()[which];
        let knobs = DomainKnobs {
            entities: 8,
            attrs_per_entity: 4.0,
            near_duplicate_rate: near_dup,
            abbreviation_density: abbrev,
            doc_coverage: doc,
            ..default_knobs(spec)
        };
        let case = generate_case(spec, &knobs, seed);
        prop_assert!(!case.pair.gold.is_empty());
        for (sp, tp) in case.pair.gold.iter() {
            prop_assert!(
                ElementPath::parse(sp).resolve(&case.pair.source).is_some(),
                "unresolvable source path {sp}"
            );
            prop_assert!(
                ElementPath::parse(tp).resolve(&case.pair.target).is_some(),
                "unresolvable target path {tp}"
            );
        }
        // Gold covers every source entity and attribute exactly once.
        prop_assert_eq!(
            case.pair.gold.len(),
            case.stats.entities + case.stats.attributes
        );
    }

    /// Equal (domain, knobs, seed) produce byte-identical schemas and
    /// identical draw statistics.
    #[test]
    fn generation_is_deterministic_under_seed(
        seed in 0u64..10_000,
        which in 0usize..4,
    ) {
        let spec = domains()[which];
        let knobs = default_knobs(spec);
        let a = generate_case(spec, &knobs, seed);
        let b = generate_case(spec, &knobs, seed);
        prop_assert_eq!(
            iwb_loaders::to_er_text(&a.pair.source),
            iwb_loaders::to_er_text(&b.pair.source)
        );
        prop_assert_eq!(
            iwb_loaders::to_er_text(&a.pair.target),
            iwb_loaders::to_er_text(&b.pair.target)
        );
        prop_assert_eq!(a.stats, b.stats);
        let mut ga: Vec<_> = a.pair.gold.iter().collect();
        let mut gb: Vec<_> = b.pair.gold.iter().collect();
        ga.sort();
        gb.sort();
        prop_assert_eq!(ga, gb);
    }
}

/// Aggregated over 100 seeds, each domain's observed rates stay within
/// ±10% (relative) of the requested knob.
#[test]
fn knob_rates_track_requests_within_ten_percent_over_100_seeds() {
    for spec in domains() {
        let knobs = default_knobs(spec);
        let mut agg = GenStats::default();
        for seed in 0..100u64 {
            agg.absorb(&generate_case(spec, &knobs, seed).stats);
        }
        let close = |observed: f64, requested: f64, what: &str| {
            assert!(
                (observed - requested).abs() <= requested * 0.1,
                "{}: {what} observed {observed:.4} vs requested {requested:.4} (±10%)",
                spec.name
            );
        };
        close(
            agg.abbreviation_rate(),
            knobs.abbreviation_density,
            "abbreviation density",
        );
        close(
            agg.near_dup_rate(),
            knobs.near_duplicate_rate,
            "near-duplicate rate",
        );
        close(agg.doc_rate(), knobs.doc_coverage, "documentation coverage");
    }
}
