//! The curation-replay determinism contract: identical seeds and
//! oracle script produce `f64::to_bits`-identical per-round
//! precision/recall/F1 and weight deltas across match thread counts
//! {1, 2, 8, auto} × cache on/off.

use iwb_eval::domains::{generate_case, DomainKnobs, CLINICAL, TELECOM};
use iwb_eval::replay::{run_replay, OracleConfig, ShellTransport};
use iwb_eval::EvalCase;

fn small_case(spec: &iwb_eval::DomainSpec) -> EvalCase {
    let knobs = DomainKnobs {
        entities: 6,
        attrs_per_entity: 3.0,
        ..iwb_eval::default_knobs(spec)
    };
    generate_case(spec, &knobs, 4242)
}

/// Bit patterns of everything float-valued a replay reports.
fn replay_bits(case: &EvalCase, threads: &str, cache: &str) -> Vec<(u64, u64, u64, u64)> {
    let mut t = ShellTransport::new();
    t.shell
        .execute(
            &format!("match-config threads {threads} cache {cache}"),
            None,
        )
        .expect("match-config");
    let outcome = run_replay(&mut t, case, &OracleConfig::default()).expect("replay");
    outcome
        .rounds
        .iter()
        .map(|r| {
            (
                r.metrics.precision().to_bits(),
                r.metrics.recall().to_bits(),
                r.metrics.f1().to_bits(),
                r.max_weight_delta.to_bits(),
            )
        })
        .collect()
}

#[test]
fn replay_metrics_are_bit_identical_across_threads_and_cache() {
    for spec in [&CLINICAL, &TELECOM] {
        let case = small_case(spec);
        let baseline = replay_bits(&case, "1", "on");
        assert!(
            baseline.len() > 1,
            "{}: replay produced no rounds",
            spec.name
        );
        // "0" is the shell's spelling of auto (all cores).
        for threads in ["1", "2", "8", "0"] {
            for cache in ["on", "off"] {
                let got = replay_bits(&case, threads, cache);
                assert_eq!(
                    got, baseline,
                    "{}: replay diverged at threads={threads} cache={cache}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn replay_feedback_curve_is_monotone_or_plateau() {
    let case = small_case(&CLINICAL);
    let mut t = ShellTransport::new();
    let outcome = run_replay(&mut t, &case, &OracleConfig::default()).expect("replay");
    assert!(
        outcome.monotone_or_plateau(1e-9),
        "F1 curve regressed: {:?}",
        outcome.f1_curve()
    );
    let first = outcome.f1_curve()[0];
    let last = *outcome.f1_curve().last().unwrap();
    assert!(last >= first, "feedback hurt: {first} -> {last}");
}
