//! The curation-replay determinism contract: identical seeds and
//! oracle script produce `f64::to_bits`-identical per-round
//! precision/recall/F1 and weight deltas across match thread counts
//! {1, 2, 8, auto} × cache on/off.

use iwb_eval::domains::{generate_case, DomainKnobs, CLINICAL, TELECOM};
use iwb_eval::replay::{run_replay, OracleConfig, ShellTransport};
use iwb_eval::EvalCase;

fn small_case(spec: &iwb_eval::DomainSpec) -> EvalCase {
    let knobs = DomainKnobs {
        entities: 6,
        attrs_per_entity: 3.0,
        ..iwb_eval::default_knobs(spec)
    };
    generate_case(spec, &knobs, 4242)
}

/// Bit patterns of everything float-valued a replay reports.
fn replay_bits(case: &EvalCase, threads: &str, cache: &str) -> Vec<(u64, u64, u64, u64)> {
    let mut t = ShellTransport::new();
    t.shell
        .execute(
            &format!("match-config threads {threads} cache {cache}"),
            None,
        )
        .expect("match-config");
    let outcome = run_replay(&mut t, case, &OracleConfig::default()).expect("replay");
    outcome
        .rounds
        .iter()
        .map(|r| {
            (
                r.metrics.precision().to_bits(),
                r.metrics.recall().to_bits(),
                r.metrics.f1().to_bits(),
                r.max_weight_delta.to_bits(),
            )
        })
        .collect()
}

#[test]
fn replay_metrics_are_bit_identical_across_threads_and_cache() {
    for spec in [&CLINICAL, &TELECOM] {
        let case = small_case(spec);
        let baseline = replay_bits(&case, "1", "on");
        assert!(
            baseline.len() > 1,
            "{}: replay produced no rounds",
            spec.name
        );
        // "0" is the shell's spelling of auto (all cores).
        for threads in ["1", "2", "8", "0"] {
            for cache in ["on", "off"] {
                let got = replay_bits(&case, threads, cache);
                assert_eq!(
                    got, baseline,
                    "{}: replay diverged at threads={threads} cache={cache}",
                    spec.name
                );
            }
        }
    }
}

/// A case whose top-k proposals include non-gold decoys, so the oracle
/// actually issues rejects for noise to flip into wrong accepts.
fn decoy_heavy_case(spec: &iwb_eval::DomainSpec) -> EvalCase {
    let knobs = DomainKnobs {
        entities: 6,
        attrs_per_entity: 3.0,
        near_duplicate_rate: 1.0,
        ..iwb_eval::default_knobs(spec)
    };
    generate_case(spec, &knobs, 4242)
}

/// A replay under oracle noise `p`, reduced to comparable bit patterns
/// (plus the per-round decision counts, which noise perturbs).
fn noisy_bits(case: &EvalCase, p: f64) -> Vec<(usize, usize, usize, u64, u64)> {
    let cfg = OracleConfig {
        noise: p,
        ..OracleConfig::default()
    };
    let outcome = run_replay(&mut ShellTransport::new(), case, &cfg).expect("noisy replay");
    outcome
        .rounds
        .iter()
        .map(|r| {
            (
                r.accepted,
                r.rejected,
                r.noisy_accepts,
                r.metrics.f1().to_bits(),
                r.max_weight_delta.to_bits(),
            )
        })
        .collect()
}

#[test]
fn noise_zero_is_bit_identical_to_the_default_oracle() {
    for spec in [&CLINICAL, &TELECOM] {
        let case = small_case(spec);
        let clean = run_replay(&mut ShellTransport::new(), &case, &OracleConfig::default())
            .expect("clean replay");
        let zeroed = noisy_bits(&case, 0.0);
        let baseline: Vec<_> = clean
            .rounds
            .iter()
            .map(|r| {
                (
                    r.accepted,
                    r.rejected,
                    r.noisy_accepts,
                    r.metrics.f1().to_bits(),
                    r.max_weight_delta.to_bits(),
                )
            })
            .collect();
        assert_eq!(
            zeroed, baseline,
            "{}: noise 0.0 changed the replay",
            spec.name
        );
        assert_eq!(clean.noisy_accepts(), 0, "{}", spec.name);
    }
}

#[test]
fn noisy_replay_is_deterministic_and_plateau_stays_honest() {
    for spec in [&CLINICAL, &TELECOM] {
        let case = decoy_heavy_case(spec);
        let a = noisy_bits(&case, 0.1);
        let b = noisy_bits(&case, 0.1);
        assert_eq!(
            a, b,
            "{}: noise 0.1 replay diverged between runs",
            spec.name
        );

        let cfg = OracleConfig {
            noise: 0.1,
            ..OracleConfig::default()
        };
        let outcome = run_replay(&mut ShellTransport::new(), &case, &cfg).expect("replay");
        assert!(
            outcome.noisy_accepts() >= 1,
            "{}: noise 0.1 never fired — weak test, pick a new noise_seed",
            spec.name
        );
        // The plateau detector must not be fooled by bad feedback: a
        // claimed plateau round still means every round from it onward
        // moved no voter weight beyond eps.
        if let Some(p) = outcome.rounds_to_plateau {
            assert!(
                outcome.rounds[p..]
                    .iter()
                    .all(|r| r.max_weight_delta < cfg.plateau_eps),
                "{}: plateau claimed at {p} but weights still moving",
                spec.name
            );
        }
        // Re-weighting recovery is recorded, not asserted away: the
        // curve exists for every round and mistakes are attributed.
        assert_eq!(outcome.rounds.len(), cfg.rounds + 1);
        for r in &outcome.rounds {
            assert!(r.noisy_accepts <= r.accepted);
        }
    }
}

#[test]
fn replay_feedback_curve_is_monotone_or_plateau() {
    let case = small_case(&CLINICAL);
    let mut t = ShellTransport::new();
    let outcome = run_replay(&mut t, &case, &OracleConfig::default()).expect("replay");
    assert!(
        outcome.monotone_or_plateau(1e-9),
        "F1 curve regressed: {:?}",
        outcome.f1_curve()
    );
    let first = outcome.f1_curve()[0];
    let last = *outcome.f1_curve().last().unwrap();
    assert!(last >= first, "feedback hurt: {first} -> {last}");
}
