//! Curation replay against a live `workbenchd`: the identical oracle
//! script runs over TCP (exercising the journal path for every
//! mutating command), the daemon is killed mid-flight and restarted
//! with `--recover`, and the recovered session must report
//! byte-identical match state and metrics.

use iwb_eval::domains::{generate_case, DomainKnobs, FINANCE};
use iwb_eval::replay::{run_replay, ClientTransport, OracleConfig, ShellTransport};
use iwb_eval::EvalCase;
use iwb_server::client::Client;
use iwb_server::server::{serve, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("iwb-eval-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn restart_with_recovery(addr: &str, journal_dir: &Path) -> ServerHandle {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match serve(ServerConfig {
            addr: addr.to_owned(),
            journal_dir: Some(journal_dir.to_path_buf()),
            recover: true,
            ..ServerConfig::default()
        }) {
            Ok(handle) => return handle,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("could not rebind {addr}: {e}"),
        }
    }
}

fn small_case() -> EvalCase {
    let knobs = DomainKnobs {
        entities: 5,
        attrs_per_entity: 3.0,
        ..iwb_eval::default_knobs(&FINANCE)
    };
    generate_case(&FINANCE, &knobs, 90210)
}

/// Everything match-state-visible about the replayed session.
fn observable_state(c: &mut Client, case: &EvalCase) -> String {
    let src = case.pair.source.id().as_str();
    let tgt = case.pair.target.id().as_str();
    let export = c.request("export").unwrap().expect_ok().unwrap();
    let proposals = c
        .request(&format!("proposals {src} {tgt} threshold 0.25"))
        .unwrap()
        .expect_ok()
        .unwrap();
    let weights = c.request("weights").unwrap().expect_ok().unwrap();
    format!("{export}\n---\n{proposals}\n---\n{weights}")
}

#[test]
fn journaled_replay_survives_crash_and_recovery_byte_identically() {
    let dir = TempDir::new("replay");
    let case = small_case();
    let cfg = OracleConfig {
        rounds: 3,
        ..OracleConfig::default()
    };

    let handle = serve(ServerConfig {
        journal_dir: Some(dir.0.clone()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.session_new(Some("curation")).expect("session");
    let outcome = run_replay(&mut ClientTransport(&mut client), &case, &cfg).expect("replay");
    let before = observable_state(&mut client, &case);
    drop(client);

    // The in-process replay over the same case must agree with the
    // daemon-hosted one round for round, bit for bit.
    let local = run_replay(&mut ShellTransport::new(), &case, &cfg).expect("local replay");
    assert_eq!(outcome.rounds.len(), local.rounds.len());
    for (a, b) in outcome.rounds.iter().zip(&local.rounds) {
        assert_eq!(a.metrics, b.metrics, "transport changed round {}", a.round);
        assert_eq!(
            a.max_weight_delta.to_bits(),
            b.max_weight_delta.to_bits(),
            "transport changed weight motion in round {}",
            a.round
        );
    }
    assert_eq!(outcome.rounds_to_plateau, local.rounds_to_plateau);

    // Kill without shutdown; recover from the journal alone.
    handle.kill();
    let recovered = restart_with_recovery(&addr, &dir.0);
    let mut client = Client::connect(&addr).expect("reconnect");
    client.session_attach("curation").expect("re-attach");
    let after = observable_state(&mut client, &case);
    assert_eq!(before, after, "recovered session diverged");
    drop(client);
    recovered.shutdown();
}
