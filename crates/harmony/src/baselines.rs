//! Baseline matcher configurations.
//!
//! The paper positions Harmony against the contemporary systems it
//! cites — manual matching in commercial tools (§5.2.1: "Schema matching
//! can be performed manually, as is the case for most commercial
//! tools"), COMA's flexible combination of name-level matchers [Do &
//! Rahm], and Cupid's linguistic+structural scheme [Madhavan et al.].
//! The experiment harness compares Harmony's full engine against these
//! approximations, each expressed as a configured [`HarmonyEngine`] so
//! every baseline runs through the identical evaluation path.
//!
//! These are *faithful-in-spirit* re-compositions from our voter
//! library, not re-implementations of the original systems; see
//! DESIGN.md's substitution table.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::engine::HarmonyEngine;
use crate::flooding::FloodingConfig;
use crate::merger::{MergeStrategy, VoteMerger};
use crate::voter::MatchVoter;
use crate::voters::{NameVoter, StructureVoter, ThesaurusVoter};
use iwb_model::ElementId;

/// Exact-name equivalence: the behaviour of hand-matching GUIs that
/// auto-connect same-named elements and leave everything else to the
/// engineer. Votes strongly positive on (case/convention-insensitive)
/// equal names and abstains otherwise — it never votes against.
#[derive(Debug, Clone, Default)]
pub struct ExactNameVoter;

impl MatchVoter for ExactNameVoter {
    fn name(&self) -> &'static str {
        "exact-name"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a = &ctx.src(src).text.name.tokens;
        let b = &ctx.tgt(tgt).text.name.tokens;
        if !a.is_empty() && a == b {
            Confidence::engine(0.95)
        } else {
            Confidence::UNKNOWN
        }
    }
}

/// The manual-commercial-tool baseline: exact-name auto-connect only,
/// no merging subtleties, no structural pass.
pub fn name_equivalence_engine() -> HarmonyEngine {
    HarmonyEngine::new(
        vec![Box::new(ExactNameVoter)],
        VoteMerger::default(),
        FloodingConfig::disabled(),
    )
}

/// A COMA-like composite: several *name-level* matchers (string
/// similarity + synonym expansion) combined by plain averaging — COMA's
/// signature idea is flexible combination of independent matchers, with
/// no use of instance data or documentation and no iterative structural
/// fixpoint.
pub fn coma_like_engine() -> HarmonyEngine {
    HarmonyEngine::new(
        vec![
            Box::new(NameVoter::default()),
            Box::new(ThesaurusVoter::default()),
        ],
        VoteMerger::with_strategy(MergeStrategy::UniformAverage),
        FloodingConfig::disabled(),
    )
}

/// A Cupid-like scheme: a linguistic pass (name + thesaurus) plus a
/// structural pass with extra weight on leaf/structure agreement, and
/// upward propagation of leaf similarity into containers — Cupid's
/// leaves-first philosophy.
pub fn cupid_like_engine() -> HarmonyEngine {
    let mut merger = VoteMerger::default();
    merger.set_weight("structure", 2.0);
    HarmonyEngine::new(
        vec![
            Box::new(NameVoter::default()),
            Box::new(ThesaurusVoter::default()),
            Box::new(StructureVoter::default()),
        ],
        merger,
        FloodingConfig {
            enable_down: false, // leaves lift containers; no negative trickle
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};
    use std::collections::HashMap;

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("CUSTOMER")
            .attr_doc("CUST_ID", DataType::Integer, "Unique customer identifier.")
            .attr("SHIP_TO", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("CUSTOMER")
            .attr_doc(
                "identifier",
                DataType::Integer,
                "Unique customer identifier.",
            )
            .attr("ship_to", DataType::Text)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn exact_name_only_fires_on_equal_token_streams() {
        let (s, t) = schemas();
        let mut engine = name_equivalence_engine();
        let r = engine.run(&s, &t, &HashMap::new());
        let cust_s = s.find_by_name("CUSTOMER").unwrap();
        let cust_t = t.find_by_name("CUSTOMER").unwrap();
        assert!(r.matrix.get(cust_s, cust_t).value() > 0.9);
        // SHIP_TO vs ship_to tokenise identically → fires.
        let ship_s = s.find_by_name("SHIP_TO").unwrap();
        let ship_t = t.find_by_name("ship_to").unwrap();
        assert!(r.matrix.get(ship_s, ship_t).value() > 0.9);
        // CUST_ID vs identifier: abstains (zero), never negative.
        let id_s = s.find_by_name("CUST_ID").unwrap();
        let id_t = t.find_by_name("identifier").unwrap();
        assert_eq!(r.matrix.get(id_s, id_t).value(), 0.0);
    }

    #[test]
    fn harmony_beats_exact_name_on_renamed_elements() {
        let (s, t) = schemas();
        let id_s = s.find_by_name("CUST_ID").unwrap();
        let id_t = t.find_by_name("identifier").unwrap();
        let baseline = name_equivalence_engine()
            .run(&s, &t, &HashMap::new())
            .matrix
            .get(id_s, id_t)
            .value();
        let full = HarmonyEngine::default()
            .run(&s, &t, &HashMap::new())
            .matrix
            .get(id_s, id_t)
            .value();
        assert!(full > baseline + 0.2, "full {full} vs baseline {baseline}");
    }

    #[test]
    fn baseline_engines_run_and_differ() {
        let (s, t) = schemas();
        let id_s = s.find_by_name("CUST_ID").unwrap();
        let id_t = t.find_by_name("identifier").unwrap();
        let coma = coma_like_engine().run(&s, &t, &HashMap::new());
        let cupid = cupid_like_engine().run(&s, &t, &HashMap::new());
        // Cupid's structural pass lifts the pair (same leaf context);
        // COMA's name-only average does not see the documentation.
        assert!(cupid.matrix.get(id_s, id_t).value() >= coma.matrix.get(id_s, id_t).value());
        assert_eq!(coma.per_voter.len(), 2);
        assert_eq!(cupid.per_voter.len(), 3);
    }
}
