//! Per-schema feature cache for engine re-runs.
//!
//! Matching is iterative (§4.3): the engineer re-runs the engine after
//! every batch of accept/reject decisions, usually against the *same*
//! schema pair. Re-deriving tokenisation, stems, bigram profiles, and
//! thesaurus expansions for every element on every run is pure waste, so
//! the engine keeps a [`FeatureCache`] with two levels:
//!
//! * **Text level** — corpus-independent [`TextFeatures`] per schema,
//!   keyed by a content [`fingerprint`] of the graph. Valid across any
//!   pairing of that schema.
//! * **Context level** — a fully built [`MatchContext`] (including the
//!   combined TF-IDF corpus) per `(source, target, corpus epoch)`
//!   triple. The epoch is bumped by the engine whenever learned state
//!   that feeds the context changes (term boosts, thesaurus, instance
//!   samples), so stale contexts can never be served.
//!
//! Caching is exactly transparent: a cache hit returns features that are
//! value-identical to a fresh build, so match results are byte-identical
//! with the cache on or off (asserted by `tests/determinism.rs`).
//!
//! Invalidation: the workbench's `HarmonyTool` clears the cache when the
//! blackboard announces a schema-graph event (a schema was added or
//! replaced), and [`crate::HarmonyEngine::invalidate_features`] exposes
//! the same for direct embedders.

use crate::context::{schema_text_features, MatchContext, TextFeatures};
use iwb_ling::Thesaurus;
use iwb_model::{ElementId, SchemaGraph};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Bound on cached built contexts (each holds two schemata's worth of
/// vectors); the cache clears wholesale when full — re-runs of the same
/// pair, the dominant workload, refill it immediately.
const MAX_CONTEXTS: usize = 8;
/// Bound on cached per-schema text feature sets.
const MAX_TEXT: usize = 16;

/// Content fingerprint of a schema graph: covers identity, metamodel,
/// every element (kind, name, type, documentation, annotations), and
/// all containment and cross edges. Deterministic within a process.
///
/// Hashes element fields directly — no `format!("{el:?}")` rendering.
/// The fingerprint runs on **every** engine invocation (it is the cache
/// key), so a warm lookup must cost hashing, not a Debug-string
/// allocation per element; the allocating version made warm runs
/// slower than cold ones on large schemas (`cache_speedup` < 1 in
/// `BENCH_match.json`).
pub fn fingerprint(graph: &SchemaGraph) -> u64 {
    let mut h = DefaultHasher::new();
    graph.id().hash(&mut h);
    graph.metamodel().hash(&mut h);
    graph.len().hash(&mut h);
    for (id, el) in graph.iter() {
        id.hash(&mut h);
        el.kind.hash(&mut h);
        el.name.hash(&mut h);
        el.data_type.hash(&mut h);
        el.documentation.hash(&mut h);
        // Annotations hold f64 values (no Hash derive); hash the raw
        // bits — fingerprint equality wants bit-identity anyway.
        for (key, value) in el.annotations.iter() {
            key.hash(&mut h);
            match value {
                iwb_model::AnnotationValue::Text(s) => {
                    0u8.hash(&mut h);
                    s.hash(&mut h);
                }
                iwb_model::AnnotationValue::Number(n) => {
                    1u8.hash(&mut h);
                    n.to_bits().hash(&mut h);
                }
                iwb_model::AnnotationValue::Flag(b) => {
                    2u8.hash(&mut h);
                    b.hash(&mut h);
                }
            }
        }
        if let Some((kind, parent)) = graph.parent(id) {
            kind.hash(&mut h);
            parent.hash(&mut h);
        }
    }
    for e in graph.cross_edges() {
        e.from.hash(&mut h);
        e.kind.hash(&mut h);
        e.to.hash(&mut h);
    }
    h.finish()
}

/// Hit/miss counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fully built contexts served from cache.
    pub context_hits: u64,
    /// Contexts built from scratch (or from cached text features).
    pub context_misses: u64,
    /// Per-schema text feature sets served from cache — directly from
    /// the text level, or transitively via a context-level hit (a
    /// cached context embeds both schemas' text features, so a context
    /// hit counts two text hits; without this, a warm re-run of the
    /// same pair reports `text_hit_rate = 0` while reusing every text
    /// feature).
    pub text_hits: u64,
    /// Per-schema text feature sets computed.
    pub text_misses: u64,
}

impl CacheStats {
    /// Context-level hit rate in [0, 1] (0 when nothing was requested).
    pub fn context_hit_rate(&self) -> f64 {
        let total = self.context_hits + self.context_misses;
        if total == 0 {
            0.0
        } else {
            self.context_hits as f64 / total as f64
        }
    }

    /// Text-level hit rate in [0, 1] (0 when nothing was requested).
    pub fn text_hit_rate(&self) -> f64 {
        let total = self.text_hits + self.text_misses;
        if total == 0 {
            0.0
        } else {
            self.text_hits as f64 / total as f64
        }
    }
}

/// Two-level cache of linguistic features, owned by the engine.
#[derive(Default)]
pub struct FeatureCache {
    text: HashMap<u64, Arc<HashMap<ElementId, Arc<TextFeatures>>>>,
    contexts: HashMap<(u64, u64, u64), Arc<MatchContext>>,
    stats: CacheStats,
}

impl FeatureCache {
    /// An empty cache.
    pub fn new() -> Self {
        FeatureCache::default()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all cached entries (counters are kept).
    pub fn clear(&mut self) {
        self.text.clear();
        self.contexts.clear();
    }

    /// A built context for the pair, served from cache when the same
    /// `(source, target, epoch)` was built before. `build` assembles a
    /// fresh context from (possibly cached) text features on a miss.
    pub(crate) fn context(
        &mut self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        thesaurus: &Arc<Thesaurus>,
        epoch: u64,
        build: impl FnOnce(
            Arc<SchemaGraph>,
            Arc<SchemaGraph>,
            HashMap<ElementId, Arc<TextFeatures>>,
            HashMap<ElementId, Arc<TextFeatures>>,
        ) -> MatchContext,
    ) -> Arc<MatchContext> {
        let key = (fingerprint(source), fingerprint(target), epoch);
        if let Some(ctx) = self.contexts.get(&key) {
            self.stats.context_hits += 1;
            // The cached context carries both schemas' text features;
            // count them as served so the text level reflects reuse on
            // warm same-pair re-runs (the dominant §4.3 workload).
            self.stats.text_hits += 2;
            return Arc::clone(ctx);
        }
        self.stats.context_misses += 1;
        let source_text = self.text(key.0, source, thesaurus);
        let target_text = self.text(key.1, target, thesaurus);
        let ctx = Arc::new(build(
            Arc::new(source.clone()),
            Arc::new(target.clone()),
            (*source_text).clone(),
            (*target_text).clone(),
        ));
        if self.contexts.len() >= MAX_CONTEXTS {
            self.contexts.clear();
        }
        self.contexts.insert(key, Arc::clone(&ctx));
        ctx
    }

    /// Text features for one schema, served from cache or computed now
    /// (and cached). The persistence layer snapshots these so a
    /// restarted daemon skips re-tokenisation entirely.
    pub(crate) fn export_text(
        &mut self,
        fp: u64,
        graph: &SchemaGraph,
        thesaurus: &Thesaurus,
    ) -> Arc<HashMap<ElementId, Arc<TextFeatures>>> {
        self.text(fp, graph, thesaurus)
    }

    /// Seed the text level with features decoded from a snapshot. Keys
    /// are content fingerprints, so a stale entry (schema edited since
    /// the snapshot) is simply never hit — priming can warm the cache
    /// but never corrupt it. Counters are untouched: primed entries
    /// surface as *hits* when first used, which is the point.
    pub(crate) fn prime_text(&mut self, fp: u64, features: HashMap<ElementId, Arc<TextFeatures>>) {
        if self.text.len() >= MAX_TEXT {
            self.text.clear();
        }
        self.text.insert(fp, Arc::new(features));
    }

    /// Text features for one schema, computed on first sight of its
    /// fingerprint.
    fn text(
        &mut self,
        fp: u64,
        graph: &SchemaGraph,
        thesaurus: &Thesaurus,
    ) -> Arc<HashMap<ElementId, Arc<TextFeatures>>> {
        if let Some(text) = self.text.get(&fp) {
            self.stats.text_hits += 1;
            return Arc::clone(text);
        }
        self.stats.text_misses += 1;
        let text = Arc::new(schema_text_features(graph, thesaurus));
        if self.text.len() >= MAX_TEXT {
            self.text.clear();
        }
        self.text.insert(fp, Arc::clone(&text));
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn schema(name: &str, attr: &str) -> SchemaGraph {
        SchemaBuilder::new(name, Metamodel::Relational)
            .open("T")
            .attr(attr, DataType::Text)
            .close()
            .build()
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = schema("s", "x");
        let b = schema("s", "x");
        let c = schema("s", "y");
        let d = schema("other", "x");
        assert_eq!(fingerprint(&a), fingerprint(&b), "same content");
        assert_ne!(fingerprint(&a), fingerprint(&c), "renamed attribute");
        assert_ne!(fingerprint(&a), fingerprint(&d), "renamed schema");
    }

    #[test]
    fn text_level_hits_across_pairings() {
        let s = schema("s", "x");
        let t1 = schema("t1", "y");
        let t2 = schema("t2", "z");
        let th = Arc::new(Thesaurus::builtin());
        let mut cache = FeatureCache::new();
        let build = |src: Arc<SchemaGraph>,
                     tgt: Arc<SchemaGraph>,
                     st: HashMap<ElementId, Arc<TextFeatures>>,
                     tt: HashMap<ElementId, Arc<TextFeatures>>| {
            MatchContext::from_parts(
                src,
                tgt,
                Arc::new(Thesaurus::builtin()),
                iwb_ling::Corpus::new(),
                st,
                tt,
            )
        };
        cache.context(&s, &t1, &th, 0, build);
        // Same source against a new target: source text features hit.
        cache.context(&s, &t2, &th, 0, build);
        let stats = cache.stats();
        assert_eq!(stats.context_misses, 2);
        assert_eq!(stats.text_hits, 1);
        assert_eq!(stats.text_misses, 3);
    }

    #[test]
    fn context_hits_count_transitive_text_hits() {
        let s = schema("s", "x");
        let t = schema("t", "y");
        let th = Arc::new(Thesaurus::builtin());
        let mut cache = FeatureCache::new();
        let build = |src: Arc<SchemaGraph>,
                     tgt: Arc<SchemaGraph>,
                     st: HashMap<ElementId, Arc<TextFeatures>>,
                     tt: HashMap<ElementId, Arc<TextFeatures>>| {
            MatchContext::from_parts(
                src,
                tgt,
                Arc::new(Thesaurus::builtin()),
                iwb_ling::Corpus::new(),
                st,
                tt,
            )
        };
        cache.context(&s, &t, &th, 0, build);
        assert_eq!(cache.stats().text_hits, 0);
        assert_eq!(cache.stats().text_misses, 2);
        // Warm re-run: the context hit serves both schemas' text
        // features, so the text level must not report a 0% hit rate.
        cache.context(&s, &t, &th, 0, build);
        let stats = cache.stats();
        assert_eq!(stats.context_hits, 1);
        assert_eq!(stats.text_hits, 2);
        assert!(stats.text_hit_rate() > 0.0);
    }

    #[test]
    fn context_level_hits_on_rerun_and_respects_epoch() {
        let s = schema("s", "x");
        let t = schema("t", "y");
        let th = Arc::new(Thesaurus::builtin());
        let mut cache = FeatureCache::new();
        let build = |src: Arc<SchemaGraph>,
                     tgt: Arc<SchemaGraph>,
                     st: HashMap<ElementId, Arc<TextFeatures>>,
                     tt: HashMap<ElementId, Arc<TextFeatures>>| {
            MatchContext::from_parts(
                src,
                tgt,
                Arc::new(Thesaurus::builtin()),
                iwb_ling::Corpus::new(),
                st,
                tt,
            )
        };
        let first = cache.context(&s, &t, &th, 0, build);
        let second = cache.context(&s, &t, &th, 0, build);
        assert!(Arc::ptr_eq(&first, &second), "re-run shares the context");
        assert_eq!(cache.stats().context_hits, 1);
        // A bumped epoch (learning happened) misses.
        cache.context(&s, &t, &th, 1, build);
        assert_eq!(cache.stats().context_misses, 2);
        // Clearing drops entries but keeps counters.
        cache.clear();
        cache.context(&s, &t, &th, 1, build);
        assert_eq!(cache.stats().context_misses, 3);
        assert_eq!(cache.stats().context_hits, 1);
    }
}
