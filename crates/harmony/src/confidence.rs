//! Confidence scores in [-1, +1].
//!
//! §4: "each match voter establishes a confidence score in the range
//! (-1, +1) where -1 indicates that there is definitely no
//! correspondence, +1 indicates a definite correspondence and 0
//! indicates complete uncertainty." §4.2: user decisions get exactly ±1
//! ("Links that were drawn by the integration engineer, or were
//! explicitly marked as correct, have a confidence score of +1"), so the
//! closed endpoints are reserved for [`Confidence::ACCEPT`] and
//! [`Confidence::REJECT`]; engine-produced scores are clamped strictly
//! inside the open interval.

use std::fmt;

/// A clamped confidence score.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Confidence(f64);

impl Confidence {
    /// A definite correspondence — reserved for user decisions.
    pub const ACCEPT: Confidence = Confidence(1.0);
    /// Definitely no correspondence — reserved for user decisions.
    pub const REJECT: Confidence = Confidence(-1.0);
    /// Complete uncertainty.
    pub const UNKNOWN: Confidence = Confidence(0.0);

    /// Largest magnitude an engine-produced score may take; keeps ±1
    /// unambiguous as "user said so".
    pub const ENGINE_CAP: f64 = 0.99;

    /// An engine score, clamped into (-ENGINE_CAP, +ENGINE_CAP).
    pub fn engine(value: f64) -> Self {
        let v = if value.is_nan() { 0.0 } else { value };
        Confidence(v.clamp(-Self::ENGINE_CAP, Self::ENGINE_CAP))
    }

    /// A raw score clamped to the closed interval — used when replaying
    /// stored annotations that may legitimately be ±1.
    pub fn raw(value: f64) -> Self {
        let v = if value.is_nan() { 0.0 } else { value };
        Confidence(v.clamp(-1.0, 1.0))
    }

    /// Map a similarity in [0, 1] into a confidence, treating `baseline`
    /// as the no-evidence point: similarities above the baseline scale
    /// into (0, cap], below it into [-cap, 0).
    pub fn from_similarity(sim: f64, baseline: f64, cap: f64) -> Self {
        debug_assert!((0.0..1.0).contains(&baseline));
        let sim = sim.clamp(0.0, 1.0);
        let signal = if sim >= baseline {
            (sim - baseline) / (1.0 - baseline)
        } else {
            (sim - baseline) / baseline
        };
        Confidence::engine(signal * cap)
    }

    /// The inner value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// |value| — §4: "a score close to 0 indicates that the match voter
    /// did not see enough evidence to make a strong prediction", so
    /// magnitude is the evidence weight used by the merger.
    pub fn magnitude(self) -> f64 {
        self.0.abs()
    }

    /// True when this is a user decision (exactly ±1).
    pub fn is_user_decision(self) -> bool {
        self.0 == 1.0 || self.0 == -1.0
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_scores_stay_inside_open_interval() {
        assert_eq!(Confidence::engine(5.0).value(), Confidence::ENGINE_CAP);
        assert_eq!(Confidence::engine(-5.0).value(), -Confidence::ENGINE_CAP);
        assert!(!Confidence::engine(1.0).is_user_decision());
        assert_eq!(Confidence::engine(f64::NAN).value(), 0.0);
    }

    #[test]
    fn raw_allows_user_endpoints() {
        assert!(Confidence::raw(1.0).is_user_decision());
        assert!(Confidence::raw(-1.0).is_user_decision());
        assert!(!Confidence::raw(0.5).is_user_decision());
        assert_eq!(Confidence::raw(7.0).value(), 1.0);
    }

    #[test]
    fn similarity_mapping_crosses_zero_at_baseline() {
        let at = Confidence::from_similarity(0.3, 0.3, 0.9);
        assert_eq!(at.value(), 0.0);
        assert!(Confidence::from_similarity(0.9, 0.3, 0.9).value() > 0.5);
        assert!(Confidence::from_similarity(0.0, 0.3, 0.9).value() < -0.5);
        assert_eq!(Confidence::from_similarity(1.0, 0.3, 0.9).value(), 0.9);
    }

    #[test]
    fn magnitude_is_absolute_value() {
        assert_eq!(Confidence::engine(-0.4).magnitude(), 0.4);
        assert_eq!(Confidence::UNKNOWN.magnitude(), 0.0);
    }

    #[test]
    fn display_formats_signed() {
        assert_eq!(Confidence::engine(0.8).to_string(), "+0.80");
        assert_eq!(Confidence::REJECT.to_string(), "-1.00");
        assert_eq!(Confidence::UNKNOWN.to_string(), "+0.00");
    }
}
