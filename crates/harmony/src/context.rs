//! Shared, precomputed match context.
//!
//! The linguistic preprocessing stage of Figure 1 runs once per element,
//! not once per voter per pair: [`MatchContext`] caches tokenised names,
//! stemmed documentation, character-bigram profiles, thesaurus
//! expansions, TF-IDF vectors, and domain value sets for both schemata,
//! and hands voters read access.
//!
//! The context owns its schemata and thesaurus behind `Arc`s, so one
//! built context can be shared read-only across the engine's worker
//! threads and across re-runs within a session (see
//! [`crate::cache::FeatureCache`]). Per-element features split in two:
//!
//! * [`TextFeatures`] — corpus-independent (tokens, stems, bigrams,
//!   thesaurus expansions, domain values). Cacheable per schema.
//! * the TF-IDF [`ElementFeatures::vector`] — depends on the combined
//!   corpus of *both* schemata plus learned boosts, so it is rebuilt per
//!   context.

use iwb_ling::pipeline::{preprocess_doc, preprocess_name, Preprocessed};
use iwb_ling::{porter_stem, Corpus, NgramProfile, TermVector, Thesaurus};
use iwb_model::{Domain, EdgeKind, ElementId, SchemaGraph};
use std::collections::HashMap;
use std::sync::Arc;

/// Corpus-independent linguistic features of one element, cacheable per
/// schema (and thesaurus) across engine runs.
#[derive(Debug, Clone, Default)]
pub struct TextFeatures {
    /// Tokenised, stop-filtered name.
    pub name: Preprocessed,
    /// Tokenised, stop-filtered documentation.
    pub doc: Preprocessed,
    /// Codes (and meanings, stemmed) of the element's domain, when the
    /// element is a domain or an attribute linked to one.
    pub domain_codes: Vec<String>,
    /// Stemmed meaning tokens of the domain values.
    pub domain_meaning_stems: Vec<String>,
    /// Name tokens joined with no separator (the name voter's
    /// whole-string view).
    pub joined_name: String,
    /// Character-bigram profile of [`Self::joined_name`].
    pub name_profile: NgramProfile,
    /// `porter_stem(thesaurus.expand(token))` per name token, aligned
    /// with `name.tokens` (the thesaurus and path voters' hot loop).
    pub expanded_stems: Vec<String>,
}

/// Cached per-element features: shared text features plus the
/// context-specific TF-IDF vector.
#[derive(Debug, Clone, Default)]
pub struct ElementFeatures {
    /// Corpus-independent text features (possibly shared with a cache).
    pub text: Arc<TextFeatures>,
    /// TF-IDF vector over name + documentation stems.
    pub vector: TermVector,
}

/// Read-only context shared by all voters during one engine run.
pub struct MatchContext {
    source: Arc<SchemaGraph>,
    target: Arc<SchemaGraph>,
    thesaurus: Arc<Thesaurus>,
    /// Document-frequency corpus built over both schemata's elements.
    pub corpus: Corpus,
    source_features: HashMap<ElementId, ElementFeatures>,
    target_features: HashMap<ElementId, ElementFeatures>,
    /// Optional per-attribute instance samples (§2: instance data is
    /// "sometimes available and sometimes not"; when it is, the
    /// instance voter uses it).
    source_samples: HashMap<ElementId, Vec<String>>,
    target_samples: HashMap<ElementId, Vec<String>>,
}

/// Which schema an element id belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaSide {
    /// The source schema (matrix rows).
    Source,
    /// The target schema (matrix columns).
    Target,
}

/// Compute the corpus-independent text features of every element of a
/// schema, in graph iteration order.
pub(crate) fn schema_text_features(
    graph: &SchemaGraph,
    thesaurus: &Thesaurus,
) -> HashMap<ElementId, Arc<TextFeatures>> {
    let mut map = HashMap::with_capacity(graph.len());
    for (id, el) in graph.iter() {
        let name = preprocess_name(&el.name);
        let doc = el
            .documentation
            .as_deref()
            .map(preprocess_doc)
            .unwrap_or_default();
        let (domain_codes, domain_meaning_stems) = domain_features(graph, id);
        let joined_name = name.tokens.join("");
        let name_profile = NgramProfile::new(&joined_name, 2);
        let expanded_stems = name
            .tokens
            .iter()
            .map(|t| porter_stem(thesaurus.expand(t)))
            .collect();
        map.insert(
            id,
            Arc::new(TextFeatures {
                name,
                doc,
                domain_codes,
                domain_meaning_stems,
                joined_name,
                name_profile,
                expanded_stems,
            }),
        );
    }
    map
}

impl MatchContext {
    /// Precompute features for every element of both schemata. The
    /// corpus can be pre-seeded (e.g. carried over between iterations to
    /// keep learned term boosts — §4.3); pass `Corpus::new()` otherwise.
    pub fn build(
        source: &SchemaGraph,
        target: &SchemaGraph,
        thesaurus: &Thesaurus,
        corpus: Corpus,
    ) -> Self {
        let source = Arc::new(source.clone());
        let target = Arc::new(target.clone());
        let thesaurus = Arc::new(thesaurus.clone());
        let source_text = schema_text_features(&source, &thesaurus);
        let target_text = schema_text_features(&target, &thesaurus);
        Self::from_parts(source, target, thesaurus, corpus, source_text, target_text)
    }

    /// Assemble a context from shared graphs and (possibly cached)
    /// per-schema text features: register every element's stems in the
    /// corpus, then derive TF-IDF vectors against the completed corpus.
    pub(crate) fn from_parts(
        source: Arc<SchemaGraph>,
        target: Arc<SchemaGraph>,
        thesaurus: Arc<Thesaurus>,
        mut corpus: Corpus,
        source_text: HashMap<ElementId, Arc<TextFeatures>>,
        target_text: HashMap<ElementId, Arc<TextFeatures>>,
    ) -> Self {
        // First pass: register documents so IDF reflects both schemata.
        // Iterate in graph order — map order is not deterministic.
        for (graph, text) in [(&source, &source_text), (&target, &target_text)] {
            for (id, _) in graph.iter() {
                let t = &text[&id];
                let all: Vec<&str> = t
                    .name
                    .stems
                    .iter()
                    .chain(t.doc.stems.iter())
                    .map(String::as_str)
                    .collect();
                corpus.add_document(all);
            }
        }
        // Second pass: vectors against the complete corpus.
        let features =
            |graph: &SchemaGraph, text: HashMap<ElementId, Arc<TextFeatures>>, corpus: &Corpus| {
                let mut map = HashMap::with_capacity(text.len());
                for (id, _) in graph.iter() {
                    let t = text[&id].clone();
                    let all: Vec<&str> = t
                        .name
                        .stems
                        .iter()
                        .chain(t.doc.stems.iter())
                        .map(String::as_str)
                        .collect();
                    let vector = corpus.vector(all);
                    map.insert(id, ElementFeatures { text: t, vector });
                }
                map
            };
        let source_features = features(&source, source_text, &corpus);
        let target_features = features(&target, target_text, &corpus);
        MatchContext {
            source,
            target,
            thesaurus,
            corpus,
            source_features,
            target_features,
            source_samples: HashMap::new(),
            target_samples: HashMap::new(),
        }
    }

    /// The source schema.
    pub fn source(&self) -> &SchemaGraph {
        &self.source
    }

    /// The target schema.
    pub fn target(&self) -> &SchemaGraph {
        &self.target
    }

    /// The thesaurus used by the expansion-based voters.
    pub fn thesaurus(&self) -> &Thesaurus {
        &self.thesaurus
    }

    /// Attach instance value samples (lowercased on insert) for the
    /// instance-overlap voter.
    pub fn set_samples(
        &mut self,
        side: SchemaSide,
        samples: impl IntoIterator<Item = (ElementId, Vec<String>)>,
    ) {
        let map = match side {
            SchemaSide::Source => &mut self.source_samples,
            SchemaSide::Target => &mut self.target_samples,
        };
        for (id, values) in samples {
            map.insert(id, values.into_iter().map(|v| v.to_lowercase()).collect());
        }
    }

    /// The samples recorded for a source element (empty when none).
    pub fn src_samples(&self, id: ElementId) -> &[String] {
        self.source_samples
            .get(&id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The samples recorded for a target element (empty when none).
    pub fn tgt_samples(&self, id: ElementId) -> &[String] {
        self.target_samples
            .get(&id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Features of a source element.
    pub fn src(&self, id: ElementId) -> &ElementFeatures {
        &self.source_features[&id]
    }

    /// Features of a target element.
    pub fn tgt(&self, id: ElementId) -> &ElementFeatures {
        &self.target_features[&id]
    }

    /// The shared text features of the source side, keyed by element
    /// (for rebuilding a context with different samples attached).
    pub(crate) fn src_text_map(&self) -> HashMap<ElementId, Arc<TextFeatures>> {
        self.source_features
            .iter()
            .map(|(&id, f)| (id, Arc::clone(&f.text)))
            .collect()
    }

    /// The shared text features of the target side, keyed by element.
    pub(crate) fn tgt_text_map(&self) -> HashMap<ElementId, Arc<TextFeatures>> {
        self.target_features
            .iter()
            .map(|(&id, f)| (id, Arc::clone(&f.text)))
            .collect()
    }

    /// The graph for a side.
    pub fn graph(&self, side: SchemaSide) -> &SchemaGraph {
        match side {
            SchemaSide::Source => &self.source,
            SchemaSide::Target => &self.target,
        }
    }
}

/// Domain codes/meanings reachable from an element: a domain node's own
/// values, or the values of the domain an attribute references.
fn domain_features(graph: &SchemaGraph, id: ElementId) -> (Vec<String>, Vec<String>) {
    let domain_node = if graph.element(id).kind == iwb_model::ElementKind::Domain {
        Some(id)
    } else {
        graph
            .cross_edges_from(id)
            .find(|e| e.kind == EdgeKind::HasDomain)
            .map(|e| e.to)
    };
    let Some(dom_id) = domain_node else {
        return (Vec::new(), Vec::new());
    };
    let Some(domain) = Domain::detach(graph, dom_id) else {
        return (Vec::new(), Vec::new());
    };
    let codes = domain
        .values
        .iter()
        .map(|v| v.code.to_lowercase())
        .collect();
    let meanings = domain
        .values
        .iter()
        .filter_map(|v| v.meaning.as_deref())
        .flat_map(|m| preprocess_doc(m).stems)
        .collect();
    (codes, meanings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let d = Domain::new("surface").with_value("ASP", "Asphalt surface");
        let s = SchemaBuilder::new("src", Metamodel::Relational)
            .open("RUNWAY")
            .attr_doc(
                "SURFACE_CD",
                DataType::Coded("surface".into()),
                "Coded runway surface type.",
            )
            .domain_for_last_attr(&d)
            .close()
            .build();
        let t = SchemaBuilder::new("tgt", Metamodel::Xml)
            .open("runway")
            .attr_doc(
                "surfaceType",
                DataType::Text,
                "The runway surface classification.",
            )
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn features_cached_for_every_element() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        // Every element has cached features (would panic on a miss).
        for (id, _) in s.iter() {
            let _ = ctx.src(id);
        }
        let attr = s.find_by_name("SURFACE_CD").unwrap();
        assert_eq!(ctx.src(attr).text.name.tokens, ["surface", "cd"]);
        assert!(!ctx.src(attr).vector.is_empty());
        let tattr = t.find_by_name("surfaceType").unwrap();
        assert_eq!(ctx.tgt(tattr).text.name.tokens, ["surface", "type"]);
    }

    #[test]
    fn corpus_spans_both_schemata() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        // "surface" occurs in several elements across both sides, so its
        // IDF must be below that of a word seen once.
        assert!(ctx.corpus.idf("surfac") < ctx.corpus.idf("asphalt"));
        assert_eq!(ctx.corpus.doc_count(), s.len() + t.len());
    }

    #[test]
    fn domain_features_flow_through_has_domain() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let attr = s.find_by_name("SURFACE_CD").unwrap();
        assert_eq!(ctx.src(attr).text.domain_codes, ["asp"]);
        assert!(ctx
            .src(attr)
            .text
            .domain_meaning_stems
            .contains(&"asphalt".to_owned()));
        let tattr = t.find_by_name("surfaceType").unwrap();
        assert!(ctx.tgt(tattr).text.domain_codes.is_empty());
    }

    #[test]
    fn preseeded_corpus_keeps_boosts() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let mut corpus = Corpus::new();
        corpus.adjust_boost("surfac", 3.0);
        let ctx = MatchContext::build(&s, &t, &th, corpus);
        assert!((ctx.corpus.boost("surfac") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn derived_name_views_are_consistent() {
        let (s, _t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &s, &th, Corpus::new());
        let attr = s.find_by_name("SURFACE_CD").unwrap();
        let f = &ctx.src(attr).text;
        assert_eq!(f.joined_name, "surfacecd");
        assert_eq!(f.name_profile, NgramProfile::new("surfacecd", 2));
        assert_eq!(f.expanded_stems.len(), f.name.tokens.len());
        assert_eq!(
            f.expanded_stems[0],
            porter_stem(th.expand(&f.name.tokens[0]))
        );
    }
}
