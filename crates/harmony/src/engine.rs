//! The Harmony engine: preprocessing → voters → merger → flooding.
//!
//! Implements the pipeline of the paper's Figure 1. The engine owns the
//! voter suite and the merger (both stateful — they learn across
//! iterations, §4.3) and is reused across runs of a
//! [`crate::session::MatchSession`].

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::feedback::Feedback;
use crate::flooding::{flood, FloodingConfig};
use crate::matrix::ScoreMatrix;
use crate::merger::VoteMerger;
use crate::voter::MatchVoter;
use crate::voters::default_suite;
use iwb_ling::{Corpus, Thesaurus};
use iwb_model::{ElementId, SchemaGraph};
use std::collections::{HashMap, HashSet};

/// Output of one engine run.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// The merged, flooded confidence matrix.
    pub matrix: ScoreMatrix,
    /// Each voter's raw matrix, by voter name (pre-merge, pre-flood).
    pub per_voter: Vec<(String, ScoreMatrix)>,
    /// Flooding iterations executed.
    pub flooding_iterations: usize,
}

impl MatchResult {
    /// The raw vote a named voter cast for a pair.
    pub fn vote_of(&self, voter: &str, src: ElementId, tgt: ElementId) -> Confidence {
        self.per_voter
            .iter()
            .find(|(n, _)| n == voter)
            .map(|(_, m)| m.get(src, tgt))
            .unwrap_or(Confidence::UNKNOWN)
    }
}

/// The Harmony match engine.
///
/// # Examples
///
/// ```
/// use iwb_harmony::HarmonyEngine;
/// use iwb_model::{DataType, Metamodel, SchemaBuilder};
/// use std::collections::HashMap;
///
/// let source = SchemaBuilder::new("crm", Metamodel::Relational)
///     .open("CUSTOMER")
///     .attr_doc("CUST_ID", DataType::Integer, "Unique customer identifier.")
///     .close()
///     .build();
/// let target = SchemaBuilder::new("erp", Metamodel::Relational)
///     .open("client")
///     .attr_doc("identifier", DataType::Integer, "Unique identifier of the client.")
///     .close()
///     .build();
///
/// let mut engine = HarmonyEngine::default();
/// let result = engine.run(&source, &target, &HashMap::new());
/// let id = source.find_by_name("CUST_ID").unwrap();
/// let ident = target.find_by_name("identifier").unwrap();
/// assert!(result.matrix.get(id, ident).value() > 0.3);
/// ```
pub struct HarmonyEngine {
    voters: Vec<Box<dyn MatchVoter>>,
    merger: VoteMerger,
    flooding: FloodingConfig,
    thesaurus: Thesaurus,
    /// Term-boost state carried between runs so documentation learning
    /// persists (§4.3).
    corpus_seed: Corpus,
    /// Instance samples attached for the instance voter (§2: used only
    /// when available).
    source_samples: Vec<(ElementId, Vec<String>)>,
    target_samples: Vec<(ElementId, Vec<String>)>,
}

impl Default for HarmonyEngine {
    fn default() -> Self {
        HarmonyEngine::new(
            default_suite(),
            VoteMerger::default(),
            FloodingConfig::default(),
        )
    }
}

impl HarmonyEngine {
    /// An engine with an explicit voter suite, merger, and flooding
    /// configuration.
    pub fn new(
        voters: Vec<Box<dyn MatchVoter>>,
        merger: VoteMerger,
        flooding: FloodingConfig,
    ) -> Self {
        HarmonyEngine {
            voters,
            merger,
            flooding,
            thesaurus: Thesaurus::builtin(),
            corpus_seed: Corpus::new(),
            source_samples: Vec::new(),
            target_samples: Vec::new(),
        }
    }

    /// Attach per-attribute instance samples for the
    /// [`crate::voters::InstanceVoter`] (no-op for suites without it).
    pub fn set_instance_samples(
        &mut self,
        source: Vec<(ElementId, Vec<String>)>,
        target: Vec<(ElementId, Vec<String>)>,
    ) {
        self.source_samples = source;
        self.target_samples = target;
    }

    /// Replace the thesaurus (e.g. with a domain-specific one).
    pub fn set_thesaurus(&mut self, thesaurus: Thesaurus) {
        self.thesaurus = thesaurus;
    }

    /// The merger (to inspect learned weights).
    pub fn merger(&self) -> &VoteMerger {
        &self.merger
    }

    /// Mutable merger access (to preset weights).
    pub fn merger_mut(&mut self) -> &mut VoteMerger {
        &mut self.merger
    }

    /// The flooding configuration.
    pub fn flooding(&self) -> &FloodingConfig {
        &self.flooding
    }

    /// Mutable flooding configuration.
    pub fn flooding_mut(&mut self) -> &mut FloodingConfig {
        &mut self.flooding
    }

    /// Voter names in execution order.
    pub fn voter_names(&self) -> Vec<&'static str> {
        self.voters.iter().map(|v| v.name()).collect()
    }

    /// Run the full pipeline. `locked` maps user-decided pairs to their
    /// ±1 confidence; the engine copies them into the result unchanged
    /// and flooding never modifies them (§4.3).
    pub fn run(
        &mut self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        locked: &HashMap<(ElementId, ElementId), Confidence>,
    ) -> MatchResult {
        let mut ctx =
            MatchContext::build(source, target, &self.thesaurus, self.corpus_seed.clone());
        ctx.set_samples(
            crate::context::SchemaSide::Source,
            self.source_samples.clone(),
        );
        ctx.set_samples(
            crate::context::SchemaSide::Target,
            self.target_samples.clone(),
        );
        let ctx = ctx;

        // Stage 2 (Figure 1): every voter scores every matchable pair.
        let mut per_voter: Vec<(String, ScoreMatrix)> = Vec::with_capacity(self.voters.len());
        for voter in &self.voters {
            let mut m = ScoreMatrix::for_schemas(source, target);
            for &s in m.src_ids().to_vec().iter() {
                for &t in m.tgt_ids().to_vec().iter() {
                    m.set(s, t, voter.vote(&ctx, s, t));
                }
            }
            per_voter.push((voter.name().to_owned(), m));
        }

        // Stage 3: merge.
        let mut matrix = ScoreMatrix::for_schemas(source, target);
        let names: Vec<&str> = per_voter.iter().map(|(n, _)| n.as_str()).collect();
        for &s in matrix.src_ids().to_vec().iter() {
            for &t in matrix.tgt_ids().to_vec().iter() {
                if let Some(&c) = locked.get(&(s, t)) {
                    matrix.set(s, t, c);
                    continue;
                }
                let votes: Vec<(&str, Confidence)> = names
                    .iter()
                    .zip(per_voter.iter())
                    .map(|(&n, (_, m))| (n, m.get(s, t)))
                    .collect();
                matrix.set(s, t, self.merger.merge(&votes));
            }
        }

        // Stage 4: similarity flooding, user cells pinned.
        let locked_set: HashSet<(ElementId, ElementId)> = locked.keys().copied().collect();
        let flooding_iterations = flood(&mut matrix, source, target, &locked_set, &self.flooding);

        MatchResult {
            matrix,
            per_voter,
            flooding_iterations,
        }
    }

    /// Feed user decisions back into the engine (§4.3): each voter
    /// learns internally, and the merger re-weights voters against the
    /// result of the *previous* run.
    pub fn learn(
        &mut self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        previous: &MatchResult,
        feedback: &[Feedback],
    ) {
        if feedback.is_empty() {
            return;
        }
        let mut ctx =
            MatchContext::build(source, target, &self.thesaurus, self.corpus_seed.clone());
        for voter in &mut self.voters {
            voter.learn(&mut ctx, feedback);
        }
        // Persist term boosts learned by voters into the seed corpus.
        self.corpus_seed = ctx.corpus;
        let names: Vec<&str> = self.voters.iter().map(|v| v.name()).collect();
        self.merger.learn(feedback, &names, |voter, fb| {
            previous.vote_of(voter, fb.src, fb.tgt)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};
    use iwb_loaders::{SchemaLoader, XsdLoader};
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn fig2() -> (SchemaGraph, SchemaGraph) {
        (
            XsdLoader.load(FIG2_SOURCE_XSD, "purchaseOrder").unwrap(),
            XsdLoader.load(FIG2_TARGET_XSD, "invoice").unwrap(),
        )
    }

    #[test]
    fn figure2_pipeline_finds_plausible_links() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        let ship = s.find_by_name("shipTo").unwrap();
        let shipping = t.find_by_name("shippingInfo").unwrap();
        // shipTo ↔ shippingInfo is the Figure 3 cell with +0.8.
        assert!(
            result.matrix.get(ship, shipping).value() > 0.3,
            "got {}",
            result.matrix.get(ship, shipping)
        );
        // Best target for shipTo must be shippingInfo.
        assert_eq!(result.matrix.best_for_src(ship).unwrap().0, shipping);
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        let name = t.find_by_name("name").unwrap();
        assert!(result.matrix.get(sub, total).value() > result.matrix.get(sub, name).value());
    }

    #[test]
    fn locked_cells_survive_the_pipeline() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let first = s.find_by_name("firstName").unwrap();
        let total = t.find_by_name("total").unwrap();
        let mut locked = HashMap::new();
        locked.insert((first, total), Confidence::REJECT);
        let result = engine.run(&s, &t, &locked);
        assert_eq!(result.matrix.get(first, total), Confidence::REJECT);
    }

    #[test]
    fn per_voter_matrices_are_reported() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        assert_eq!(result.per_voter.len(), 9);
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        assert!(result.vote_of("name", sub, total).value() > 0.0);
        assert_eq!(
            result.vote_of("nonexistent", sub, total),
            Confidence::UNKNOWN
        );
    }

    #[test]
    fn learning_changes_merger_weights() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        let first = s.find_by_name("firstName").unwrap();
        let name = t.find_by_name("name").unwrap();
        let fb = vec![Feedback::accept(sub, total), Feedback::accept(first, name)];
        engine.learn(&s, &t, &result, &fb);
        // At least one voter weight moved away from 1.
        assert!(engine
            .merger()
            .weights()
            .values()
            .any(|w| (w - 1.0).abs() > 1e-9));
    }

    #[test]
    fn instance_samples_reach_the_extended_suite() {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("T")
            .attr("mystery1", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("U")
            .attr("enigma9", DataType::Text)
            .close()
            .build();
        let a = s.find_by_name("mystery1").unwrap();
        let b = t.find_by_name("enigma9").unwrap();
        let vals = |xs: &[&str]| xs.iter().map(|x| (*x).to_string()).collect::<Vec<_>>();
        let mut engine = HarmonyEngine::new(
            crate::voters::extended_suite(),
            VoteMerger::default(),
            FloodingConfig::disabled(),
        );
        let before = engine.run(&s, &t, &HashMap::new()).matrix.get(a, b).value();
        engine.set_instance_samples(
            vec![(a, vals(&["ASP", "CON", "GRS"]))],
            vec![(b, vals(&["asp", "con", "grs"]))],
        );
        let result = engine.run(&s, &t, &HashMap::new());
        assert!(result.vote_of("instance", a, b).value() > 0.5);
        assert!(result.matrix.get(a, b).value() > before);
    }

    #[test]
    fn empty_schemas_produce_empty_matrix() {
        let s = SchemaBuilder::new("s", Metamodel::Xml).build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("e")
            .attr("x", DataType::Text)
            .close()
            .build();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        assert!(result.matrix.is_empty());
    }
}
