//! The Harmony engine: preprocessing → voters → merger → flooding.
//!
//! Implements the pipeline of the paper's Figure 1. The engine owns the
//! voter suite and the merger (both stateful — they learn across
//! iterations, §4.3) and is reused across runs of a
//! [`crate::session::MatchSession`].
//!
//! # Parallelism and determinism
//!
//! Every stage that iterates the S×T cross product (voter scoring,
//! vote merging, each flooding iteration) runs through a *row-range
//! kernel*: a pure function from the shared read-only state to the new
//! values of a contiguous range of source rows. With
//! [`MatchConfig::threads`] ≤ 1 the engine calls the kernel once over
//! all rows; with more threads it shards the rows across an
//! [`iwb_pool::ThreadPool`] and splices each shard's slab back in fixed
//! row order. Because every cell is computed independently from the
//! same inputs and lands in a caller-owned slot, the parallel result is
//! **bit-identical** to the sequential one — no float reassociation, no
//! scheduling-dependent order (asserted by `tests/determinism.rs`).
//!
//! # Feature caching
//!
//! With [`MatchConfig::cache`] on (default), the engine keeps a
//! [`FeatureCache`] of per-schema text features and fully built
//! [`MatchContext`]s, keyed by schema content fingerprints and a corpus
//! epoch that is bumped whenever learning, the thesaurus, or instance
//! samples change. Cache hits are value-identical to fresh builds.

use crate::cache::{fingerprint, CacheStats, FeatureCache};
use crate::confidence::Confidence;
use crate::context::{MatchContext, TextFeatures};
use crate::feedback::Feedback;
use crate::flooding::{flood_budgeted, flood_rows, FloodingConfig};
use crate::matrix::{matchable_ids, ScoreMatrix};
use crate::merger::VoteMerger;
use crate::voter::MatchVoter;
use crate::voters::default_suite;
use iwb_ling::{Corpus, Thesaurus};
use iwb_model::{ElementId, SchemaGraph};
use iwb_pool::{Budget, Interrupt, ThreadPool};
use std::collections::{HashMap, HashSet};
use std::sync::{mpsc, Arc};

/// Execution knobs for [`HarmonyEngine::run`], exposed through the
/// workbench shell (`match-config`) and the `workbenchd` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// Worker threads for the cross-product stages. `1` runs inline on
    /// the calling thread; `0` means "auto" (the machine's available
    /// parallelism). Results are identical for every value.
    pub threads: usize,
    /// Reuse cached linguistic features across runs. Results are
    /// identical with the cache on or off.
    pub cache: bool,
    /// Per-run deadline in milliseconds (`match-config timeout MS`).
    /// `None` (or `timeout 0` in the shell) means no per-run limit; an
    /// external budget can still impose one. A run that completes
    /// within the deadline is byte-identical to an unlimited run.
    pub timeout_ms: Option<u64>,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            threads: 1,
            cache: true,
            timeout_ms: None,
        }
    }
}

/// Output of one engine run.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// The merged, flooded confidence matrix.
    pub matrix: ScoreMatrix,
    /// Each voter's raw matrix, by voter name (pre-merge, pre-flood).
    pub per_voter: Vec<(String, ScoreMatrix)>,
    /// Flooding iterations executed.
    pub flooding_iterations: usize,
}

impl MatchResult {
    /// The raw vote a named voter cast for a pair.
    pub fn vote_of(&self, voter: &str, src: ElementId, tgt: ElementId) -> Confidence {
        self.per_voter
            .iter()
            .find(|(n, _)| n == voter)
            .map(|(_, m)| m.get(src, tgt))
            .unwrap_or(Confidence::UNKNOWN)
    }
}

/// How the engine produced its most recent result (see
/// [`HarmonyEngine::last_run`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// True when the run spliced recomputed rows into retained state
    /// instead of re-scoring the full cross product.
    pub incremental: bool,
    /// Source rows re-merged on an incremental run (0 on a full run).
    pub dirty_rows: usize,
}

/// State retained from the last completed run so the next run over the
/// same `(source, target, epoch)` can recompute only the rows whose
/// locked cells changed. Voter matrices are kept verbatim (voters are
/// deterministic in the epoch, so they would reproduce them bit-for-bit
/// anyway); `merged` is the *pre-flooding* merge output — merging is
/// cell-local, so a locked-cell edit dirties exactly its source row,
/// and flooding always re-runs from the spliced merge.
struct RetainedRun {
    src_fp: u64,
    tgt_fp: u64,
    epoch: u64,
    locked: HashMap<(ElementId, ElementId), Confidence>,
    per_voter: Vec<(String, ScoreMatrix)>,
    merged: ScoreMatrix,
}

/// The Harmony match engine.
///
/// # Examples
///
/// ```
/// use iwb_harmony::HarmonyEngine;
/// use iwb_model::{DataType, Metamodel, SchemaBuilder};
/// use std::collections::HashMap;
///
/// let source = SchemaBuilder::new("crm", Metamodel::Relational)
///     .open("CUSTOMER")
///     .attr_doc("CUST_ID", DataType::Integer, "Unique customer identifier.")
///     .close()
///     .build();
/// let target = SchemaBuilder::new("erp", Metamodel::Relational)
///     .open("client")
///     .attr_doc("identifier", DataType::Integer, "Unique identifier of the client.")
///     .close()
///     .build();
///
/// let mut engine = HarmonyEngine::default();
/// let result = engine.run(&source, &target, &HashMap::new());
/// let id = source.find_by_name("CUST_ID").unwrap();
/// let ident = target.find_by_name("identifier").unwrap();
/// assert!(result.matrix.get(id, ident).value() > 0.3);
/// ```
pub struct HarmonyEngine {
    voters: Vec<Box<dyn MatchVoter>>,
    merger: VoteMerger,
    flooding: FloodingConfig,
    thesaurus: Arc<Thesaurus>,
    /// Term-boost state carried between runs so documentation learning
    /// persists (§4.3).
    corpus_seed: Corpus,
    /// Instance samples attached for the instance voter (§2: used only
    /// when available).
    source_samples: Vec<(ElementId, Vec<String>)>,
    target_samples: Vec<(ElementId, Vec<String>)>,
    config: MatchConfig,
    cache: FeatureCache,
    /// Bumped whenever state that feeds a [`MatchContext`] changes
    /// (learned boosts, thesaurus, samples); part of the cache key.
    corpus_epoch: u64,
    /// Lazily built worker pool, kept while the thread count is stable.
    pool: Option<ThreadPool>,
    /// Last completed run, kept for incremental re-matching.
    retained: Option<RetainedRun>,
    /// How the most recent run was produced.
    last_run: RunReport,
}

impl Default for HarmonyEngine {
    fn default() -> Self {
        HarmonyEngine::new(
            default_suite(),
            VoteMerger::default(),
            FloodingConfig::default(),
        )
    }
}

impl HarmonyEngine {
    /// An engine with an explicit voter suite, merger, and flooding
    /// configuration.
    pub fn new(
        voters: Vec<Box<dyn MatchVoter>>,
        merger: VoteMerger,
        flooding: FloodingConfig,
    ) -> Self {
        HarmonyEngine {
            voters,
            merger,
            flooding,
            thesaurus: Arc::new(Thesaurus::builtin()),
            corpus_seed: Corpus::new(),
            source_samples: Vec::new(),
            target_samples: Vec::new(),
            config: MatchConfig::default(),
            cache: FeatureCache::new(),
            corpus_epoch: 0,
            pool: None,
            retained: None,
            last_run: RunReport::default(),
        }
    }

    /// Attach per-attribute instance samples for the
    /// [`crate::voters::InstanceVoter`] (no-op for suites without it).
    pub fn set_instance_samples(
        &mut self,
        source: Vec<(ElementId, Vec<String>)>,
        target: Vec<(ElementId, Vec<String>)>,
    ) {
        self.source_samples = source;
        self.target_samples = target;
        self.corpus_epoch += 1;
    }

    /// Replace the thesaurus (e.g. with a domain-specific one). Cached
    /// features depend on thesaurus expansions, so the cache is cleared.
    pub fn set_thesaurus(&mut self, thesaurus: Thesaurus) {
        self.thesaurus = Arc::new(thesaurus);
        self.cache.clear();
        self.corpus_epoch += 1;
    }

    /// The merger (to inspect learned weights).
    pub fn merger(&self) -> &VoteMerger {
        &self.merger
    }

    /// Mutable merger access (to preset weights).
    pub fn merger_mut(&mut self) -> &mut VoteMerger {
        &mut self.merger
    }

    /// The flooding configuration.
    pub fn flooding(&self) -> &FloodingConfig {
        &self.flooding
    }

    /// Mutable flooding configuration.
    pub fn flooding_mut(&mut self) -> &mut FloodingConfig {
        &mut self.flooding
    }

    /// The execution configuration.
    pub fn match_config(&self) -> MatchConfig {
        self.config
    }

    /// Set threads/cache. Turning the cache off also drops any cached
    /// features; the worker pool is rebuilt lazily on the next run.
    pub fn set_match_config(&mut self, config: MatchConfig) {
        if !config.cache {
            self.cache.clear();
        }
        self.config = config;
    }

    /// Cumulative feature-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// How the most recent [`HarmonyEngine::run_budgeted`] was produced
    /// (full vs incremental, and how many rows were recomputed).
    pub fn last_run(&self) -> RunReport {
        self.last_run
    }

    /// The current corpus epoch: bumped by learning, thesaurus swaps,
    /// and instance-sample changes. Part of every cache and snapshot
    /// artifact key — artifacts from another epoch are never served.
    pub fn corpus_epoch(&self) -> u64 {
        self.corpus_epoch
    }

    /// Per-element text features for `graph`, served from the cache or
    /// computed (and cached) now. The persistence layer snapshots these
    /// so a restarted daemon skips re-tokenisation.
    pub fn export_text_features(
        &mut self,
        graph: &SchemaGraph,
    ) -> HashMap<ElementId, Arc<TextFeatures>> {
        let fp = fingerprint(graph);
        let thesaurus = Arc::clone(&self.thesaurus);
        (*self.cache.export_text(fp, graph, &thesaurus)).clone()
    }

    /// Seed the feature cache with text features decoded from a
    /// snapshot. Content-addressed: if `graph` was edited since the
    /// snapshot, the primed entry is simply never hit.
    pub fn prime_text_features(
        &mut self,
        graph: &SchemaGraph,
        features: HashMap<ElementId, Arc<TextFeatures>>,
    ) {
        if self.config.cache {
            self.cache.prime_text(fingerprint(graph), features);
        }
    }

    /// Drop all cached features (call when a schema was edited in
    /// place; the workbench does this on blackboard schema events).
    pub fn invalidate_features(&mut self) {
        self.cache.clear();
    }

    /// Voter names in execution order.
    pub fn voter_names(&self) -> Vec<&'static str> {
        self.voters.iter().map(|v| v.name()).collect()
    }

    /// The merger's current per-voter weights, in voter execution
    /// order (unlearned voters report the default weight 1.0).
    ///
    /// This is the engine's observable re-weighting state: the
    /// curation-replay harness (`iwb-eval`) samples it after every
    /// feedback round to measure convergence — the round after which
    /// the largest per-voter weight delta stays below a plateau
    /// threshold.
    pub fn reweight_state(&self) -> Vec<(String, f64)> {
        self.voters
            .iter()
            .map(|v| (v.name().to_owned(), self.merger.weight(v.name())))
            .collect()
    }

    /// The thread count [`MatchConfig::threads`] resolves to.
    pub fn effective_threads(&self) -> usize {
        match self.config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// The worker pool for the current thread count, (re)built on size
    /// changes.
    fn pool(&mut self, threads: usize) -> &ThreadPool {
        if self.pool.as_ref().map(ThreadPool::threads) != Some(threads) {
            self.pool = Some(ThreadPool::new(threads));
        }
        self.pool.as_ref().expect("pool just ensured")
    }

    /// A built match context for the pair — served from the feature
    /// cache when enabled.
    fn context(&mut self, source: &SchemaGraph, target: &SchemaGraph) -> Arc<MatchContext> {
        let corpus = self.corpus_seed.clone();
        let thesaurus = Arc::clone(&self.thesaurus);
        let mut ctx = if self.config.cache {
            let th = Arc::clone(&thesaurus);
            let built = self.cache.context(
                source,
                target,
                &thesaurus,
                self.corpus_epoch,
                move |src, tgt, src_text, tgt_text| {
                    MatchContext::from_parts(src, tgt, th, corpus, src_text, tgt_text)
                },
            );
            if self.source_samples.is_empty() && self.target_samples.is_empty() {
                return built;
            }
            // Samples are attached post-build; contexts in the cache
            // stay sample-free, so clone-on-write here. The epoch bump
            // in `set_instance_samples` keeps keys honest either way.
            MatchContext::from_parts(
                Arc::new(source.clone()),
                Arc::new(target.clone()),
                thesaurus,
                self.corpus_seed.clone(),
                built.src_text_map(),
                built.tgt_text_map(),
            )
        } else {
            MatchContext::build(source, target, &thesaurus, corpus)
        };
        ctx.set_samples(
            crate::context::SchemaSide::Source,
            self.source_samples.clone(),
        );
        ctx.set_samples(
            crate::context::SchemaSide::Target,
            self.target_samples.clone(),
        );
        Arc::new(ctx)
    }

    /// Run the full pipeline. `locked` maps user-decided pairs to their
    /// ±1 confidence; the engine copies them into the result unchanged
    /// and flooding never modifies them (§4.3).
    ///
    /// Equivalent to [`HarmonyEngine::run_budgeted`] with an unlimited
    /// [`Budget`] — it cannot be interrupted and never fails.
    pub fn run(
        &mut self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        locked: &HashMap<(ElementId, ElementId), Confidence>,
    ) -> MatchResult {
        self.run_budgeted(source, target, locked, &Budget::unlimited())
            .expect("unlimited budget never interrupts")
    }

    /// [`HarmonyEngine::run`] under a cooperative [`Budget`].
    ///
    /// The budget is consulted between the pipeline stages (context
    /// build → voter scoring → merge → flooding), at every shard
    /// boundary inside the parallel stages, and before each flooding
    /// iteration (whose count is already bounded by the deterministic
    /// [`FloodingConfig::max_iterations`] budget). A cancelled or
    /// expired run returns a structured [`Interrupt`] and produces **no
    /// partial result** — engine state (voters, merger, caches) is left
    /// exactly as it was, so a later retry is byte-identical to a fresh
    /// run. A run that completes is byte-identical to an unbudgeted
    /// one: the budget only decides *whether* stages run, never *what*
    /// they compute.
    ///
    /// [`MatchConfig::timeout_ms`] is interpreted by the caller (the
    /// workbench harmony tool tightens the budget with it); the engine
    /// itself only honours the budget it is handed.
    pub fn run_budgeted(
        &mut self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        locked: &HashMap<(ElementId, ElementId), Confidence>,
        budget: &Budget,
    ) -> Result<MatchResult, Interrupt> {
        budget.check()?;
        if let Some(result) = self.try_incremental(source, target, locked, budget)? {
            return Ok(result);
        }
        self.last_run = RunReport::default();
        let ctx = self.context(source, target);
        budget.check()?;
        let src_ids = Arc::new(matchable_ids(source));
        let tgt_ids = Arc::new(matchable_ids(target));
        let rows = src_ids.len();
        let threads = self.effective_threads().min(rows.max(1));

        // Stage 2 (Figure 1): every voter scores every matchable pair,
        // row ranges sharded across the pool.
        let names: Vec<String> = self.voters.iter().map(|v| v.name().to_owned()).collect();
        let mut per_voter: Vec<(String, ScoreMatrix)> = names
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    ScoreMatrix::new((*src_ids).clone(), (*tgt_ids).clone()),
                )
            })
            .collect();
        if threads <= 1 {
            let slabs = score_rows(&ctx, &self.voters, &src_ids, &tgt_ids, 0, rows);
            for (vi, slab) in slabs.into_iter().enumerate() {
                per_voter[vi].1.splice_rows(0, &slab);
            }
        } else {
            let shards = shard_ranges(rows, threads);
            let voters = Arc::new(std::mem::take(&mut self.voters));
            let (tx, rx) = mpsc::channel();
            let jobs: Vec<Box<dyn FnOnce() + Send>> = shards
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    let (ctx, voters) = (Arc::clone(&ctx), Arc::clone(&voters));
                    let (src_ids, tgt_ids) = (Arc::clone(&src_ids), Arc::clone(&tgt_ids));
                    let tx = tx.clone();
                    Box::new(move || {
                        let slabs = score_rows(&ctx, &voters, &src_ids, &tgt_ids, lo, hi);
                        tx.send((i, slabs)).expect("score shard channel");
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let outcome = self.pool(threads).run_all_budgeted(jobs, budget);
            drop(tx);
            let collected: Vec<_> = rx.into_iter().collect();
            // Skipped shards dropped their closures (and voter clones),
            // so ownership can be reclaimed whether the batch completed
            // or was interrupted — the engine is reusable after aborts.
            self.voters = Arc::try_unwrap(voters)
                .ok()
                .expect("all scoring jobs completed or were dropped");
            outcome?;
            for (i, slabs) in collected {
                for (vi, slab) in slabs.into_iter().enumerate() {
                    per_voter[vi].1.splice_rows(shards[i].0, &slab);
                }
            }
        }
        budget.check()?;

        // Stage 3: merge (locked cells pass through unchanged).
        let mut matrix = ScoreMatrix::new((*src_ids).clone(), (*tgt_ids).clone());
        if threads <= 1 {
            let slab = merge_rows(
                &per_voter,
                &self.merger,
                locked,
                &src_ids,
                &tgt_ids,
                0,
                rows,
            );
            matrix.splice_rows(0, &slab);
        } else {
            let shards = shard_ranges(rows, threads);
            let shared = Arc::new(per_voter);
            let merger = Arc::new(self.merger.clone());
            let locked_arc = Arc::new(locked.clone());
            let (tx, rx) = mpsc::channel();
            let jobs: Vec<Box<dyn FnOnce() + Send>> = shards
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    let (shared, merger) = (Arc::clone(&shared), Arc::clone(&merger));
                    let locked = Arc::clone(&locked_arc);
                    let (src_ids, tgt_ids) = (Arc::clone(&src_ids), Arc::clone(&tgt_ids));
                    let tx = tx.clone();
                    Box::new(move || {
                        let slab =
                            merge_rows(&shared, &merger, &locked, &src_ids, &tgt_ids, lo, hi);
                        tx.send((i, slab)).expect("merge shard channel");
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let outcome = self.pool(threads).run_all_budgeted(jobs, budget);
            drop(tx);
            let collected: Vec<_> = rx.into_iter().collect();
            per_voter = Arc::try_unwrap(shared)
                .unwrap_or_else(|_| panic!("all merge jobs completed or were dropped"));
            outcome?;
            for (i, slab) in collected {
                matrix.splice_rows(shards[i].0, &slab);
            }
        }
        budget.check()?;

        // Stage 4: similarity flooding, user cells pinned. The fixpoint
        // loop is bounded by the deterministic `max_iterations` budget
        // and re-checks the interruption budget before each iteration.
        // The pre-flooding merge is what incremental re-match splices
        // into, so snapshot it before flooding mutates the matrix.
        let merged = matrix.clone();
        let locked_set: HashSet<(ElementId, ElementId)> = locked.keys().copied().collect();
        let flooding_iterations = if threads <= 1 {
            flood_budgeted(
                &mut matrix,
                source,
                target,
                &locked_set,
                &self.flooding,
                budget,
            )?
        } else {
            self.flood_parallel(&mut matrix, source, target, &locked_set, threads, budget)?
        };

        self.retained = Some(RetainedRun {
            src_fp: fingerprint(source),
            tgt_fp: fingerprint(target),
            epoch: self.corpus_epoch,
            locked: locked.clone(),
            per_voter: per_voter.clone(),
            merged,
        });
        Ok(MatchResult {
            matrix,
            per_voter,
            flooding_iterations,
        })
    }

    /// Serve a run from retained state when only locked cells changed.
    ///
    /// Applicable iff the schema fingerprints and the corpus epoch
    /// match the retained run — any edit, learning step, thesaurus or
    /// sample change falls back to the full pipeline. The locked-cell
    /// diff (added, removed, or re-valued cells) dirties exactly the
    /// affected source rows; those rows are re-merged with the *same*
    /// cell-local kernel the full pipeline shards, spliced into the
    /// retained pre-flooding merge, and flooding re-runs in full.
    /// Because merging is cell-local and flooding is a deterministic
    /// function of the merged matrix, the result is byte-identical to a
    /// from-scratch run (asserted by `tests/determinism.rs`).
    ///
    /// On interruption the retained state is restored untouched, so an
    /// aborted incremental run can be retried — or superseded by a full
    /// run — with no drift.
    fn try_incremental(
        &mut self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        locked: &HashMap<(ElementId, ElementId), Confidence>,
        budget: &Budget,
    ) -> Result<Option<MatchResult>, Interrupt> {
        let Some(retained) = self.retained.take() else {
            return Ok(None);
        };
        if retained.src_fp != fingerprint(source)
            || retained.tgt_fp != fingerprint(target)
            || retained.epoch != self.corpus_epoch
        {
            // Stale: the inputs changed, not just the locked cells.
            return Ok(None);
        }

        // Diff the locked maps; a row is dirty when any of its cells
        // was added, removed, or re-valued since the retained run.
        let mut dirty: HashSet<ElementId> = HashSet::new();
        for (&(s, t), &c) in locked {
            if retained.locked.get(&(s, t)) != Some(&c) {
                dirty.insert(s);
            }
        }
        for &(s, t) in retained.locked.keys() {
            if !locked.contains_key(&(s, t)) {
                dirty.insert(s);
            }
        }
        if dirty.is_empty() {
            // Identical rerun: no row to splice. Fall through to the
            // full pipeline, which serves its context from the cache —
            // keeping cache accounting (and every other observable)
            // exactly as before incremental re-matching existed. The
            // full run rebuilds the retained state it consumed here.
            return Ok(None);
        }

        let src_ids = retained.merged.src_ids();
        let tgt_ids = retained.merged.tgt_ids();
        let mut merged = retained.merged.clone();
        let mut dirty_rows = 0;
        if !tgt_ids.is_empty() {
            for (row, &s) in src_ids.iter().enumerate() {
                if !dirty.contains(&s) {
                    continue;
                }
                let slab = merge_rows(
                    &retained.per_voter,
                    &self.merger,
                    locked,
                    src_ids,
                    tgt_ids,
                    row,
                    row + 1,
                );
                merged.splice_rows(row, &slab);
                dirty_rows += 1;
            }
        }

        let locked_set: HashSet<(ElementId, ElementId)> = locked.keys().copied().collect();
        let mut matrix = merged.clone();
        let rows = matrix.src_ids().len();
        let threads = self.effective_threads().min(rows.max(1));
        let flooded = if threads <= 1 {
            flood_budgeted(
                &mut matrix,
                source,
                target,
                &locked_set,
                &self.flooding,
                budget,
            )
        } else {
            self.flood_parallel(&mut matrix, source, target, &locked_set, threads, budget)
        };
        let flooding_iterations = match flooded {
            Ok(n) => n,
            Err(interrupt) => {
                self.retained = Some(retained);
                return Err(interrupt);
            }
        };

        let result = MatchResult {
            matrix,
            per_voter: retained.per_voter.clone(),
            flooding_iterations,
        };
        self.last_run = RunReport {
            incremental: true,
            dirty_rows,
        };
        self.retained = Some(RetainedRun {
            locked: locked.clone(),
            merged,
            ..retained
        });
        Ok(Some(result))
    }

    /// The flooding fixpoint loop with each iteration's rows sharded
    /// across the pool. Mirrors [`flood`] exactly: same kernel, same
    /// snapshot, same convergence test. Takes the graphs directly (not
    /// a built [`MatchContext`]) so the incremental path can flood a
    /// spliced merge without building a context at all.
    fn flood_parallel(
        &mut self,
        matrix: &mut ScoreMatrix,
        source: &SchemaGraph,
        target: &SchemaGraph,
        locked: &HashSet<(ElementId, ElementId)>,
        threads: usize,
        budget: &Budget,
    ) -> Result<usize, Interrupt> {
        let config = self.flooding;
        if !config.enable_up && !config.enable_down {
            return Ok(0);
        }
        let rows = matrix.src_ids().len();
        let shards = shard_ranges(rows, threads);
        let locked = Arc::new(locked.clone());
        let source = Arc::new(source.clone());
        let target = Arc::new(target.clone());
        for iteration in 0..config.max_iterations {
            budget.check()?;
            let before = Arc::new(matrix.clone());
            let (tx, rx) = mpsc::channel();
            let jobs: Vec<Box<dyn FnOnce() + Send>> = shards
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    let (before, locked) = (Arc::clone(&before), Arc::clone(&locked));
                    let (source, target) = (Arc::clone(&source), Arc::clone(&target));
                    let tx = tx.clone();
                    Box::new(move || {
                        let slab = flood_rows(&before, &source, &target, &locked, &config, lo, hi);
                        tx.send((i, slab)).expect("flood shard channel");
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let outcome = self.pool(threads).run_all_budgeted(jobs, budget);
            drop(tx);
            let collected: Vec<_> = rx.into_iter().collect();
            outcome?;
            for (i, slab) in collected {
                matrix.splice_rows(shards[i].0, &slab);
            }
            if matrix.mean_abs_diff(&before) < config.epsilon {
                return Ok(iteration + 1);
            }
        }
        Ok(config.max_iterations)
    }

    /// Feed user decisions back into the engine (§4.3): each voter
    /// learns internally, and the merger re-weights voters against the
    /// result of the *previous* run.
    pub fn learn(
        &mut self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        previous: &MatchResult,
        feedback: &[Feedback],
    ) {
        if feedback.is_empty() {
            return;
        }
        let mut ctx =
            MatchContext::build(source, target, &self.thesaurus, self.corpus_seed.clone());
        for voter in &mut self.voters {
            voter.learn(&mut ctx, feedback);
        }
        // Persist term boosts learned by voters into the seed corpus;
        // the epoch bump invalidates cached contexts built on the old
        // boosts.
        self.corpus_seed = ctx.corpus;
        self.corpus_epoch += 1;
        let names: Vec<&str> = self.voters.iter().map(|v| v.name()).collect();
        self.merger.learn(feedback, &names, |voter, fb| {
            previous.vote_of(voter, fb.src, fb.tgt)
        });
    }
}

/// Contiguous row ranges `(lo, hi)` splitting `rows` into `shards`
/// near-equal parts (the first `rows % shards` parts get one extra).
/// The partition is a pure function of its inputs, so shard assembly
/// order is fixed.
fn shard_ranges(rows: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(rows.max(1));
    let base = rows / shards;
    let extra = rows % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for i in 0..shards {
        let hi = lo + base + usize::from(i < extra);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Stage-2 kernel: every voter's scores for source rows `lo..hi`,
/// returned as one row-major slab per voter.
fn score_rows(
    ctx: &MatchContext,
    voters: &[Box<dyn MatchVoter>],
    src_ids: &[ElementId],
    tgt_ids: &[ElementId],
    lo: usize,
    hi: usize,
) -> Vec<Vec<f64>> {
    let cells = (hi - lo) * tgt_ids.len();
    let mut out: Vec<Vec<f64>> = voters.iter().map(|_| Vec::with_capacity(cells)).collect();
    for &s in &src_ids[lo..hi] {
        for &t in tgt_ids {
            for (vi, voter) in voters.iter().enumerate() {
                out[vi].push(voter.vote(ctx, s, t).value());
            }
        }
    }
    out
}

/// Stage-3 kernel: merged scores for source rows `lo..hi`. The votes
/// buffer is hoisted and reused across cells — no per-pair allocation.
fn merge_rows(
    per_voter: &[(String, ScoreMatrix)],
    merger: &VoteMerger,
    locked: &HashMap<(ElementId, ElementId), Confidence>,
    src_ids: &[ElementId],
    tgt_ids: &[ElementId],
    lo: usize,
    hi: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity((hi - lo) * tgt_ids.len());
    let mut votes: Vec<(&str, Confidence)> = Vec::with_capacity(per_voter.len());
    for &s in &src_ids[lo..hi] {
        for &t in tgt_ids {
            if let Some(&c) = locked.get(&(s, t)) {
                out.push(c.value());
                continue;
            }
            votes.clear();
            for (name, m) in per_voter {
                votes.push((name.as_str(), m.get(s, t)));
            }
            out.push(merger.merge(&votes).value());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};
    use iwb_loaders::{SchemaLoader, XsdLoader};
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn fig2() -> (SchemaGraph, SchemaGraph) {
        (
            XsdLoader.load(FIG2_SOURCE_XSD, "purchaseOrder").unwrap(),
            XsdLoader.load(FIG2_TARGET_XSD, "invoice").unwrap(),
        )
    }

    #[test]
    fn figure2_pipeline_finds_plausible_links() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        let ship = s.find_by_name("shipTo").unwrap();
        let shipping = t.find_by_name("shippingInfo").unwrap();
        // shipTo ↔ shippingInfo is the Figure 3 cell with +0.8.
        assert!(
            result.matrix.get(ship, shipping).value() > 0.3,
            "got {}",
            result.matrix.get(ship, shipping)
        );
        // Best target for shipTo must be shippingInfo.
        assert_eq!(result.matrix.best_for_src(ship).unwrap().0, shipping);
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        let name = t.find_by_name("name").unwrap();
        assert!(result.matrix.get(sub, total).value() > result.matrix.get(sub, name).value());
    }

    #[test]
    fn locked_cells_survive_the_pipeline() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let first = s.find_by_name("firstName").unwrap();
        let total = t.find_by_name("total").unwrap();
        let mut locked = HashMap::new();
        locked.insert((first, total), Confidence::REJECT);
        let result = engine.run(&s, &t, &locked);
        assert_eq!(result.matrix.get(first, total), Confidence::REJECT);
    }

    #[test]
    fn per_voter_matrices_are_reported() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        assert_eq!(result.per_voter.len(), 9);
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        assert!(result.vote_of("name", sub, total).value() > 0.0);
        assert_eq!(
            result.vote_of("nonexistent", sub, total),
            Confidence::UNKNOWN
        );
    }

    #[test]
    fn learning_changes_merger_weights() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        let first = s.find_by_name("firstName").unwrap();
        let name = t.find_by_name("name").unwrap();
        let fb = vec![Feedback::accept(sub, total), Feedback::accept(first, name)];
        engine.learn(&s, &t, &result, &fb);
        // At least one voter weight moved away from 1.
        assert!(engine
            .merger()
            .weights()
            .values()
            .any(|w| (w - 1.0).abs() > 1e-9));
    }

    #[test]
    fn reweight_state_tracks_voter_order_and_learned_weights() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        let fresh = engine.reweight_state();
        let names: Vec<String> = engine
            .voter_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        assert_eq!(
            fresh.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            names,
            "weights must come back in voter execution order"
        );
        assert!(fresh.iter().all(|(_, w)| *w == 1.0), "unlearned = 1.0");
        let result = engine.run(&s, &t, &HashMap::new());
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        engine.learn(&s, &t, &result, &[Feedback::accept(sub, total)]);
        let learned = engine.reweight_state();
        assert_eq!(learned.len(), fresh.len());
        assert!(
            learned.iter().any(|(_, w)| (*w - 1.0).abs() > 1e-9),
            "learning must move at least one reported weight"
        );
    }

    #[test]
    fn instance_samples_reach_the_extended_suite() {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("T")
            .attr("mystery1", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("U")
            .attr("enigma9", DataType::Text)
            .close()
            .build();
        let a = s.find_by_name("mystery1").unwrap();
        let b = t.find_by_name("enigma9").unwrap();
        let vals = |xs: &[&str]| xs.iter().map(|x| (*x).to_string()).collect::<Vec<_>>();
        let mut engine = HarmonyEngine::new(
            crate::voters::extended_suite(),
            VoteMerger::default(),
            FloodingConfig::disabled(),
        );
        let before = engine.run(&s, &t, &HashMap::new()).matrix.get(a, b).value();
        engine.set_instance_samples(
            vec![(a, vals(&["ASP", "CON", "GRS"]))],
            vec![(b, vals(&["asp", "con", "grs"]))],
        );
        let result = engine.run(&s, &t, &HashMap::new());
        assert!(result.vote_of("instance", a, b).value() > 0.5);
        assert!(result.matrix.get(a, b).value() > before);
    }

    #[test]
    fn empty_schemas_produce_empty_matrix() {
        let s = SchemaBuilder::new("s", Metamodel::Xml).build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("e")
            .attr("x", DataType::Text)
            .close()
            .build();
        let mut engine = HarmonyEngine::default();
        let result = engine.run(&s, &t, &HashMap::new());
        assert!(result.matrix.is_empty());
    }

    #[test]
    fn empty_schemas_work_with_threads() {
        let s = SchemaBuilder::new("s", Metamodel::Xml).build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("e")
            .attr("x", DataType::Text)
            .close()
            .build();
        let mut engine = HarmonyEngine::default();
        engine.set_match_config(MatchConfig {
            threads: 4,
            cache: true,
            ..MatchConfig::default()
        });
        let result = engine.run(&s, &t, &HashMap::new());
        assert!(result.matrix.is_empty());
        let result = engine.run(&t, &s, &HashMap::new());
        assert!(result.matrix.is_empty());
    }

    #[test]
    fn cache_hits_on_rerun() {
        let (s, t) = fig2();
        let mut engine = HarmonyEngine::default();
        engine.run(&s, &t, &HashMap::new());
        engine.run(&s, &t, &HashMap::new());
        let stats = engine.cache_stats();
        assert_eq!(stats.context_hits, 1);
        assert_eq!(stats.context_misses, 1);
        // Invalidation forces a rebuild (text features recomputed too).
        engine.invalidate_features();
        engine.run(&s, &t, &HashMap::new());
        assert_eq!(engine.cache_stats().context_misses, 2);
        assert_eq!(engine.cache_stats().text_misses, 4);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        assert_eq!(shard_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(shard_ranges(2, 8), vec![(0, 1), (1, 2)]);
        assert_eq!(shard_ranges(0, 4), vec![(0, 0)]);
        let ranges = shard_ranges(97, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 97);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
