//! Gold-standard evaluation: precision, recall, F1.
//!
//! The experiment harness (DESIGN.md E1–E3, E5) scores engine output
//! against known-correct correspondences. Gold standards are expressed
//! over name paths so they survive reloading a schema.

use crate::filters::Link;
use iwb_model::{ElementId, SchemaGraph};
use std::collections::HashSet;
use std::fmt;

/// The known-correct correspondences for a schema pair.
#[derive(Debug, Clone, Default)]
pub struct GoldStandard {
    pairs: HashSet<(String, String)>,
}

impl GoldStandard {
    /// An empty gold standard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a correct pair by name path.
    pub fn add(&mut self, src_path: impl Into<String>, tgt_path: impl Into<String>) {
        self.pairs.insert((src_path.into(), tgt_path.into()));
    }

    /// Number of gold pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs are recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True if the pair of elements is gold.
    pub fn contains(
        &self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        src: ElementId,
        tgt: ElementId,
    ) -> bool {
        self.pairs
            .contains(&(source.name_path(src), target.name_path(tgt)))
    }

    /// Score a set of predicted links.
    pub fn score(
        &self,
        source: &SchemaGraph,
        target: &SchemaGraph,
        predicted: &[Link],
    ) -> PrMetrics {
        let predicted_set: HashSet<(String, String)> = predicted
            .iter()
            .map(|l| (source.name_path(l.src), target.name_path(l.tgt)))
            .collect();
        let tp = predicted_set.intersection(&self.pairs).count();
        PrMetrics {
            true_positives: tp,
            predicted: predicted_set.len(),
            actual: self.pairs.len(),
        }
    }

    /// Iterate gold pairs as (source path, target path).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }
}

impl<A: Into<String>, B: Into<String>> FromIterator<(A, B)> for GoldStandard {
    fn from_iter<T: IntoIterator<Item = (A, B)>>(iter: T) -> Self {
        let mut g = GoldStandard::new();
        for (a, b) in iter {
            g.add(a, b);
        }
        g
    }
}

/// Precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrMetrics {
    /// Correctly predicted pairs.
    pub true_positives: usize,
    /// Total predicted pairs.
    pub predicted: usize,
    /// Total gold pairs.
    pub actual: usize,
}

impl PrMetrics {
    /// Precision: TP / predicted (1 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.predicted as f64
        }
    }

    /// Recall: TP / actual (1 when the gold set is empty).
    pub fn recall(&self) -> f64 {
        if self.actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.actual as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for PrMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} ({}/{} predicted, {} gold)",
            self.precision(),
            self.recall(),
            self.f1(),
            self.true_positives,
            self.predicted,
            self.actual
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::Confidence;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn link(src: ElementId, tgt: ElementId) -> Link {
        Link {
            src,
            tgt,
            confidence: Confidence::engine(0.9),
            user_defined: false,
        }
    }

    #[test]
    fn scoring_counts_hits_and_misses() {
        let s = SchemaBuilder::new("s", Metamodel::Xml)
            .open("e")
            .attr("a", DataType::Text)
            .attr("b", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("f")
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .close()
            .build();
        let gold: GoldStandard = [("s/e/a", "t/f/x"), ("s/e/b", "t/f/y")]
            .into_iter()
            .collect();
        let a = s.find_by_name("a").unwrap();
        let b = s.find_by_name("b").unwrap();
        let x = t.find_by_name("x").unwrap();
        let y = t.find_by_name("y").unwrap();
        // One hit, one wrong prediction, one gold pair missed.
        let predicted = vec![link(a, x), link(b, x)];
        let m = gold.score(&s, &t, &predicted);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.predicted, 2);
        assert_eq!(m.actual, 2);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert!((m.f1() - 0.5).abs() < 1e-12);
        assert!(gold.contains(&s, &t, a, x));
        assert!(!gold.contains(&s, &t, a, y));
        let _ = (b, y);
    }

    #[test]
    fn degenerate_cases() {
        let m = PrMetrics {
            true_positives: 0,
            predicted: 0,
            actual: 0,
        };
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        let none = PrMetrics {
            true_positives: 0,
            predicted: 5,
            actual: 5,
        };
        assert_eq!(none.f1(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let m = PrMetrics {
            true_positives: 3,
            predicted: 4,
            actual: 6,
        };
        let s = m.to_string();
        assert!(s.contains("P=0.750"));
        assert!(s.contains("R=0.500"));
    }
}
