//! User feedback items fed back into the engine.
//!
//! §4.3: "When the Harmony engine is invoked after some correspondences
//! have been explicitly accepted or rejected (i.e., set to +1 or -1),
//! this information is passed to the engine and used in two ways" —
//! voter-internal learning and merger re-weighting.

use iwb_model::ElementId;

/// One explicit user decision about a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feedback {
    /// Source element.
    pub src: ElementId,
    /// Target element.
    pub tgt: ElementId,
    /// True = accepted (+1), false = rejected (-1).
    pub accepted: bool,
}

impl Feedback {
    /// An accepted pair.
    pub fn accept(src: ElementId, tgt: ElementId) -> Self {
        Feedback {
            src,
            tgt,
            accepted: true,
        }
    }

    /// A rejected pair.
    pub fn reject(src: ElementId, tgt: ElementId) -> Self {
        Feedback {
            src,
            tgt,
            accepted: false,
        }
    }

    /// The decision as a signed unit value.
    pub fn sign(&self) -> f64 {
        if self.accepted {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_sign() {
        let a = Feedback::accept(ElementId::from_index(1), ElementId::from_index(2));
        assert!(a.accepted);
        assert_eq!(a.sign(), 1.0);
        let r = Feedback::reject(ElementId::from_index(1), ElementId::from_index(2));
        assert_eq!(r.sign(), -1.0);
    }
}
