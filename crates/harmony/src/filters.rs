//! Link and node filters (paper §4.2).
//!
//! "The Harmony GUI supports a variety of filters that help the
//! integration engineer focus her attention. These filters are loosely
//! categorized as link filters and node filters. A link filter is a
//! predicate that is evaluated against each candidate correspondence to
//! determine if it should be displayed. A node filter determines if a
//! given schema element should be *enabled*."
//!
//! Implemented link filters (all three from the paper):
//! * [`LinkFilter::ConfidenceAtLeast`] — the confidence slider;
//! * [`LinkFilter::Provenance`] — human-generated vs machine-suggested;
//! * [`LinkFilter::BestPerElement`] — maximal-confidence links per
//!   element (ties included).
//!
//! Implemented node filters (both from the paper):
//! * [`NodeFilter::MaxDepth`] — "enables only those schema elements that
//!   appear at a given depth or above";
//! * [`NodeFilter::Subtree`] — "enables only those elements that appear
//!   in the indicated sub-tree".

use crate::confidence::Confidence;
use crate::matrix::ScoreMatrix;
use iwb_model::{ElementId, SchemaGraph};
use std::collections::HashSet;

/// One displayed (or displayable) correspondence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Source element.
    pub src: ElementId,
    /// Target element.
    pub tgt: ElementId,
    /// Current confidence.
    pub confidence: Confidence,
    /// True when the link was drawn/decided by the user.
    pub user_defined: bool,
}

/// Which side of the matrix a node filter applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The source schema.
    Source,
    /// The target schema.
    Target,
}

/// Provenance selection for the second link filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Show only user-drawn/decided links.
    HumanOnly,
    /// Show only machine-suggested links.
    MachineOnly,
}

/// A predicate over candidate links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFilter {
    /// The confidence slider: keep links with confidence ≥ threshold.
    ConfidenceAtLeast(f64),
    /// Keep links by provenance.
    Provenance(Provenance),
    /// Keep, per schema element, only its maximal-confidence links
    /// ("usually a single link, but ties are possible").
    BestPerElement,
}

/// A predicate over schema elements; disabled elements are grayed out
/// and their links are not displayed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFilter {
    /// Enable only elements at `depth` or above on the given side.
    MaxDepth(Side, u32),
    /// Enable only the containment subtree of an element.
    Subtree(Side, ElementId),
}

/// A composed set of filters, applied conjunctively.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    link_filters: Vec<LinkFilter>,
    node_filters: Vec<NodeFilter>,
}

impl FilterSet {
    /// No filtering: every link visible.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link filter.
    pub fn with_link(mut self, f: LinkFilter) -> Self {
        self.link_filters.push(f);
        self
    }

    /// Add a node filter.
    pub fn with_node(mut self, f: NodeFilter) -> Self {
        self.node_filters.push(f);
        self
    }

    /// True if the element is enabled under every node filter.
    pub fn enabled(&self, graph: &SchemaGraph, side: Side, id: ElementId) -> bool {
        self.node_filters.iter().all(|f| match f {
            NodeFilter::MaxDepth(s, depth) => *s != side || graph.depth(id) <= *depth,
            NodeFilter::Subtree(s, root) => *s != side || graph.is_in_subtree(*root, id),
        })
    }

    /// The links visible under the full filter set.
    ///
    /// `user_pairs` identifies which cells are user decisions (for the
    /// provenance filter).
    pub fn visible(
        &self,
        matrix: &ScoreMatrix,
        source: &SchemaGraph,
        target: &SchemaGraph,
        user_pairs: &HashSet<(ElementId, ElementId)>,
    ) -> Vec<Link> {
        let mut links: Vec<Link> = matrix
            .iter()
            .filter(|&(s, t, _)| {
                self.enabled(source, Side::Source, s) && self.enabled(target, Side::Target, t)
            })
            .map(|(s, t, c)| Link {
                src: s,
                tgt: t,
                confidence: c,
                user_defined: user_pairs.contains(&(s, t)),
            })
            .collect();

        for f in &self.link_filters {
            match f {
                LinkFilter::ConfidenceAtLeast(th) => {
                    links.retain(|l| l.confidence.value() >= *th);
                }
                LinkFilter::Provenance(p) => links.retain(|l| match p {
                    Provenance::HumanOnly => l.user_defined,
                    Provenance::MachineOnly => !l.user_defined,
                }),
                LinkFilter::BestPerElement => {
                    // Keep a link iff it is maximal for its source OR its
                    // target among currently surviving links.
                    let mut best_src: std::collections::HashMap<ElementId, f64> =
                        std::collections::HashMap::new();
                    let mut best_tgt: std::collections::HashMap<ElementId, f64> =
                        std::collections::HashMap::new();
                    for l in &links {
                        let v = l.confidence.value();
                        best_src
                            .entry(l.src)
                            .and_modify(|b| *b = b.max(v))
                            .or_insert(v);
                        best_tgt
                            .entry(l.tgt)
                            .and_modify(|b| *b = b.max(v))
                            .or_insert(v);
                    }
                    links.retain(|l| {
                        let v = l.confidence.value();
                        v >= best_src[&l.src] || v >= best_tgt[&l.tgt]
                    });
                }
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn setup() -> (SchemaGraph, SchemaGraph, ScoreMatrix) {
        let s = SchemaBuilder::new("s", Metamodel::Xml)
            .open("facility")
            .attr("a", DataType::Text)
            .close()
            .open("weather")
            .attr("b", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("site")
            .attr("x", DataType::Text)
            .close()
            .build();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        let fac = s.find_by_name("facility").unwrap();
        let wx = s.find_by_name("weather").unwrap();
        let site = t.find_by_name("site").unwrap();
        let a = s.find_by_name("a").unwrap();
        let x = t.find_by_name("x").unwrap();
        m.set(fac, site, Confidence::engine(0.8));
        m.set(wx, site, Confidence::engine(0.2));
        m.set(a, x, Confidence::ACCEPT);
        (s, t, m)
    }

    #[test]
    fn confidence_slider() {
        let (s, t, m) = setup();
        let user: HashSet<_> = [(s.find_by_name("a").unwrap(), t.find_by_name("x").unwrap())]
            .into_iter()
            .collect();
        let fs = FilterSet::new().with_link(LinkFilter::ConfidenceAtLeast(0.5));
        let links = fs.visible(&m, &s, &t, &user);
        assert_eq!(links.len(), 2); // 0.8 and +1
        assert!(links.iter().all(|l| l.confidence.value() >= 0.5));
    }

    #[test]
    fn provenance_filter_splits_human_and_machine() {
        let (s, t, m) = setup();
        let user: HashSet<_> = [(s.find_by_name("a").unwrap(), t.find_by_name("x").unwrap())]
            .into_iter()
            .collect();
        let human = FilterSet::new()
            .with_link(LinkFilter::Provenance(Provenance::HumanOnly))
            .visible(&m, &s, &t, &user);
        assert_eq!(human.len(), 1);
        assert!(human[0].user_defined);
        let machine = FilterSet::new()
            .with_link(LinkFilter::ConfidenceAtLeast(0.1))
            .with_link(LinkFilter::Provenance(Provenance::MachineOnly))
            .visible(&m, &s, &t, &user);
        assert!(machine.iter().all(|l| !l.user_defined));
    }

    #[test]
    fn best_per_element_keeps_maximal_links() {
        let (s, t, m) = setup();
        let fs = FilterSet::new().with_link(LinkFilter::BestPerElement);
        let links = fs.visible(&m, &s, &t, &HashSet::new());
        let site = t.find_by_name("site").unwrap();
        let fac = s.find_by_name("facility").unwrap();
        let wx = s.find_by_name("weather").unwrap();
        // site's best is facility (0.8); weather→site (0.2) survives
        // only because it is weather's own best.
        assert!(links.iter().any(|l| l.src == fac && l.tgt == site));
        assert!(links.iter().any(|l| l.src == wx)); // best for wx row
    }

    #[test]
    fn depth_filter_enables_upper_levels_only() {
        let (s, t, m) = setup();
        let fs = FilterSet::new().with_node(NodeFilter::MaxDepth(Side::Source, 1));
        let links = fs.visible(&m, &s, &t, &HashSet::new());
        // Source attributes (depth 2) are disabled → their links gone.
        assert!(links.iter().all(|l| s.depth(l.src) <= 1));
        // Element-level link still present.
        assert!(links
            .iter()
            .any(|l| l.src == s.find_by_name("facility").unwrap()));
    }

    #[test]
    fn subtree_filter_scopes_attention() {
        let (s, t, m) = setup();
        let fac = s.find_by_name("facility").unwrap();
        let fs = FilterSet::new().with_node(NodeFilter::Subtree(Side::Source, fac));
        let links = fs.visible(&m, &s, &t, &HashSet::new());
        assert!(links.iter().all(|l| s.is_in_subtree(fac, l.src)));
        assert!(!links
            .iter()
            .any(|l| l.src == s.find_by_name("weather").unwrap()));
    }

    #[test]
    fn combined_filters_compose_conjunctively() {
        let (s, t, m) = setup();
        let fac = s.find_by_name("facility").unwrap();
        // §4.2: "By combining these filters, the engineer can restrict
        // her attention to the entities in a given sub-schema."
        let fs = FilterSet::new()
            .with_node(NodeFilter::Subtree(Side::Source, fac))
            .with_node(NodeFilter::MaxDepth(Side::Source, 1))
            .with_link(LinkFilter::ConfidenceAtLeast(0.5));
        let links = fs.visible(&m, &s, &t, &HashSet::new());
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].src, fac);
    }
}
