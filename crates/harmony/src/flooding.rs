//! Similarity flooding over the containment trees.
//!
//! §4: "A version of similarity flooding [Melnik et al.] adjusts the
//! confidence scores based on structural information. Positive
//! confidence scores propagate up the schema graph (e.g., from
//! attributes to entities), and negative confidence scores trickle down
//! the schema graph. Intuitively, two attributes are unlikely to match
//! if their parent entities do not match."
//!
//! Each iteration computes, for every pair (a, b):
//!
//! * an **up** contribution: for each child of `a`, the best positive
//!   score against any child of `b`, averaged — children that match
//!   lift their parents;
//! * a **down** contribution: the parents' score when negative — a
//!   mismatched parent drags its children down.
//!
//! Both directions are independently switchable for the ablation
//! experiment (E2 in DESIGN.md). User-locked cells (±1) are never
//! modified (§4.3: "Once a link has been accepted or rejected, the
//! engine will not try to modify that link").

use crate::confidence::Confidence;
use crate::matrix::ScoreMatrix;
use iwb_model::{ElementId, SchemaGraph};
use iwb_pool::{Budget, Interrupt};
use std::collections::HashSet;

/// Flooding parameters.
#[derive(Debug, Clone, Copy)]
pub struct FloodingConfig {
    /// Fraction of the children's best-match average added to parents.
    pub up_coefficient: f64,
    /// Fraction of a negative parent score subtracted from children.
    pub down_coefficient: f64,
    /// Maximum fixpoint iterations.
    pub max_iterations: usize,
    /// Stop when mean absolute change drops below this.
    pub epsilon: f64,
    /// Enable upward propagation of positives.
    pub enable_up: bool,
    /// Enable downward propagation of negatives.
    pub enable_down: bool,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            up_coefficient: 0.3,
            down_coefficient: 0.3,
            max_iterations: 8,
            epsilon: 1e-3,
            enable_up: true,
            enable_down: true,
        }
    }
}

impl FloodingConfig {
    /// A configuration with flooding fully disabled (ablation).
    pub fn disabled() -> Self {
        FloodingConfig {
            enable_up: false,
            enable_down: false,
            ..Default::default()
        }
    }
}

/// Compute one flooding iteration for source rows `lo..hi` against the
/// pre-iteration snapshot, returning the new row-major values. Locked
/// cells keep their snapshot value. This per-row kernel is the single
/// code path behind both the sequential [`flood`] loop and the engine's
/// sharded parallel loop, so the two are bit-identical by construction.
pub(crate) fn flood_rows(
    before: &ScoreMatrix,
    source: &SchemaGraph,
    target: &SchemaGraph,
    locked: &HashSet<(ElementId, ElementId)>,
    config: &FloodingConfig,
    lo: usize,
    hi: usize,
) -> Vec<f64> {
    let src_ids = before.src_ids();
    let tgt_ids = before.tgt_ids();
    let mut out = Vec::with_capacity((hi - lo) * tgt_ids.len());
    // Children lists are per-row (source) and per-column (target), not
    // per-cell: hoist the column lists once per kernel call.
    let t_children: Vec<Vec<ElementId>> = if config.enable_up {
        tgt_ids
            .iter()
            .map(|&t| target.children(t).iter().map(|&(_, c)| c).collect())
            .collect()
    } else {
        Vec::new()
    };
    for &s in &src_ids[lo..hi] {
        let s_children: Vec<ElementId> = if config.enable_up {
            source.children(s).iter().map(|&(_, c)| c).collect()
        } else {
            Vec::new()
        };
        for (col, &t) in tgt_ids.iter().enumerate() {
            let current = before.get(s, t).value();
            if locked.contains(&(s, t)) {
                out.push(current);
                continue;
            }
            let mut adjusted = current;

            if config.enable_up {
                let t_children = &t_children[col];
                if !s_children.is_empty() && !t_children.is_empty() {
                    let mut total = 0.0;
                    let mut counted = 0usize;
                    for &cs in &s_children {
                        let best = t_children
                            .iter()
                            .map(|&ct| before.get(cs, ct).value())
                            .fold(f64::NEG_INFINITY, f64::max);
                        if best.is_finite() && best > 0.0 {
                            total += best;
                        }
                        counted += 1;
                    }
                    if counted > 0 {
                        adjusted += config.up_coefficient * (total / counted as f64);
                    }
                }
            }

            if config.enable_down {
                if let (Some((_, ps)), Some((_, pt))) = (source.parent(s), target.parent(t)) {
                    let parent_score = before.get(ps, pt).value();
                    if parent_score < 0.0 {
                        adjusted += config.down_coefficient * parent_score;
                    }
                }
            }

            out.push(Confidence::engine(adjusted).value());
        }
    }
    out
}

/// Run flooding in place. `locked` cells keep their value. Returns the
/// number of iterations executed.
pub fn flood(
    matrix: &mut ScoreMatrix,
    source: &SchemaGraph,
    target: &SchemaGraph,
    locked: &HashSet<(ElementId, ElementId)>,
    config: &FloodingConfig,
) -> usize {
    flood_budgeted(matrix, source, target, locked, config, &Budget::unlimited())
        .expect("unlimited budget never interrupts")
}

/// [`flood`] under a cooperative [`Budget`], checked before every
/// iteration. The fixpoint loop is already bounded by the explicit,
/// deterministic [`FloodingConfig::max_iterations`] budget; the
/// interruption budget only aborts it earlier, and an abort leaves the
/// matrix mid-fixpoint only in the caller's local copy — the engine
/// discards it, so no partial result is ever observed.
pub fn flood_budgeted(
    matrix: &mut ScoreMatrix,
    source: &SchemaGraph,
    target: &SchemaGraph,
    locked: &HashSet<(ElementId, ElementId)>,
    config: &FloodingConfig,
    budget: &Budget,
) -> Result<usize, Interrupt> {
    if !config.enable_up && !config.enable_down {
        return Ok(0);
    }
    let rows = matrix.src_ids().len();
    for iteration in 0..config.max_iterations {
        budget.check()?;
        let before = matrix.clone();
        let values = flood_rows(&before, source, target, locked, config, 0, rows);
        matrix.splice_rows(0, &values);
        if matrix.mean_abs_diff(&before) < config.epsilon {
            return Ok(iteration + 1);
        }
    }
    Ok(config.max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Xml)
            .open("person")
            .attr("firstName", DataType::Text)
            .attr("lastName", DataType::Text)
            .close()
            .open("widget")
            .attr("sku", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("individual")
            .attr("givenName", DataType::Text)
            .attr("familyName", DataType::Text)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn positive_children_lift_parents() {
        let (s, t) = schemas();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        let person = s.find_by_name("person").unwrap();
        let individual = t.find_by_name("individual").unwrap();
        m.set(
            s.find_by_name("firstName").unwrap(),
            t.find_by_name("givenName").unwrap(),
            Confidence::engine(0.8),
        );
        m.set(
            s.find_by_name("lastName").unwrap(),
            t.find_by_name("familyName").unwrap(),
            Confidence::engine(0.8),
        );
        let before = m.get(person, individual).value();
        flood(&mut m, &s, &t, &HashSet::new(), &FloodingConfig::default());
        assert!(m.get(person, individual).value() > before + 0.1);
    }

    #[test]
    fn negative_parents_drag_children_down() {
        let (s, t) = schemas();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        let widget = s.find_by_name("widget").unwrap();
        let individual = t.find_by_name("individual").unwrap();
        let sku = s.find_by_name("sku").unwrap();
        let given = t.find_by_name("givenName").unwrap();
        m.set(widget, individual, Confidence::engine(-0.8));
        m.set(sku, given, Confidence::engine(0.3));
        let cfg = FloodingConfig {
            enable_up: false,
            ..Default::default()
        };
        flood(&mut m, &s, &t, &HashSet::new(), &cfg);
        assert!(
            m.get(sku, given).value() < 0.3,
            "mismatched parent lowers child"
        );
    }

    #[test]
    fn locked_cells_never_move() {
        let (s, t) = schemas();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        let first = s.find_by_name("firstName").unwrap();
        let given = t.find_by_name("givenName").unwrap();
        m.set(first, given, Confidence::ACCEPT);
        let mut locked = HashSet::new();
        locked.insert((first, given));
        // Surround with negativity that would otherwise drag it down.
        let person = s.find_by_name("person").unwrap();
        let individual = t.find_by_name("individual").unwrap();
        m.set(person, individual, Confidence::engine(-0.9));
        flood(&mut m, &s, &t, &locked, &FloodingConfig::default());
        assert_eq!(m.get(first, given), Confidence::ACCEPT);
    }

    #[test]
    fn disabled_config_is_a_noop() {
        let (s, t) = schemas();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        m.set(
            s.find_by_name("firstName").unwrap(),
            t.find_by_name("givenName").unwrap(),
            Confidence::engine(0.8),
        );
        let snapshot = m.clone();
        let iters = flood(&mut m, &s, &t, &HashSet::new(), &FloodingConfig::disabled());
        assert_eq!(iters, 0);
        assert_eq!(m.mean_abs_diff(&snapshot), 0.0);
    }

    #[test]
    fn converges_within_iteration_budget() {
        let (s, t) = schemas();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        for (sid, tid, _) in m.clone().iter() {
            m.set(sid, tid, Confidence::engine(0.2));
        }
        let cfg = FloodingConfig {
            max_iterations: 50,
            ..Default::default()
        };
        let iters = flood(&mut m, &s, &t, &HashSet::new(), &cfg);
        assert!(iters <= 50);
    }
}
