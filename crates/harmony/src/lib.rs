//! # iwb-harmony — the Harmony schema match engine
//!
//! Harmony (paper §4) "combines multiple match algorithms with a
//! graphical user interface". This crate implements the whole engine
//! behind that GUI, following the architecture of Figure 1:
//!
//! 1. **Linguistic preprocessing** of element names and documentation
//!    (delegated to `iwb-ling`), cached per element in a
//!    [`context::MatchContext`];
//! 2. **Match voters** ([`voter::MatchVoter`]) — each "identifies
//!    correspondences using a different strategy" and emits a confidence
//!    score in (-1, +1) per element pair: name, documentation
//!    bag-of-words, thesaurus expansion, structure, domain values, data
//!    types, acronyms;
//! 3. a **vote merger** ([`merger::VoteMerger`]) that "weights each
//!    matcher's confidence based on its magnitude" and "weights each
//!    matcher *in toto* based on past performance";
//! 4. **similarity flooding** ([`flooding`]) where "positive confidence
//!    scores propagate up the schema graph … and negative confidence
//!    scores trickle down";
//! 5. **filters** ([`filters`]) — the link and node filters of §4.2 that
//!    let the engineer focus at different granularities;
//! 6. **iterative sessions** ([`session`]) with accept/reject feedback,
//!    mark-complete semantics, a progress bar, and learning (§4.3).
//!
//! [`eval`] provides gold-standard precision/recall/F1 scoring used by
//! the experiment harness.
//!
//! Long runs are cooperatively interruptible: [`HarmonyEngine::run_budgeted`]
//! threads an [`iwb_pool::Budget`] (cancel token + deadline, re-exported
//! here) through every stage and aborts with a structured [`Interrupt`]
//! without producing partial results.
//!
//! [`HarmonyEngine::run_budgeted`]: engine::HarmonyEngine::run_budgeted

pub mod baselines;
pub mod cache;
pub mod confidence;
pub mod context;
pub mod engine;
pub mod eval;
pub mod feedback;
pub mod filters;
pub mod flooding;
pub mod matrix;
pub mod merger;
pub mod session;
pub mod voter;
pub mod voters;

pub use baselines::{coma_like_engine, cupid_like_engine, name_equivalence_engine};
pub use cache::{fingerprint, CacheStats, FeatureCache};
pub use confidence::Confidence;
pub use context::{MatchContext, TextFeatures};
pub use engine::{HarmonyEngine, MatchConfig, MatchResult, RunReport};
pub use eval::{GoldStandard, PrMetrics};
pub use feedback::Feedback;
pub use filters::{FilterSet, Link, LinkFilter, NodeFilter, Side};
pub use flooding::FloodingConfig;
pub use iwb_pool::{Budget, CancelToken, Deadline, Interrupt};
pub use matrix::ScoreMatrix;
pub use merger::{MergeStrategy, VoteMerger};
pub use session::MatchSession;
pub use voter::MatchVoter;
