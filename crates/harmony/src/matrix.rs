//! Dense score matrices over the matchable elements of two schemata.

use crate::confidence::Confidence;
use iwb_model::{ElementId, ElementKind, SchemaGraph};
use std::collections::HashMap;

/// The element kinds that participate in matching. Keys and domain
/// values are excluded: keys are structural artifacts, and domain values
/// are compared wholesale by the domain voter through their parent.
pub fn is_matchable(kind: ElementKind) -> bool {
    matches!(
        kind,
        ElementKind::Table
            | ElementKind::Entity
            | ElementKind::Relationship
            | ElementKind::XmlElement
            | ElementKind::Attribute
            | ElementKind::Domain
    )
}

/// The matchable element ids of a graph, in creation order.
pub fn matchable_ids(graph: &SchemaGraph) -> Vec<ElementId> {
    graph
        .iter()
        .filter(|(_, e)| is_matchable(e.kind))
        .map(|(id, _)| id)
        .collect()
}

/// A dense source × target matrix of confidence scores.
#[derive(Debug, Clone)]
pub struct ScoreMatrix {
    src_ids: Vec<ElementId>,
    tgt_ids: Vec<ElementId>,
    src_index: HashMap<ElementId, usize>,
    tgt_index: HashMap<ElementId, usize>,
    scores: Vec<f64>,
}

impl ScoreMatrix {
    /// A zero matrix over the matchable elements of two schemata.
    pub fn for_schemas(source: &SchemaGraph, target: &SchemaGraph) -> Self {
        Self::new(matchable_ids(source), matchable_ids(target))
    }

    /// A zero matrix over explicit row/column element id sets.
    pub fn new(src_ids: Vec<ElementId>, tgt_ids: Vec<ElementId>) -> Self {
        let src_index = src_ids.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let tgt_index = tgt_ids.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let scores = vec![0.0; src_ids.len() * tgt_ids.len()];
        ScoreMatrix {
            src_ids,
            tgt_ids,
            src_index,
            tgt_index,
            scores,
        }
    }

    /// Rebuild a matrix from its id sets and a row-major score slab
    /// (the inverse of [`Self::src_ids`]/[`Self::tgt_ids`]/
    /// [`Self::scores`], used by the snapshot codec). `None` if the
    /// slab length does not match the dimensions.
    pub fn from_raw(
        src_ids: Vec<ElementId>,
        tgt_ids: Vec<ElementId>,
        scores: Vec<f64>,
    ) -> Option<Self> {
        if scores.len() != src_ids.len() * tgt_ids.len() {
            return None;
        }
        let src_index = src_ids.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let tgt_index = tgt_ids.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        Some(ScoreMatrix {
            src_ids,
            tgt_ids,
            src_index,
            tgt_index,
            scores,
        })
    }

    /// Row (source) element ids.
    pub fn src_ids(&self) -> &[ElementId] {
        &self.src_ids
    }

    /// Column (target) element ids.
    pub fn tgt_ids(&self) -> &[ElementId] {
        &self.tgt_ids
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True if either dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    fn offset(&self, src: ElementId, tgt: ElementId) -> Option<usize> {
        let r = *self.src_index.get(&src)?;
        let c = *self.tgt_index.get(&tgt)?;
        Some(r * self.tgt_ids.len() + c)
    }

    /// The score of a cell; `UNKNOWN` for ids outside the matrix.
    pub fn get(&self, src: ElementId, tgt: ElementId) -> Confidence {
        match self.offset(src, tgt) {
            Some(i) => Confidence::raw(self.scores[i]),
            None => Confidence::UNKNOWN,
        }
    }

    /// Set a cell's score. Ignored for ids outside the matrix.
    pub fn set(&mut self, src: ElementId, tgt: ElementId, score: Confidence) {
        if let Some(i) = self.offset(src, tgt) {
            self.scores[i] = score.value();
        }
    }

    /// True if the pair is inside the matrix.
    pub fn contains(&self, src: ElementId, tgt: ElementId) -> bool {
        self.offset(src, tgt).is_some()
    }

    /// Iterate `(src, tgt, score)` over every cell, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, ElementId, Confidence)> + '_ {
        self.src_ids
            .iter()
            .flat_map(move |&s| self.tgt_ids.iter().map(move |&t| (s, t, self.get(s, t))))
    }

    /// The column with the maximal score in a row, with the score
    /// (`None` for an unknown row or empty target side).
    pub fn best_for_src(&self, src: ElementId) -> Option<(ElementId, Confidence)> {
        let r = *self.src_index.get(&src)?;
        let base = r * self.tgt_ids.len();
        self.tgt_ids
            .iter()
            .enumerate()
            .map(|(c, &t)| (t, self.scores[base + c]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(t, v)| (t, Confidence::raw(v)))
    }

    /// The row with the maximal score in a column, with the score.
    pub fn best_for_tgt(&self, tgt: ElementId) -> Option<(ElementId, Confidence)> {
        let c = *self.tgt_index.get(&tgt)?;
        self.src_ids
            .iter()
            .enumerate()
            .map(|(r, &s)| (s, self.scores[r * self.tgt_ids.len() + c]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(s, v)| (s, Confidence::raw(v)))
    }

    /// The raw row-major score slab (row = source index, column =
    /// target index). Exact bit equality of two slabs is the
    /// determinism contract of the parallel engine.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Overwrite whole rows starting at `start_row` with `values`
    /// (row-major, a multiple of the column count long). This is how
    /// the engine merges per-shard score slabs back deterministically:
    /// each shard owns a disjoint row range, so splice order cannot
    /// change the result.
    ///
    /// # Panics
    /// If `values` is not a whole number of rows or overruns the matrix.
    pub fn splice_rows(&mut self, start_row: usize, values: &[f64]) {
        let cols = self.tgt_ids.len();
        if values.is_empty() {
            return;
        }
        assert!(cols > 0, "splice into a zero-column matrix");
        assert_eq!(values.len() % cols, 0, "partial row in splice");
        let start = start_row * cols;
        let end = start + values.len();
        assert!(end <= self.scores.len(), "splice overruns the matrix");
        self.scores[start..end].copy_from_slice(values);
    }

    /// Mean absolute difference to another matrix of identical shape
    /// (used as the flooding fixpoint test).
    ///
    /// # Panics
    /// If shapes differ.
    pub fn mean_abs_diff(&self, other: &ScoreMatrix) -> f64 {
        assert_eq!(self.scores.len(), other.scores.len(), "shape mismatch");
        if self.scores.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .scores
            .iter()
            .zip(other.scores.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        total / self.scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn graphs() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Xml)
            .open("a")
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("b")
            .attr("u", DataType::Text)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn matchable_excludes_root_keys_and_values() {
        let g = SchemaBuilder::new("db", Metamodel::Relational)
            .open("T")
            .attr("a", DataType::Integer)
            .key("pk", &["a"])
            .close()
            .build();
        let ids = matchable_ids(&g);
        assert_eq!(ids.len(), 2); // T and a, not root, not pk
    }

    #[test]
    fn get_set_round_trip() {
        let (s, t) = graphs();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        assert_eq!(m.src_ids().len(), 3);
        assert_eq!(m.tgt_ids().len(), 2);
        assert_eq!(m.len(), 6);
        let a = s.find_by_name("x").unwrap();
        let b = t.find_by_name("u").unwrap();
        m.set(a, b, Confidence::engine(0.7));
        assert!((m.get(a, b).value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn out_of_matrix_ids_are_inert() {
        let (s, t) = graphs();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        let root = s.root();
        assert!(!m.contains(root, t.root()));
        m.set(root, t.root(), Confidence::ACCEPT); // no-op
        assert_eq!(m.get(root, t.root()), Confidence::UNKNOWN);
    }

    #[test]
    fn best_per_row_and_column() {
        let (s, t) = graphs();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        let x = s.find_by_name("x").unwrap();
        let y = s.find_by_name("y").unwrap();
        let u = t.find_by_name("u").unwrap();
        m.set(x, u, Confidence::engine(0.3));
        m.set(y, u, Confidence::engine(0.9));
        assert_eq!(m.best_for_src(x).unwrap().0, u);
        let (best_src, score) = m.best_for_tgt(u).unwrap();
        assert_eq!(best_src, y);
        assert!((score.value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn iter_covers_all_cells() {
        let (s, t) = graphs();
        let m = ScoreMatrix::for_schemas(&s, &t);
        assert_eq!(m.iter().count(), 6);
    }

    #[test]
    fn splice_rows_overwrites_disjoint_ranges() {
        let (s, t) = graphs();
        let mut direct = ScoreMatrix::for_schemas(&s, &t);
        let mut spliced = direct.clone();
        let values: Vec<f64> = (0..direct.len()).map(|i| i as f64 / 10.0).collect();
        for (i, (sid, tid, _)) in direct.clone().iter().enumerate() {
            direct.set(sid, tid, Confidence::engine(values[i]));
        }
        // Two shards: row 0, then rows 1-2.
        spliced.splice_rows(0, &values[0..2]);
        spliced.splice_rows(1, &values[2..6]);
        assert_eq!(direct.scores(), spliced.scores());
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn splice_rows_checks_bounds() {
        let (s, t) = graphs();
        let mut m = ScoreMatrix::for_schemas(&s, &t);
        m.splice_rows(3, &[0.0, 0.0]);
    }

    #[test]
    fn mean_abs_diff_measures_change() {
        let (s, t) = graphs();
        let m1 = ScoreMatrix::for_schemas(&s, &t);
        let mut m2 = m1.clone();
        assert_eq!(m1.mean_abs_diff(&m2), 0.0);
        let x = s.find_by_name("x").unwrap();
        let u = t.find_by_name("u").unwrap();
        m2.set(x, u, Confidence::engine(0.6));
        assert!((m1.mean_abs_diff(&m2) - 0.1).abs() < 1e-9);
    }
}
