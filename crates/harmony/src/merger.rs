//! The vote merger.
//!
//! §4: "Given k match voters, the vote merger combines the k values for
//! each pair into a single confidence score. The vote merger weights
//! each matcher's confidence based on its magnitude — a score close to 0
//! indicates that the match voter did not see enough evidence to make a
//! strong prediction. The vote merger also weights each matcher *in
//! toto* based on past performance."
//!
//! §4.3 adds the caution implemented in [`VoteMerger::learn`]: "Learning
//! new weights must be done carefully … If the engineer based her first
//! pass on exactly that form of evidence, the corresponding candidate
//! matcher will appear overly successful" — so per-round weight growth
//! is capped, and the cap tightens for voters whose votes on the judged
//! pairs were near-saturated (the evidence the user most likely looked
//! at).

use crate::confidence::Confidence;
use crate::feedback::Feedback;
use std::collections::BTreeMap;

/// How votes are combined (ablation of a DESIGN.md design choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Magnitude- and performance-weighted (the paper's scheme).
    #[default]
    MagnitudeWeighted,
    /// Plain mean of all votes (ablation baseline).
    UniformAverage,
}

/// Combines per-voter confidences into one score, with learned per-voter
/// weights.
#[derive(Debug, Clone)]
pub struct VoteMerger {
    strategy: MergeStrategy,
    weights: BTreeMap<String, f64>,
    /// Hard bounds on a voter's weight.
    min_weight: f64,
    max_weight: f64,
    /// Per-round growth cap (see module docs).
    growth_cap: f64,
}

impl Default for VoteMerger {
    fn default() -> Self {
        VoteMerger {
            strategy: MergeStrategy::MagnitudeWeighted,
            weights: BTreeMap::new(),
            min_weight: 0.2,
            max_weight: 4.0,
            growth_cap: 1.5,
        }
    }
}

impl VoteMerger {
    /// A merger with an explicit strategy.
    pub fn with_strategy(strategy: MergeStrategy) -> Self {
        VoteMerger {
            strategy,
            ..Default::default()
        }
    }

    /// The current weight of a voter (default 1).
    pub fn weight(&self, voter: &str) -> f64 {
        self.weights.get(voter).copied().unwrap_or(1.0)
    }

    /// Set a voter's weight explicitly (clamped to the legal range).
    pub fn set_weight(&mut self, voter: &str, weight: f64) {
        self.weights.insert(
            voter.to_owned(),
            weight.clamp(self.min_weight, self.max_weight),
        );
    }

    /// All learned weights, by voter name.
    pub fn weights(&self) -> &BTreeMap<String, f64> {
        &self.weights
    }

    /// Merge one cell's votes. `votes` pairs each voter name with its
    /// confidence.
    pub fn merge(&self, votes: &[(&str, Confidence)]) -> Confidence {
        if votes.is_empty() {
            return Confidence::UNKNOWN;
        }
        match self.strategy {
            MergeStrategy::UniformAverage => {
                let sum: f64 = votes.iter().map(|(_, c)| c.value()).sum();
                Confidence::engine(sum / votes.len() as f64)
            }
            MergeStrategy::MagnitudeWeighted => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (voter, c) in votes {
                    let w = self.weight(voter) * c.magnitude();
                    num += w * c.value();
                    den += w;
                }
                if den == 0.0 {
                    Confidence::UNKNOWN
                } else {
                    Confidence::engine(num / den)
                }
            }
        }
    }

    /// Re-weight voters from explicit user decisions. For each voter we
    /// compute an agreement score over the judged pairs — +1 when the
    /// voter's sign matches the decision, scaled by the voter's own
    /// magnitude (an abstaining voter is neither rewarded nor punished) —
    /// and nudge its weight multiplicatively.
    ///
    /// `votes_of` supplies the voter's confidence for a judged pair.
    pub fn learn(
        &mut self,
        feedback: &[Feedback],
        voter_names: &[&str],
        votes_of: impl Fn(&str, &Feedback) -> Confidence,
    ) {
        if feedback.is_empty() {
            return;
        }
        for &voter in voter_names {
            let mut agreement = 0.0;
            let mut evidence = 0.0;
            let mut saturation = 0.0;
            for fb in feedback {
                let c = votes_of(voter, fb);
                agreement += c.value() * fb.sign();
                evidence += c.magnitude();
                saturation += if c.magnitude() > 0.8 { 1.0 } else { 0.0 };
            }
            if evidence == 0.0 {
                continue; // voter abstained throughout; leave its weight
            }
            let accuracy = agreement / evidence; // in [-1, 1]
                                                 // §4.3 guard: if the voter was saturated on most judged pairs
                                                 // the user probably drew on the same evidence — damp growth.
            let saturated_frac = saturation / feedback.len() as f64;
            let cap = if saturated_frac > 0.5 {
                1.0 + (self.growth_cap - 1.0) * 0.4
            } else {
                self.growth_cap
            };
            let factor = (1.0 + 0.5 * accuracy).clamp(1.0 / self.growth_cap, cap);
            let w = self.weight(voter) * factor;
            self.set_weight(voter, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::ElementId;

    fn c(v: f64) -> Confidence {
        Confidence::engine(v)
    }

    #[test]
    fn magnitude_weighting_ignores_abstainers() {
        let m = VoteMerger::default();
        // A confident positive and a shrug: result stays near the
        // confident vote rather than averaging toward zero.
        let merged = m.merge(&[("a", c(0.8)), ("b", c(0.0))]);
        assert!((merged.value() - 0.8).abs() < 1e-9);
        // Uniform average is dragged down.
        let u = VoteMerger::with_strategy(MergeStrategy::UniformAverage);
        assert!((u.merge(&[("a", c(0.8)), ("b", c(0.0))]).value() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn conflicting_confident_votes_cancel() {
        let m = VoteMerger::default();
        let merged = m.merge(&[("a", c(0.6)), ("b", c(-0.6))]);
        assert!(merged.value().abs() < 1e-9);
    }

    #[test]
    fn voter_weights_tip_the_balance() {
        let mut m = VoteMerger::default();
        m.set_weight("trusted", 3.0);
        let merged = m.merge(&[("trusted", c(0.5)), ("other", c(-0.5))]);
        assert!(merged.value() > 0.2);
    }

    #[test]
    fn empty_and_all_abstain_merge_to_unknown() {
        let m = VoteMerger::default();
        assert_eq!(m.merge(&[]), Confidence::UNKNOWN);
        assert_eq!(
            m.merge(&[("a", c(0.0)), ("b", c(0.0))]),
            Confidence::UNKNOWN
        );
    }

    #[test]
    fn learning_rewards_agreement_and_punishes_error() {
        let mut m = VoteMerger::default();
        let fb = vec![
            Feedback::accept(ElementId::from_index(0), ElementId::from_index(0)),
            Feedback::reject(ElementId::from_index(1), ElementId::from_index(1)),
        ];
        m.learn(&fb, &["good", "bad", "silent"], |voter, fb| match voter {
            "good" => c(0.6 * fb.sign()),
            "bad" => c(-0.6 * fb.sign()),
            _ => c(0.0),
        });
        assert!(m.weight("good") > 1.0);
        assert!(m.weight("bad") < 1.0);
        assert_eq!(m.weight("silent"), 1.0);
    }

    #[test]
    fn saturated_voters_grow_slower() {
        let mut fast = VoteMerger::default();
        let mut slow = VoteMerger::default();
        let fb = vec![Feedback::accept(
            ElementId::from_index(0),
            ElementId::from_index(0),
        )];
        fast.learn(&fb, &["v"], |_, fb| c(0.6 * fb.sign()));
        slow.learn(&fb, &["v"], |_, fb| c(0.95 * fb.sign()));
        assert!(
            slow.weight("v") < fast.weight("v"),
            "§4.3 evidence-overlap guard"
        );
        assert!(slow.weight("v") > 1.0);
    }

    #[test]
    fn weights_stay_bounded() {
        let mut m = VoteMerger::default();
        let fb = vec![Feedback::accept(
            ElementId::from_index(0),
            ElementId::from_index(0),
        )];
        for _ in 0..100 {
            m.learn(&fb, &["v"], |_, fb| c(0.6 * fb.sign()));
        }
        assert!(m.weight("v") <= 4.0);
        for _ in 0..100 {
            m.learn(&fb, &["v"], |_, fb| c(-0.6 * fb.sign()));
        }
        assert!(m.weight("v") >= 0.2);
    }
}
