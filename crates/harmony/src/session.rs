//! Iterative match sessions (paper §4.3).
//!
//! A session wraps the engine with the user-facing iterative workflow:
//! accept/reject decisions, drawing links by hand, re-running the engine
//! with learning, marking sub-trees complete (which freezes their links
//! and advances the progress bar), and querying visible links through
//! filters.

use crate::confidence::Confidence;
use crate::engine::{HarmonyEngine, MatchResult};
use crate::feedback::Feedback;
use crate::filters::{FilterSet, Link};
use crate::matrix::matchable_ids;
use iwb_model::{ElementId, SchemaGraph};
use std::collections::{HashMap, HashSet};

/// An interactive matching session over one schema pair.
///
/// # Examples
///
/// ```
/// use iwb_harmony::MatchSession;
/// use iwb_model::{DataType, Metamodel, SchemaBuilder};
///
/// let source = SchemaBuilder::new("s", Metamodel::Xml)
///     .open("shipTo").attr("subtotal", DataType::Decimal).close()
///     .build();
/// let target = SchemaBuilder::new("t", Metamodel::Xml)
///     .open("shippingInfo").attr("total", DataType::Decimal).close()
///     .build();
///
/// let mut session = MatchSession::new(&source, &target);
/// session.run();
/// let sub = source.find_by_name("subtotal").unwrap();
/// let total = target.find_by_name("total").unwrap();
/// session.accept(sub, total);                 // the engineer decides
/// session.run();                              // re-run: decision is locked, engine learns
/// assert_eq!(session.accepted_pairs(), vec![(sub, total)]);
/// ```
pub struct MatchSession<'a> {
    engine: HarmonyEngine,
    source: &'a SchemaGraph,
    target: &'a SchemaGraph,
    /// User decisions: pair → ±1.
    decisions: HashMap<(ElementId, ElementId), Confidence>,
    /// Decisions made since the last engine run (pending learning).
    fresh_feedback: Vec<Feedback>,
    /// Elements marked complete (per side).
    complete_src: HashSet<ElementId>,
    complete_tgt: HashSet<ElementId>,
    /// Last engine output.
    result: Option<MatchResult>,
    /// How many times the engine has run.
    runs: usize,
}

impl<'a> MatchSession<'a> {
    /// Start a session with a default engine.
    pub fn new(source: &'a SchemaGraph, target: &'a SchemaGraph) -> Self {
        Self::with_engine(HarmonyEngine::default(), source, target)
    }

    /// Start a session with a custom engine.
    pub fn with_engine(
        engine: HarmonyEngine,
        source: &'a SchemaGraph,
        target: &'a SchemaGraph,
    ) -> Self {
        MatchSession {
            engine,
            source,
            target,
            decisions: HashMap::new(),
            fresh_feedback: Vec::new(),
            complete_src: HashSet::new(),
            complete_tgt: HashSet::new(),
            result: None,
            runs: 0,
        }
    }

    /// The engine (for weight inspection).
    pub fn engine(&self) -> &HarmonyEngine {
        &self.engine
    }

    /// Mutable engine access (to reconfigure threads/cache mid-session).
    pub fn engine_mut(&mut self) -> &mut HarmonyEngine {
        &mut self.engine
    }

    /// Run (or re-run) the engine. On re-runs, fresh user decisions are
    /// first fed to the learning path (§4.3: "the engineer can rerun the
    /// Harmony engine, which can learn from her feedback").
    pub fn run(&mut self) -> &MatchResult {
        if let (Some(prev), false) = (&self.result, self.fresh_feedback.is_empty()) {
            let fb = std::mem::take(&mut self.fresh_feedback);
            self.engine.learn(self.source, self.target, prev, &fb);
        }
        let result = self.engine.run(self.source, self.target, &self.decisions);
        self.runs += 1;
        self.result = Some(result);
        self.result.as_ref().expect("just set")
    }

    /// Number of engine runs so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The latest result, if the engine has run.
    pub fn result(&self) -> Option<&MatchResult> {
        self.result.as_ref()
    }

    /// Accept a pair (draw/confirm a link): confidence +1.
    pub fn accept(&mut self, src: ElementId, tgt: ElementId) {
        self.decide(src, tgt, true);
    }

    /// Reject a pair: confidence -1.
    pub fn reject(&mut self, src: ElementId, tgt: ElementId) {
        self.decide(src, tgt, false);
    }

    fn decide(&mut self, src: ElementId, tgt: ElementId, accepted: bool) {
        let c = if accepted {
            Confidence::ACCEPT
        } else {
            Confidence::REJECT
        };
        self.decisions.insert((src, tgt), c);
        self.fresh_feedback.push(Feedback { src, tgt, accepted });
        if let Some(result) = &mut self.result {
            result.matrix.set(src, tgt, c);
        }
    }

    /// The user decisions made so far.
    pub fn decisions(&self) -> &HashMap<(ElementId, ElementId), Confidence> {
        &self.decisions
    }

    /// The set of user-decided pairs (for the provenance filter).
    pub fn user_pairs(&self) -> HashSet<(ElementId, ElementId)> {
        self.decisions.keys().copied().collect()
    }

    /// Visible links under a filter set, against the latest result.
    /// Empty before the first run.
    pub fn visible(&self, filters: &FilterSet) -> Vec<Link> {
        match &self.result {
            Some(r) => filters.visible(&r.matrix, self.source, self.target, &self.user_pairs()),
            None => Vec::new(),
        }
    }

    /// Mark a source-side sub-tree complete (§4.3): every *currently
    /// visible* link touching the sub-tree is accepted; every other
    /// candidate link touching it is rejected. Freezes those cells and
    /// advances the progress bar.
    ///
    /// `display` defines visibility, exactly as the GUI would show it —
    /// the paper: "it accepts every link pertaining to that sub-tree (if
    /// currently visible), or rejected (otherwise)".
    pub fn mark_complete(&mut self, subtree_root: ElementId, display: &FilterSet) {
        let visible: HashSet<(ElementId, ElementId)> = self
            .visible(display)
            .into_iter()
            .map(|l| (l.src, l.tgt))
            .collect();
        let members: Vec<ElementId> = self
            .source
            .subtree(subtree_root)
            .into_iter()
            .filter(|&id| crate::matrix::is_matchable(self.source.element(id).kind))
            .collect();
        let tgt_ids: Vec<ElementId> = matchable_ids(self.target);
        for &s in &members {
            for &t in &tgt_ids {
                if self.decisions.contains_key(&(s, t)) {
                    continue; // already frozen
                }
                if visible.contains(&(s, t)) {
                    self.accept(s, t);
                } else {
                    self.reject(s, t);
                }
            }
            self.complete_src.insert(s);
        }
    }

    /// Mark a target-side element complete without deciding its links
    /// (used by progress tracking when the target column is saturated by
    /// accepted links).
    pub fn mark_target_complete(&mut self, id: ElementId) {
        self.complete_tgt.insert(id);
    }

    /// Progress toward "a complete set of correspondences" (§4.3's
    /// progress bar): the fraction of matchable source elements marked
    /// complete.
    pub fn progress(&self) -> f64 {
        let total = matchable_ids(self.source).len();
        if total == 0 {
            return 1.0;
        }
        self.complete_src.len() as f64 / total as f64
    }

    /// True when every matchable source element is complete.
    pub fn is_complete(&self) -> bool {
        self.progress() >= 1.0
    }

    /// The accepted correspondences (the session's final deliverable,
    /// handed to the mapping phase).
    pub fn accepted_pairs(&self) -> Vec<(ElementId, ElementId)> {
        let mut pairs: Vec<(ElementId, ElementId)> = self
            .decisions
            .iter()
            .filter(|(_, &c)| c == Confidence::ACCEPT)
            .map(|(&p, _)| p)
            .collect();
        pairs.sort();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::LinkFilter;
    use iwb_loaders::xsd::{FIG2_SOURCE_XSD, FIG2_TARGET_XSD};
    use iwb_loaders::{SchemaLoader, XsdLoader};

    fn fig2() -> (SchemaGraph, SchemaGraph) {
        (
            XsdLoader.load(FIG2_SOURCE_XSD, "purchaseOrder").unwrap(),
            XsdLoader.load(FIG2_TARGET_XSD, "invoice").unwrap(),
        )
    }

    #[test]
    fn decisions_pin_cells_across_reruns() {
        let (s, t) = fig2();
        let mut session = MatchSession::new(&s, &t);
        session.run();
        let first = s.find_by_name("firstName").unwrap();
        let total = t.find_by_name("total").unwrap();
        session.reject(first, total);
        assert_eq!(
            session.result().unwrap().matrix.get(first, total),
            Confidence::REJECT
        );
        session.run();
        assert_eq!(
            session.result().unwrap().matrix.get(first, total),
            Confidence::REJECT
        );
        assert_eq!(session.runs(), 2);
    }

    #[test]
    fn mark_complete_freezes_visible_as_accept_rest_as_reject() {
        let (s, t) = fig2();
        let mut session = MatchSession::new(&s, &t);
        session.run();
        let ship = s.find_by_name("shipTo").unwrap();
        let display = FilterSet::new().with_link(LinkFilter::BestPerElement);
        let visible_before = session.visible(&display);
        session.mark_complete(ship, &display);
        // Every visible link under shipTo is now accepted.
        for l in visible_before {
            if s.is_in_subtree(ship, l.src) {
                assert_eq!(
                    session.decisions()[&(l.src, l.tgt)],
                    Confidence::ACCEPT,
                    "visible link must be accepted"
                );
            }
        }
        // Progress advanced.
        assert!(session.progress() > 0.0);
        // And no cell under shipTo is undecided.
        let tgt_count = matchable_ids(&t).len();
        let members = s
            .subtree(ship)
            .into_iter()
            .filter(|&id| crate::matrix::is_matchable(s.element(id).kind))
            .count();
        let decided = session
            .decisions()
            .keys()
            .filter(|(src, _)| s.is_in_subtree(ship, *src))
            .count();
        assert_eq!(decided, members * tgt_count);
    }

    #[test]
    fn progress_reaches_one_when_all_subtrees_complete() {
        let (s, t) = fig2();
        let mut session = MatchSession::new(&s, &t);
        session.run();
        let display = FilterSet::new().with_link(LinkFilter::ConfidenceAtLeast(0.4));
        // Mark the entire schema complete ("including an entire schema",
        // §5.3).
        let top = s.find_by_name("purchaseOrder").unwrap();
        session.mark_complete(top, &display);
        assert!(session.is_complete());
        assert_eq!(session.progress(), 1.0);
    }

    #[test]
    fn accepted_pairs_feed_the_mapping_phase() {
        let (s, t) = fig2();
        let mut session = MatchSession::new(&s, &t);
        session.run();
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        session.accept(sub, total);
        assert_eq!(session.accepted_pairs(), vec![(sub, total)]);
    }

    #[test]
    fn rerun_after_feedback_learns() {
        let (s, t) = fig2();
        let mut session = MatchSession::new(&s, &t);
        session.run();
        let sub = s.find_by_name("subtotal").unwrap();
        let total = t.find_by_name("total").unwrap();
        session.accept(sub, total);
        session.run();
        let weights = session.engine().merger().weights();
        assert!(weights.values().any(|w| (w - 1.0).abs() > 1e-9));
    }

    #[test]
    fn visible_empty_before_first_run() {
        let (s, t) = fig2();
        let session = MatchSession::new(&s, &t);
        assert!(session.visible(&FilterSet::new()).is_empty());
    }
}
