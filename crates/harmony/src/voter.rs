//! The match-voter interface.
//!
//! §4: "several *match voters* are invoked, each of which identifies
//! correspondences using a different strategy." A voter sees the shared
//! [`MatchContext`] and scores one (source, target) element pair at a
//! time; the engine drives the full cross product — sharded by source
//! rows across worker threads when configured — and hands the per-voter
//! matrices to the merger.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::feedback::Feedback;
use iwb_model::ElementId;

/// One match strategy (Figure 1's "match voters" box).
///
/// `Send + Sync` because the engine scores disjoint row ranges on a
/// thread pool with the voter suite shared read-only; `vote` must not
/// mutate hidden state (learning happens through [`MatchVoter::learn`],
/// which takes `&mut self` between runs).
pub trait MatchVoter: Send + Sync {
    /// Stable, unique voter name (used for merger weights and reports).
    fn name(&self) -> &'static str;

    /// Confidence that `src` and `tgt` correspond. Must return
    /// [`Confidence::UNKNOWN`] (or near it) when this voter's kind of
    /// evidence is absent for the pair.
    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence;

    /// Learn from explicit user decisions (§4.3: "each candidate matcher
    /// can learn from the user's choices and refine any internal
    /// parameters"). Default: no-op.
    fn learn(&mut self, _ctx: &mut MatchContext, _feedback: &[Feedback]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{Metamodel, SchemaGraph};

    struct ConstVoter(f64);
    impl MatchVoter for ConstVoter {
        fn name(&self) -> &'static str {
            "const"
        }
        fn vote(&self, _: &MatchContext, _: ElementId, _: ElementId) -> Confidence {
            Confidence::engine(self.0)
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let s = SchemaGraph::new("s", Metamodel::Xml);
        let t = SchemaGraph::new("t", Metamodel::Xml);
        let th = Thesaurus::new();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v: Box<dyn MatchVoter> = Box::new(ConstVoter(0.5));
        assert_eq!(v.name(), "const");
        assert_eq!(v.vote(&ctx, s.root(), t.root()).value(), 0.5);
    }
}
