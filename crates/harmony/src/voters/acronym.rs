//! Acronym / initialism voter.
//!
//! Enterprise schemata abound with initialisms (`POC` for
//! `pointOfContact`, `ETA` for `estimatedTimeArrival`). When one name is
//! a single short token and the other is multi-token, this voter checks
//! whether the short name spells the initials of the long one. It only
//! ever votes positively — absence of an acronym relation is not
//! evidence against a match.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::ElementId;

/// Voter for initialisms.
#[derive(Debug, Clone)]
pub struct AcronymVoter {
    /// Confidence emitted on an acronym hit (default 0.75).
    pub hit: f64,
}

impl Default for AcronymVoter {
    fn default() -> Self {
        AcronymVoter { hit: 0.75 }
    }
}

/// True if `short` is the initialism of `long_tokens`.
fn is_acronym(short: &str, long_tokens: &[String]) -> bool {
    if long_tokens.len() < 2 || short.len() != long_tokens.len() {
        return false;
    }
    short
        .chars()
        .zip(long_tokens.iter())
        .all(|(c, tok)| tok.starts_with(c))
}

impl MatchVoter for AcronymVoter {
    fn name(&self) -> &'static str {
        "acronym"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        // Unfiltered tokens: stop words ("of" in pointOfContact) carry
        // letters of the initialism, so the preprocessed stream would
        // miss them.
        let a = iwb_ling::split_identifier(&ctx.source().element(src).name);
        let b = iwb_ling::split_identifier(&ctx.target().element(tgt).name);
        let (a, b) = (&a, &b);
        let hit = match (a.as_slice(), b.as_slice()) {
            ([single], many) if many.len() >= 2 => is_acronym(single, many),
            (many, [single]) if many.len() >= 2 => is_acronym(single, many),
            _ => false,
        };
        if hit {
            Confidence::engine(self.hit)
        } else {
            Confidence::UNKNOWN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    #[test]
    fn initialisms_hit_in_both_directions() {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("T")
            .attr("POC", DataType::Text)
            .attr("pointOfContact", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("u")
            .attr("pointOfContact", DataType::Text)
            .attr("POC", DataType::Text)
            .attr("unrelatedThing", DataType::Text)
            .close()
            .build();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = AcronymVoter::default();
        let poc = s.find_by_name("POC").unwrap();
        let long_t = t.find_by_name("pointOfContact").unwrap();
        assert_eq!(v.vote(&ctx, poc, long_t).value(), 0.75);
        let long_s = s.find_by_name("pointOfContact").unwrap();
        let poc_t = t.find_by_name("POC").unwrap();
        assert_eq!(v.vote(&ctx, long_s, poc_t).value(), 0.75);
        let other = t.find_by_name("unrelatedThing").unwrap();
        assert_eq!(v.vote(&ctx, poc, other), Confidence::UNKNOWN);
    }

    #[test]
    fn acronym_requires_full_cover() {
        assert!(is_acronym(
            "poc",
            &["point".into(), "of".into(), "contact".into()]
        ));
        assert!(!is_acronym(
            "pc",
            &["point".into(), "of".into(), "contact".into()]
        ));
        assert!(!is_acronym("poc", &["contact".into()]));
        assert!(!is_acronym(
            "xyz",
            &["point".into(), "of".into(), "contact".into()]
        ));
    }
}
