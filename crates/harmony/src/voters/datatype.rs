//! Data-type compatibility voter.
//!
//! Weak, deliberately low-magnitude evidence: compatible declared types
//! barely raise confidence, but *incompatible* types (a date vs. a
//! boolean) meaningfully lower it. The magnitudes stay small so the
//! merger's magnitude weighting keeps this voter from dominating.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::element::TypeFamily;
use iwb_model::ElementId;

/// Voter over declared data types.
#[derive(Debug, Clone)]
pub struct DataTypeVoter {
    /// Confidence for same-family types (default +0.15).
    pub compatible: f64,
    /// Confidence for clashing families (default -0.3).
    pub incompatible: f64,
}

impl Default for DataTypeVoter {
    fn default() -> Self {
        DataTypeVoter {
            compatible: 0.15,
            incompatible: -0.3,
        }
    }
}

/// Families that convert into each other without loss of meaning often
/// enough that a mismatch is weak counter-evidence only.
fn convertible(a: TypeFamily, b: TypeFamily) -> bool {
    use TypeFamily::*;
    matches!(
        (a, b),
        (Textual, Coded) | (Coded, Textual) | (Numeric, Textual) | (Textual, Numeric)
    )
}

impl MatchVoter for DataTypeVoter {
    fn name(&self) -> &'static str {
        "datatype"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a = ctx.source().element(src);
        let b = ctx.target().element(tgt);
        // Kind clash: a container never corresponds to a leaf attribute.
        if a.kind.is_container() != b.kind.is_container() {
            return Confidence::engine(self.incompatible);
        }
        let (Some(ta), Some(tb)) = (&a.data_type, &b.data_type) else {
            return Confidence::UNKNOWN;
        };
        let (fa, fb) = (ta.family(), tb.family());
        if fa == TypeFamily::Unknown || fb == TypeFamily::Unknown {
            return Confidence::UNKNOWN;
        }
        if fa == fb {
            Confidence::engine(self.compatible)
        } else if convertible(fa, fb) {
            Confidence::engine(self.compatible * 0.5)
        } else {
            Confidence::engine(self.incompatible)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("T")
            .attr("num", DataType::Integer)
            .attr("txt", DataType::VarChar(10))
            .attr("dt", DataType::Date)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("U")
            .attr("amount", DataType::Decimal)
            .attr("flag", DataType::Boolean)
            .attr("label", DataType::Text)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn same_family_positive_clash_negative() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DataTypeVoter::default();
        let num = s.find_by_name("num").unwrap();
        let amount = t.find_by_name("amount").unwrap();
        let flag = t.find_by_name("flag").unwrap();
        assert!(v.vote(&ctx, num, amount).value() > 0.0);
        assert!(v.vote(&ctx, num, flag).value() < 0.0);
    }

    #[test]
    fn convertible_families_mildly_positive() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DataTypeVoter::default();
        let num = s.find_by_name("num").unwrap();
        let label = t.find_by_name("label").unwrap();
        let score = v.vote(&ctx, num, label).value();
        assert!(score > 0.0 && score < v.compatible);
    }

    #[test]
    fn container_vs_leaf_is_negative() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DataTypeVoter::default();
        let table = s.find_by_name("T").unwrap();
        let leaf = t.find_by_name("amount").unwrap();
        assert!(v.vote(&ctx, table, leaf).value() < 0.0);
    }

    #[test]
    fn missing_types_abstain() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DataTypeVoter::default();
        let table = s.find_by_name("T").unwrap();
        let u = t.find_by_name("U").unwrap();
        assert_eq!(v.vote(&ctx, table, u), Confidence::UNKNOWN);
    }
}
