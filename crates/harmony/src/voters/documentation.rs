//! Documentation (bag-of-words) voter.
//!
//! §2 shows enterprise schemata are well documented (Table 1: ≥83% of
//! items carry a definition), so "linguistic processing of text
//! descriptions is important". This voter compares TF-IDF vectors over
//! the stemmed definitions — §4.3's "bag-of-words matcher that weights
//! each word based on inverted frequency". Its [`MatchVoter::learn`]
//! implementation adjusts per-term boosts based on which words were
//! most predictive, exactly as described there.
//!
//! Per §4.1, documentation matchers "have good recall, although their
//! precision is less impressive": the positive cap is high but the
//! baseline is low, so weak textual overlap already produces a positive
//! (if small) vote.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::feedback::Feedback;
use crate::voter::MatchVoter;
use iwb_ling::cosine;
use iwb_model::ElementId;
use std::collections::HashSet;

/// Voter over element definitions.
#[derive(Debug, Clone)]
pub struct DocumentationVoter {
    /// Cosine similarity treated as "no evidence" (default 0.12).
    pub baseline: f64,
    /// Maximum confidence magnitude (default 0.85).
    pub cap: f64,
    /// Multiplier applied to predictive words during learning.
    pub boost_factor: f64,
}

impl Default for DocumentationVoter {
    fn default() -> Self {
        DocumentationVoter {
            baseline: 0.12,
            cap: 0.85,
            boost_factor: 1.3,
        }
    }
}

impl MatchVoter for DocumentationVoter {
    fn name(&self) -> &'static str {
        "documentation"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a = ctx.src(src);
        let b = ctx.tgt(tgt);
        // No definitions on either side → no evidence, not a negative.
        if a.text.doc.is_empty() || b.text.doc.is_empty() {
            return Confidence::UNKNOWN;
        }
        let sim = cosine(&a.vector, &b.vector);
        Confidence::from_similarity(sim, self.baseline, self.cap)
    }

    /// §4.3: "a bag-of-words matcher that weights each word based on
    /// inverted frequency increases or decreases word weight based on
    /// which words were most predictive." Words shared by an *accepted*
    /// pair's definitions get boosted; words shared by a *rejected*
    /// pair's definitions get damped.
    fn learn(&mut self, ctx: &mut MatchContext, feedback: &[Feedback]) {
        let mut boosts: Vec<(String, f64)> = Vec::new();
        for fb in feedback {
            let a: HashSet<&String> = ctx.src(fb.src).text.doc.stems.iter().collect();
            let b: HashSet<&String> = ctx.tgt(fb.tgt).text.doc.stems.iter().collect();
            let factor = if fb.accepted {
                self.boost_factor
            } else {
                1.0 / self.boost_factor
            };
            for term in a.intersection(&b) {
                boosts.push(((*term).clone(), factor));
            }
        }
        for (term, factor) in boosts {
            ctx.corpus.adjust_boost(&term, factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("AIRPORT")
            .attr_doc(
                "IDENT",
                DataType::Text,
                "The unique ICAO identifier assigned to the airport.",
            )
            .attr_doc(
                "ELEV",
                DataType::Integer,
                "Field elevation above mean sea level in feet.",
            )
            .attr("NODOC", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("facility")
            .attr_doc(
                "identifier",
                DataType::Text,
                "Unique ICAO identifier of this airport facility.",
            )
            .attr_doc(
                "runwayCount",
                DataType::Integer,
                "Number of active runways at the facility.",
            )
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn shared_definitions_score_high() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DocumentationVoter::default();
        let a = s.find_by_name("IDENT").unwrap();
        let b = t.find_by_name("identifier").unwrap();
        let c = t.find_by_name("runwayCount").unwrap();
        assert!(v.vote(&ctx, a, b).value() > 0.3);
        assert!(v.vote(&ctx, a, b).value() > v.vote(&ctx, a, c).value());
    }

    #[test]
    fn missing_documentation_gives_no_evidence() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DocumentationVoter::default();
        let nodoc = s.find_by_name("NODOC").unwrap();
        let b = t.find_by_name("identifier").unwrap();
        assert_eq!(v.vote(&ctx, nodoc, b), Confidence::UNKNOWN);
    }

    #[test]
    fn learning_boosts_shared_terms_of_accepted_pairs() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let mut ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let mut v = DocumentationVoter::default();
        let a = s.find_by_name("IDENT").unwrap();
        let b = t.find_by_name("identifier").unwrap();
        let before = ctx.corpus.boost("icao");
        v.learn(&mut ctx, &[Feedback::accept(a, b)]);
        assert!(ctx.corpus.boost("icao") > before);
    }

    #[test]
    fn learning_damps_shared_terms_of_rejected_pairs() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let mut ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let mut v = DocumentationVoter::default();
        let a = s.find_by_name("ELEV").unwrap();
        let b = t.find_by_name("runwayCount").unwrap();
        // Shared stems between these definitions (e.g. none strong) —
        // use IDENT/runwayCount which share "the"... stems exclude stops,
        // so engineer a shared term: "facility"? Actually ELEV/runwayCount
        // share no stems; use IDENT vs identifier but rejected.
        let a2 = s.find_by_name("IDENT").unwrap();
        let b2 = t.find_by_name("identifier").unwrap();
        let before = ctx.corpus.boost("icao");
        v.learn(&mut ctx, &[Feedback::reject(a2, b2)]);
        assert!(ctx.corpus.boost("icao") < before);
        let _ = (a, b);
    }
}
