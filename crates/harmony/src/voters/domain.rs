//! Domain-value voter.
//!
//! §2: integration engineers "manually inspected the domain values to
//! find correspondences" and worked upward from there; domain values
//! "could be better exploited by schema matchers". This voter does that
//! inspection automatically: it compares the code sets and the
//! documented meanings of the domains reachable from the two elements.
//! Two attributes drawing values from near-identical coding schemes very
//! likely encode the same property — even when the attribute names and
//! the codes themselves differ, the documented meanings still align.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::ElementId;
use std::collections::HashSet;

/// Voter over coding-scheme values and their meanings.
#[derive(Debug, Clone)]
pub struct DomainVoter {
    /// Combined overlap treated as "no evidence" (default 0.2).
    pub baseline: f64,
    /// Maximum confidence magnitude (default 0.92) — matching value sets
    /// are among the strongest evidence available.
    pub cap: f64,
}

impl Default for DomainVoter {
    fn default() -> Self {
        DomainVoter {
            baseline: 0.2,
            cap: 0.92,
        }
    }
}

fn jaccard(a: &[String], b: &[String]) -> f64 {
    let sa: HashSet<&String> = a.iter().collect();
    let sb: HashSet<&String> = b.iter().collect();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

impl MatchVoter for DomainVoter {
    fn name(&self) -> &'static str {
        "domain"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a = &ctx.src(src).text;
        let b = &ctx.tgt(tgt).text;
        // Abstain unless both sides have domain evidence.
        if a.domain_codes.is_empty() || b.domain_codes.is_empty() {
            return Confidence::UNKNOWN;
        }
        let code_overlap = jaccard(&a.domain_codes, &b.domain_codes);
        let meaning_overlap = jaccard(&a.domain_meaning_stems, &b.domain_meaning_stems);
        // Codes are definitive when they align; meanings rescue renamed
        // coding schemes.
        let sim = code_overlap.max(0.85 * meaning_overlap);
        Confidence::from_similarity(sim, self.baseline, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Domain, Metamodel, SchemaBuilder, SchemaGraph};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let d1 = Domain::new("surface")
            .with_value("ASP", "Asphalt surface")
            .with_value("CON", "Concrete surface")
            .with_value("GRS", "Grass surface");
        // Same scheme, renamed codes, equivalent documentation.
        let d2 = Domain::new("rwy-sfc")
            .with_value("1", "Asphalt surface")
            .with_value("2", "Concrete surface")
            .with_value("3", "Grass surface");
        // Unrelated scheme.
        let d3 = Domain::new("status")
            .with_value("A", "Active duty")
            .with_value("R", "Reserve");
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("RUNWAY")
            .attr("SFC", DataType::Coded("surface".into()))
            .domain_for_last_attr(&d1)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("STRIP")
            .attr("KIND", DataType::Coded("rwy-sfc".into()))
            .domain_for_last_attr(&d2)
            .attr("STAT", DataType::Coded("status".into()))
            .domain_for_last_attr(&d3)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn renamed_codes_match_through_meanings() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DomainVoter::default();
        let sfc = s.find_by_name("SFC").unwrap();
        let kind = t.find_by_name("KIND").unwrap();
        assert!(v.vote(&ctx, sfc, kind).value() > 0.5, "meanings align");
    }

    #[test]
    fn unrelated_domains_score_negative() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DomainVoter::default();
        let sfc = s.find_by_name("SFC").unwrap();
        let stat = t.find_by_name("STAT").unwrap();
        assert!(v.vote(&ctx, sfc, stat).value() < 0.0);
    }

    #[test]
    fn abstains_without_domains() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DomainVoter::default();
        let runway = s.find_by_name("RUNWAY").unwrap();
        let strip = t.find_by_name("STRIP").unwrap();
        assert_eq!(v.vote(&ctx, runway, strip), Confidence::UNKNOWN);
    }

    #[test]
    fn identical_codes_match_directly() {
        let d = Domain::new("d")
            .with_value("ASP", "x")
            .with_value("CON", "y");
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("A")
            .attr("c1", DataType::Coded("d".into()))
            .domain_for_last_attr(&d)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("B")
            .attr("c2", DataType::Coded("d".into()))
            .domain_for_last_attr(&d)
            .close()
            .build();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = DomainVoter::default();
        let c1 = s.find_by_name("c1").unwrap();
        let c2 = t.find_by_name("c2").unwrap();
        assert!(v.vote(&ctx, c1, c2).value() > 0.8);
    }
}
