//! Instance-overlap voter (optional, sample-driven).
//!
//! §2 warns instance data is often unavailable in enterprise settings —
//! but "Instance data, thesauri, etc. are sometimes available and
//! sometimes not", and tools "must use whatever information is
//! available". When samples *are* attached to the
//! [`crate::MatchContext`], this voter compares the distinct value sets
//! of two attributes; with no samples it abstains completely, so the
//! engine degrades gracefully to the documentation-first behaviour the
//! paper argues for.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::ElementId;
use std::collections::HashSet;

/// Voter over sampled instance values.
#[derive(Debug, Clone)]
pub struct InstanceVoter {
    /// Jaccard overlap treated as "no evidence" (default 0.1).
    pub baseline: f64,
    /// Maximum confidence magnitude (default 0.85).
    pub cap: f64,
    /// Minimum distinct values on each side before voting (default 3) —
    /// two booleans overlapping is not evidence.
    pub min_distinct: usize,
}

impl Default for InstanceVoter {
    fn default() -> Self {
        InstanceVoter {
            baseline: 0.1,
            cap: 0.85,
            min_distinct: 3,
        }
    }
}

impl MatchVoter for InstanceVoter {
    fn name(&self) -> &'static str {
        "instance"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a: HashSet<&String> = ctx.src_samples(src).iter().collect();
        let b: HashSet<&String> = ctx.tgt_samples(tgt).iter().collect();
        if a.len() < self.min_distinct || b.len() < self.min_distinct {
            return Confidence::UNKNOWN;
        }
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        Confidence::from_similarity(inter / union, self.baseline, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SchemaSide;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("T")
            .attr("c1", DataType::Text)
            .attr("c2", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("U")
            .attr("k1", DataType::Text)
            .close()
            .build();
        (s, t)
    }

    fn vals(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn overlapping_samples_vote_positive() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let mut ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let c1 = s.find_by_name("c1").unwrap();
        let c2 = s.find_by_name("c2").unwrap();
        let k1 = t.find_by_name("k1").unwrap();
        ctx.set_samples(
            SchemaSide::Source,
            [
                (c1, vals(&["ASP", "CON", "GRS"])),
                (c2, vals(&["red", "green", "blue"])),
            ],
        );
        ctx.set_samples(
            SchemaSide::Target,
            [(k1, vals(&["asp", "con", "grs", "dirt"]))],
        );
        let v = InstanceVoter::default();
        assert!(
            v.vote(&ctx, c1, k1).value() > 0.4,
            "case-insensitive overlap"
        );
        assert!(v.vote(&ctx, c2, k1).value() < 0.0, "disjoint values");
    }

    #[test]
    fn abstains_without_samples_or_below_min_distinct() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let mut ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let c1 = s.find_by_name("c1").unwrap();
        let k1 = t.find_by_name("k1").unwrap();
        let v = InstanceVoter::default();
        assert_eq!(v.vote(&ctx, c1, k1), Confidence::UNKNOWN);
        ctx.set_samples(SchemaSide::Source, [(c1, vals(&["x", "y"]))]);
        ctx.set_samples(SchemaSide::Target, [(k1, vals(&["x", "y"]))]);
        assert_eq!(
            v.vote(&ctx, c1, k1),
            Confidence::UNKNOWN,
            "below min_distinct"
        );
    }
}
