//! Key-participation voter.
//!
//! Identifying attributes match identifying attributes: if both sides
//! participate in a declared key, that weakly supports a
//! correspondence; if exactly one side is a key participant, that
//! weakly opposes it (an identifier rarely maps to a plain descriptive
//! attribute). Uses the `key-attribute` cross edges loaders materialise
//! from PRIMARY KEY / `key` declarations.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::{EdgeKind, ElementId, ElementKind, SchemaGraph};

/// Voter over key participation.
#[derive(Debug, Clone)]
pub struct KeyVoter {
    /// Confidence when both sides are key participants (default +0.35).
    pub both: f64,
    /// Confidence when exactly one side is (default -0.2).
    pub mismatch: f64,
}

impl Default for KeyVoter {
    fn default() -> Self {
        KeyVoter {
            both: 0.35,
            mismatch: -0.2,
        }
    }
}

fn is_key_participant(graph: &SchemaGraph, id: ElementId) -> bool {
    graph
        .cross_edges()
        .iter()
        .any(|e| e.kind == EdgeKind::KeyAttribute && e.to == id)
}

impl MatchVoter for KeyVoter {
    fn name(&self) -> &'static str {
        "key"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        if ctx.source().element(src).kind != ElementKind::Attribute
            || ctx.target().element(tgt).kind != ElementKind::Attribute
        {
            return Confidence::UNKNOWN;
        }
        let a = is_key_participant(ctx.source(), src);
        let b = is_key_participant(ctx.target(), tgt);
        match (a, b) {
            (true, true) => Confidence::engine(self.both),
            (true, false) | (false, true) => Confidence::engine(self.mismatch),
            (false, false) => Confidence::UNKNOWN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("T")
            .attr("id", DataType::Integer)
            .attr("note", DataType::Text)
            .key("pk", &["id"])
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("U")
            .attr("num", DataType::Integer)
            .attr("remark", DataType::Text)
            .key("pk", &["num"])
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn key_alignment_and_mismatch() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = KeyVoter::default();
        let id = s.find_by_name("id").unwrap();
        let note = s.find_by_name("note").unwrap();
        let num = t.find_by_name("num").unwrap();
        let remark = t.find_by_name("remark").unwrap();
        assert!(v.vote(&ctx, id, num).value() > 0.0, "key ↔ key");
        assert!(v.vote(&ctx, id, remark).value() < 0.0, "key ↔ non-key");
        assert_eq!(v.vote(&ctx, note, remark), Confidence::UNKNOWN);
        // Non-attributes abstain.
        let table = s.find_by_name("T").unwrap();
        let u = t.find_by_name("U").unwrap();
        assert_eq!(v.vote(&ctx, table, u), Confidence::UNKNOWN);
    }
}
