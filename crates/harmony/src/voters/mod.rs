//! The built-in match voters.
//!
//! Each voter uses a distinct form of evidence (§4.3: "Each candidate
//! matcher focuses on a particular form of evidence, such as elements'
//! names"):
//!
//! | Voter | Evidence |
//! |---|---|
//! | [`NameVoter`] | string and token similarity of element names |
//! | [`DocumentationVoter`] | TF-IDF cosine of definitions (§4: "one matcher compares the words appearing in the elements' definitions") |
//! | [`ThesaurusVoter`] | synonym/abbreviation expansion of name tokens (§4: "another matcher expands the elements' names using a thesaurus") |
//! | [`StructureVoter`] | overlap of child element vocabularies |
//! | [`DomainVoter`] | overlap of coding-scheme values (§2's low-level domain inspection) |
//! | [`DataTypeVoter`] | compatibility of declared data types |
//! | [`AcronymVoter`] | initialisms of multi-token names |
//! | [`PathVoter`] | parent-name context disambiguating generic leaves |
//! | [`KeyVoter`] | key-participation alignment |
//! | [`InstanceVoter`] | sampled value overlap (only when samples are attached; §2) |

mod acronym;
mod datatype;
mod documentation;
mod domain;
mod instance;
mod key;
mod name;
mod path;
mod structure;
mod thesaurus;

pub use acronym::AcronymVoter;
pub use datatype::DataTypeVoter;
pub use documentation::DocumentationVoter;
pub use domain::DomainVoter;
pub use instance::InstanceVoter;
pub use key::KeyVoter;
pub use name::NameVoter;
pub use path::PathVoter;
pub use structure::StructureVoter;
pub use thesaurus::ThesaurusVoter;

use crate::voter::MatchVoter;

/// The default voter suite, in the order Harmony runs them.
pub fn default_suite() -> Vec<Box<dyn MatchVoter>> {
    vec![
        Box::new(NameVoter::default()),
        Box::new(DocumentationVoter::default()),
        Box::new(ThesaurusVoter::default()),
        Box::new(StructureVoter::default()),
        Box::new(DomainVoter::default()),
        Box::new(DataTypeVoter::default()),
        Box::new(AcronymVoter::default()),
        Box::new(PathVoter::default()),
        Box::new(KeyVoter::default()),
    ]
}

/// The extended suite including the sample-driven instance voter; use
/// with [`crate::HarmonyEngine::set_instance_samples`].
pub fn extended_suite() -> Vec<Box<dyn MatchVoter>> {
    let mut suite = default_suite();
    suite.push(Box::new(InstanceVoter::default()));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_has_unique_names() {
        let suite = extended_suite();
        let mut names: Vec<&str> = suite.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 10);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
