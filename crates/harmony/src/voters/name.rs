//! Name similarity voter.
//!
//! Blends three views of the element names: whole-string Jaro-Winkler
//! (abbreviation-friendly), character-bigram Dice on the concatenated
//! lowercase tokens (separator-convention-proof), and exact-stem token
//! overlap. The blend is mapped to a confidence around a noise baseline.

use crate::confidence::Confidence;
use crate::context::{MatchContext, TextFeatures};
use crate::voter::MatchVoter;
use iwb_ling::{dice_profiles, jaro_winkler};
use iwb_model::ElementId;

/// Voter over element names.
#[derive(Debug, Clone)]
pub struct NameVoter {
    /// Similarity level that counts as "no evidence" (default 0.42).
    pub baseline: f64,
    /// Maximum confidence magnitude emitted (default 0.9).
    pub cap: f64,
}

impl Default for NameVoter {
    fn default() -> Self {
        NameVoter {
            baseline: 0.42,
            cap: 0.9,
        }
    }
}

impl NameVoter {
    /// The blended similarity over two elements' cached name features
    /// (joined strings, bigram profiles, token lists).
    fn similarity(a: &TextFeatures, b: &TextFeatures) -> f64 {
        let jw = jaro_winkler(&a.joined_name, &b.joined_name);
        // Bigram Dice from the cached profiles; names too short to have
        // a bigram fall back to exact comparison (matching
        // `dice_coefficient` on the joined strings).
        let dice = if a.name_profile.total() + b.name_profile.total() == 0 {
            if a.joined_name == b.joined_name {
                1.0
            } else {
                0.0
            }
        } else {
            dice_profiles(&a.name_profile, &b.name_profile)
        };
        let a_tokens = &a.name.tokens;
        let b_tokens = &b.name.tokens;
        let (small, large) = if a_tokens.len() <= b_tokens.len() {
            (a_tokens, b_tokens)
        } else {
            (b_tokens, a_tokens)
        };
        let overlap =
            small.iter().filter(|t| large.contains(t)).count() as f64 / small.len() as f64;
        0.4 * jw + 0.35 * dice + 0.25 * overlap
    }
}

impl MatchVoter for NameVoter {
    fn name(&self) -> &'static str {
        "name"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a = &ctx.src(src).text;
        let b = &ctx.tgt(tgt).text;
        if a.name.tokens.is_empty() || b.name.tokens.is_empty() {
            return Confidence::UNKNOWN;
        }
        Confidence::from_similarity(Self::similarity(a, b), self.baseline, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};

    fn ctx_schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Xml)
            .open("shipTo")
            .attr("firstName", DataType::Text)
            .attr("subtotal", DataType::Decimal)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("shippingInfo")
            .attr("first_name", DataType::Text)
            .attr("total", DataType::Decimal)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn convention_differences_still_match() {
        let (s, t) = ctx_schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = NameVoter::default();
        let fn_s = s.find_by_name("firstName").unwrap();
        let fn_t = t.find_by_name("first_name").unwrap();
        assert!(v.vote(&ctx, fn_s, fn_t).value() > 0.7, "camel vs snake");
    }

    #[test]
    fn related_names_beat_unrelated() {
        let (s, t) = ctx_schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = NameVoter::default();
        let ship = s.find_by_name("shipTo").unwrap();
        let shipping = t.find_by_name("shippingInfo").unwrap();
        let total = t.find_by_name("total").unwrap();
        assert!(v.vote(&ctx, ship, shipping).value() > v.vote(&ctx, ship, total).value());
    }

    #[test]
    fn unrelated_names_score_negative() {
        let (s, t) = ctx_schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = NameVoter::default();
        let first = s.find_by_name("firstName").unwrap();
        let total = t.find_by_name("total").unwrap();
        assert!(v.vote(&ctx, first, total).value() < 0.0);
    }

    #[test]
    fn identical_names_near_cap() {
        let (s, t) = ctx_schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = NameVoter::default();
        let sub = s.find_by_name("subtotal").unwrap();
        // subtotal vs total: substantial but not perfect.
        let tot = t.find_by_name("total").unwrap();
        let sim = v.vote(&ctx, sub, tot).value();
        assert!(sim > 0.0 && sim < v.cap);
    }
}
