//! Path-context voter.
//!
//! Generic leaf names ("name", "code", "identifier" — the most common
//! attribute suffixes in the registry) are ambiguous on their own; what
//! disambiguates them is *where they sit*. This voter compares the
//! parents' name tokens under the thesaurus, so `CUSTOMER/name` prefers
//! `client/name` over `product/name` even though all three leaves are
//! identical.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::ElementId;

/// Voter over the containment context (parent names).
#[derive(Debug, Clone)]
pub struct PathVoter {
    /// Overlap treated as "no evidence" (default 0.25).
    pub baseline: f64,
    /// Maximum confidence magnitude (default 0.6) — context is
    /// supporting evidence, not primary.
    pub cap: f64,
}

impl Default for PathVoter {
    fn default() -> Self {
        PathVoter {
            baseline: 0.25,
            cap: 0.6,
        }
    }
}

impl MatchVoter for PathVoter {
    fn name(&self) -> &'static str {
        "path"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let (Some((_, ps)), Some((_, pt))) = (ctx.source().parent(src), ctx.target().parent(tgt))
        else {
            return Confidence::UNKNOWN;
        };
        // Parents at the schema root carry no discriminating context.
        if ps == ctx.source().root() || pt == ctx.target().root() {
            return Confidence::UNKNOWN;
        }
        let a = &ctx.src(ps).text;
        let b = &ctx.tgt(pt).text;
        if a.name.tokens.is_empty() || b.name.tokens.is_empty() {
            return Confidence::UNKNOWN;
        }
        // Parent tokens are compared through the cached per-token
        // `expanded_stems` (see the thesaurus voter).
        let (small, large) = if a.name.tokens.len() <= b.name.tokens.len() {
            (a, b)
        } else {
            (b, a)
        };
        let thesaurus = ctx.thesaurus();
        let hits = small
            .name
            .tokens
            .iter()
            .zip(small.expanded_stems.iter())
            .filter(|(x, xs)| {
                large
                    .name
                    .tokens
                    .iter()
                    .zip(large.expanded_stems.iter())
                    .any(|(y, ys)| thesaurus.synonymous(x, y) || **xs == *ys)
            })
            .count();
        Confidence::from_similarity(
            hits as f64 / small.name.tokens.len() as f64,
            self.baseline,
            self.cap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    #[test]
    fn parent_context_disambiguates_generic_leaves() {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("CUSTOMER")
            .attr("name", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("client")
            .attr("name", DataType::Text)
            .close()
            .open("product")
            .attr("name", DataType::Text)
            .close()
            .build();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = PathVoter::default();
        let cust_name = s.find_by_path("s/CUSTOMER/name").unwrap();
        let client_name = t.find_by_path("t/client/name").unwrap();
        let product_name = t.find_by_path("t/product/name").unwrap();
        assert!(
            v.vote(&ctx, cust_name, client_name).value()
                > v.vote(&ctx, cust_name, product_name).value()
        );
        assert!(v.vote(&ctx, cust_name, client_name).value() > 0.3);
        assert!(v.vote(&ctx, cust_name, product_name).value() < 0.0);
    }

    #[test]
    fn top_level_elements_abstain() {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("A")
            .attr("x", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Relational)
            .open("B")
            .attr("y", DataType::Text)
            .close()
            .build();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = PathVoter::default();
        let a = s.find_by_name("A").unwrap();
        let b = t.find_by_name("B").unwrap();
        assert_eq!(v.vote(&ctx, a, b), Confidence::UNKNOWN);
    }
}
