//! Structural (children-vocabulary) voter.
//!
//! Containers whose children talk about the same things probably
//! correspond, even when the containers' own names differ. The voter
//! compares the stem vocabulary of the two elements' direct children;
//! for leaves it abstains.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::{ElementId, SchemaGraph};
use std::collections::HashSet;

/// Voter over child-element vocabularies.
#[derive(Debug, Clone)]
pub struct StructureVoter {
    /// Jaccard level treated as "no evidence" (default 0.15).
    pub baseline: f64,
    /// Maximum confidence magnitude (default 0.7) — structural evidence
    /// alone is circumstantial.
    pub cap: f64,
}

impl Default for StructureVoter {
    fn default() -> Self {
        StructureVoter {
            baseline: 0.15,
            cap: 0.7,
        }
    }
}

fn child_stems(
    ctx: &MatchContext,
    graph: &SchemaGraph,
    id: ElementId,
    source_side: bool,
) -> HashSet<String> {
    graph
        .children(id)
        .iter()
        .flat_map(|&(_, c)| {
            let f = if source_side { ctx.src(c) } else { ctx.tgt(c) };
            f.text.name.stems.iter().cloned()
        })
        .collect()
}

impl MatchVoter for StructureVoter {
    fn name(&self) -> &'static str {
        "structure"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a = child_stems(ctx, ctx.source(), src, true);
        let b = child_stems(ctx, ctx.target(), tgt, false);
        if a.is_empty() || b.is_empty() {
            return Confidence::UNKNOWN;
        }
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        Confidence::from_similarity(inter / union, self.baseline, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    #[test]
    fn containers_with_shared_children_match() {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("PERSON")
            .attr("first_name", DataType::Text)
            .attr("last_name", DataType::Text)
            .attr("birth_date", DataType::Date)
            .close()
            .open("WIDGET")
            .attr("sku", DataType::Text)
            .attr("weight", DataType::Decimal)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("individual")
            .attr("firstName", DataType::Text)
            .attr("lastName", DataType::Text)
            .attr("birthDate", DataType::Date)
            .close()
            .build();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = StructureVoter::default();
        let person = s.find_by_name("PERSON").unwrap();
        let widget = s.find_by_name("WIDGET").unwrap();
        let individual = t.find_by_name("individual").unwrap();
        assert!(v.vote(&ctx, person, individual).value() > 0.4);
        assert!(v.vote(&ctx, widget, individual).value() < 0.0);
    }

    #[test]
    fn leaves_abstain() {
        let s = SchemaBuilder::new("s", Metamodel::Xml)
            .open("e")
            .attr("x", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("f")
            .attr("x", DataType::Text)
            .close()
            .build();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = StructureVoter::default();
        let xs = s.find_by_name("x").unwrap();
        let xt = t.find_by_name("x").unwrap();
        assert_eq!(v.vote(&ctx, xs, xt), Confidence::UNKNOWN);
    }
}
