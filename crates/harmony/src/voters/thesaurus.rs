//! Thesaurus-expansion voter.
//!
//! §4: "Another matcher expands the elements' names using a thesaurus."
//! Name tokens are compared under synonymy (synonym rings), abbreviation
//! expansion, and shared stems, so `acftType` matches `airplaneKind`
//! even though no characters align.

use crate::confidence::Confidence;
use crate::context::MatchContext;
use crate::voter::MatchVoter;
use iwb_model::ElementId;

/// Voter over thesaurus-expanded name tokens.
#[derive(Debug, Clone)]
pub struct ThesaurusVoter {
    /// Overlap fraction treated as "no evidence" (default 0.25).
    pub baseline: f64,
    /// Maximum confidence magnitude (default 0.8).
    pub cap: f64,
}

impl Default for ThesaurusVoter {
    fn default() -> Self {
        ThesaurusVoter {
            baseline: 0.25,
            cap: 0.8,
        }
    }
}

impl ThesaurusVoter {
    /// True if two tokens are equivalent under the thesaurus: equal,
    /// synonymous after abbreviation expansion, or sharing a stem after
    /// expansion. `vote` computes the same relation through the cached
    /// `expanded_stems`; this spelled-out form documents and tests it.
    #[cfg(test)]
    fn equivalent(thesaurus: &iwb_ling::Thesaurus, a: &str, b: &str) -> bool {
        use iwb_ling::porter_stem;
        if thesaurus.synonymous(a, b) {
            return true;
        }
        let ea = thesaurus.expand(a);
        let eb = thesaurus.expand(b);
        porter_stem(ea) == porter_stem(eb)
    }
}

impl MatchVoter for ThesaurusVoter {
    fn name(&self) -> &'static str {
        "thesaurus"
    }

    fn vote(&self, ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        let a = &ctx.src(src).text;
        let b = &ctx.tgt(tgt).text;
        if a.name.tokens.is_empty() || b.name.tokens.is_empty() {
            return Confidence::UNKNOWN;
        }
        // Expansion + stemming is precomputed per token in
        // `expanded_stems` (aligned with `name.tokens`); only the
        // synonym-ring lookup still needs the thesaurus per pair.
        let (small, large) = if a.name.tokens.len() <= b.name.tokens.len() {
            (a, b)
        } else {
            (b, a)
        };
        let thesaurus = ctx.thesaurus();
        let hits = small
            .name
            .tokens
            .iter()
            .zip(small.expanded_stems.iter())
            .filter(|(x, xs)| {
                large
                    .name
                    .tokens
                    .iter()
                    .zip(large.expanded_stems.iter())
                    .any(|(y, ys)| thesaurus.synonymous(x, y) || **xs == *ys)
            })
            .count();
        let overlap = hits as f64 / small.name.tokens.len() as f64;
        Confidence::from_similarity(overlap, self.baseline, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_ling::{Corpus, Thesaurus};
    use iwb_model::{DataType, Metamodel, SchemaBuilder, SchemaGraph};

    fn schemas() -> (SchemaGraph, SchemaGraph) {
        let s = SchemaBuilder::new("s", Metamodel::Relational)
            .open("FLIGHT")
            .attr("ACFT_TYPE", DataType::Text)
            .attr("VENDOR_NAME", DataType::Text)
            .close()
            .build();
        let t = SchemaBuilder::new("t", Metamodel::Xml)
            .open("flight")
            .attr("airplaneKind", DataType::Text)
            .attr("supplierName", DataType::Text)
            .close()
            .build();
        (s, t)
    }

    #[test]
    fn abbreviations_and_synonyms_match() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = ThesaurusVoter::default();
        let acft = s.find_by_name("ACFT_TYPE").unwrap();
        let plane = t.find_by_name("airplaneKind").unwrap();
        assert!(
            v.vote(&ctx, acft, plane).value() > 0.5,
            "acft~airplane, type~kind"
        );
    }

    #[test]
    fn synonym_rings_cross_vocabulary() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = ThesaurusVoter::default();
        let vendor = s.find_by_name("VENDOR_NAME").unwrap();
        let supplier = t.find_by_name("supplierName").unwrap();
        assert!(v.vote(&ctx, vendor, supplier).value() > 0.5);
    }

    #[test]
    fn disjoint_vocabulary_scores_negative() {
        let (s, t) = schemas();
        let th = Thesaurus::builtin();
        let ctx = MatchContext::build(&s, &t, &th, Corpus::new());
        let v = ThesaurusVoter::default();
        let acft = s.find_by_name("ACFT_TYPE").unwrap();
        let supplier = t.find_by_name("supplierName").unwrap();
        assert!(v.vote(&ctx, acft, supplier).value() < 0.0);
    }

    #[test]
    fn stem_equivalence_after_expansion() {
        let th = Thesaurus::builtin();
        assert!(ThesaurusVoter::equivalent(&th, "shipping", "shipped"));
        assert!(ThesaurusVoter::equivalent(&th, "addr", "addresses"));
        assert!(!ThesaurusVoter::equivalent(&th, "runway", "salary"));
    }
}
