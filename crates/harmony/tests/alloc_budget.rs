//! Allocation budget for the engine's scoring hot path.
//!
//! `Engine::run` used to clone the source/target id slices for every
//! voter, allocating O(voters × pairs) vectors per run. The rewritten
//! row-range kernels hoist all per-run buffers, so a warm run (features
//! cached, flooding disabled, a voter with no internal allocations)
//! must allocate *fewer total heap blocks than there are candidate
//! pairs* — any per-pair or per-(voter, pair) allocation would blow
//! that budget by an order of magnitude.
//!
//! The counting allocator is the one sanctioned use of `unsafe` in the
//! repository: a test-only shim that defers straight to `System`.

use iwb_harmony::{
    Confidence, FloodingConfig, HarmonyEngine, MatchConfig, MatchContext, MatchVoter, VoteMerger,
};
use iwb_model::{DataType, ElementId, Metamodel, SchemaBuilder, SchemaGraph};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global, so concurrently running
/// tests contaminate each other's measurements; each test holds this
/// for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap blocks allocated while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// A voter that allocates nothing per vote, so the measurement sees
/// only the engine framework's own allocations.
struct ConstVoter;

impl MatchVoter for ConstVoter {
    fn name(&self) -> &'static str {
        "const"
    }

    fn vote(&self, _ctx: &MatchContext, src: ElementId, tgt: ElementId) -> Confidence {
        // Vary by ids so the merged matrix is not trivially uniform.
        let v = ((src.index() * 7 + tgt.index() * 3) % 10) as f64 / 20.0;
        Confidence::engine(v)
    }
}

fn flat_schema(name: &str, entities: usize) -> SchemaGraph {
    let mut b = SchemaBuilder::new(name, Metamodel::Relational);
    for e in 0..entities {
        b = b
            .open(format!("{name}_e{e}"))
            .attr(format!("{name}_a{e}"), DataType::Text)
            .close();
    }
    b.build()
}

#[test]
fn warm_engine_run_allocates_less_than_one_block_per_pair() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let source = flat_schema("src", 12);
    let target = flat_schema("tgt", 12);
    let mut engine = HarmonyEngine::new(
        vec![
            Box::new(ConstVoter),
            Box::new(ConstVoter),
            Box::new(ConstVoter),
        ],
        VoteMerger::default(),
        FloodingConfig::disabled(),
    );
    engine.set_match_config(MatchConfig {
        threads: 1,
        cache: true,
        ..MatchConfig::default()
    });
    let locked = HashMap::new();
    // Warm-up run: builds and caches the match context.
    let warmup = engine.run(&source, &target, &locked);
    let pairs = warmup.matrix.src_ids().len() * warmup.matrix.tgt_ids().len();
    assert!(pairs >= 400, "workload too small to be meaningful: {pairs}");

    let allocs = allocations_during(|| {
        let result = engine.run(&source, &target, &locked);
        assert_eq!(
            result.matrix.src_ids().len() * result.matrix.tgt_ids().len(),
            pairs
        );
    });
    assert!(
        allocs < pairs,
        "engine framework allocated {allocs} blocks for {pairs} pairs — \
         something in the hot path allocates per pair again"
    );
}

#[test]
fn allocations_stay_flat_when_pairs_quadruple() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Doubling both sides quadruples the pair count; the framework's
    // per-run allocation count must stay nearly flat (slab vectors and
    // result matrices scale in *size*, not in *count*).
    let locked = HashMap::new();
    let measure = |entities: usize| {
        let source = flat_schema("src", entities);
        let target = flat_schema("tgt", entities);
        let mut engine = HarmonyEngine::new(
            vec![Box::new(ConstVoter) as Box<dyn MatchVoter>],
            VoteMerger::default(),
            FloodingConfig::disabled(),
        );
        engine.set_match_config(MatchConfig {
            threads: 1,
            cache: true,
            ..MatchConfig::default()
        });
        engine.run(&source, &target, &locked);
        allocations_during(|| {
            engine.run(&source, &target, &locked);
        })
    };
    let small = measure(8);
    let big = measure(16);
    assert!(
        big <= small * 2,
        "4x the pairs took {big} allocations vs {small} — scaling with the pair count"
    );
}
