//! The determinism contract of the parallel, feature-cached engine:
//! `HarmonyEngine::run` produces **byte-identical** results for every
//! thread count and cache setting — the merged matrix, every per-voter
//! matrix, and the flooding iteration count, compared through
//! `f64::to_bits` so even last-bit rounding drift fails.
//!
//! Workloads are seeded registry pairs (generator → mild perturbation),
//! so the suite is reproducible across runs and machines.

use iwb_harmony::{
    Budget, CancelToken, Confidence, Deadline, HarmonyEngine, Interrupt, MatchConfig, MatchResult,
    ScoreMatrix,
};
use iwb_registry::perturb::{perturb_schema, PerturbConfig};
use iwb_registry::{generate_registry, GeneratorConfig, SchemaPair};
use std::collections::HashMap;

/// One seeded (source, target, gold) pair of roughly
/// `entities * 6` elements per side.
fn seeded_pair(seed: u64, entities: usize) -> SchemaPair {
    let cfg = GeneratorConfig {
        seed,
        models: 1,
        elements: entities,
        attributes: entities * 5,
        domain_values: entities * 8,
        ..GeneratorConfig::default()
    };
    let registry = generate_registry(cfg);
    perturb_schema(&registry.models[0], &PerturbConfig::mild(seed))
}

fn run_with(
    pair: &SchemaPair,
    threads: usize,
    cache: bool,
    locked: &HashMap<(iwb_model::ElementId, iwb_model::ElementId), Confidence>,
) -> MatchResult {
    let mut engine = HarmonyEngine::default();
    engine.set_match_config(MatchConfig {
        threads,
        cache,
        ..MatchConfig::default()
    });
    engine.run(&pair.source, &pair.target, locked)
}

fn bits(m: &ScoreMatrix) -> Vec<u64> {
    m.scores().iter().map(|x| x.to_bits()).collect()
}

/// Bit-exact equality of two results, with a stage-naming panic message.
fn assert_identical(a: &MatchResult, b: &MatchResult, what: &str) {
    assert_eq!(
        a.flooding_iterations, b.flooding_iterations,
        "{what}: flooding iteration count"
    );
    assert_eq!(a.matrix.src_ids(), b.matrix.src_ids(), "{what}: row ids");
    assert_eq!(a.matrix.tgt_ids(), b.matrix.tgt_ids(), "{what}: col ids");
    assert_eq!(a.per_voter.len(), b.per_voter.len(), "{what}: voter count");
    for ((an, am), (bn, bm)) in a.per_voter.iter().zip(&b.per_voter) {
        assert_eq!(an, bn, "{what}: voter order");
        assert_eq!(bits(am), bits(bm), "{what}: voter {an} matrix");
    }
    assert_eq!(bits(&a.matrix), bits(&b.matrix), "{what}: merged matrix");
}

#[test]
fn thread_count_and_cache_never_change_the_result() {
    let pair = seeded_pair(11, 10);
    let locked = HashMap::new();
    let baseline = run_with(&pair, 1, false, &locked);
    for threads in [1, 2, 8] {
        for cache in [false, true] {
            let r = run_with(&pair, threads, cache, &locked);
            assert_identical(&baseline, &r, &format!("threads={threads} cache={cache}"));
        }
    }
}

#[test]
fn auto_thread_count_is_identical_too() {
    let pair = seeded_pair(13, 8);
    let locked = HashMap::new();
    let baseline = run_with(&pair, 1, false, &locked);
    // threads: 0 resolves to the machine's available parallelism.
    let auto = run_with(&pair, 0, true, &locked);
    assert_identical(&baseline, &auto, "threads=auto");
}

#[test]
fn cache_hits_are_byte_identical_to_cold_builds() {
    let pair = seeded_pair(17, 8);
    let locked = HashMap::new();
    let mut engine = HarmonyEngine::default(); // threads=1, cache=on
    let cold = engine.run(&pair.source, &pair.target, &locked);
    let warm = engine.run(&pair.source, &pair.target, &locked);
    assert_eq!(engine.cache_stats().context_hits, 1, "second run must hit");
    assert_identical(&cold, &warm, "cache hit vs cold build");
}

#[test]
fn locked_cells_are_identical_and_pinned_across_threads() {
    let pair = seeded_pair(19, 8);
    // Pick locked pairs out of the matrix itself so they are matchable.
    let probe = run_with(&pair, 1, false, &HashMap::new());
    let src = probe.matrix.src_ids().to_vec();
    let tgt = probe.matrix.tgt_ids().to_vec();
    let mut locked = HashMap::new();
    locked.insert((src[1], tgt[1]), Confidence::ACCEPT);
    locked.insert((src[2], tgt[1]), Confidence::REJECT);
    let baseline = run_with(&pair, 1, false, &locked);
    for threads in [2, 8] {
        let r = run_with(&pair, threads, true, &locked);
        assert_identical(&baseline, &r, &format!("locked, threads={threads}"));
        assert_eq!(r.matrix.get(src[1], tgt[1]), Confidence::ACCEPT);
        assert_eq!(r.matrix.get(src[2], tgt[1]), Confidence::REJECT);
    }
}

#[test]
fn unexpired_deadlines_never_change_the_result() {
    // The interruption budget decides *whether* stages run, never what
    // they compute: with a deadline set but unexpired, every thread ×
    // cache combination stays byte-identical to the unbudgeted run.
    let pair = seeded_pair(11, 10);
    let locked = HashMap::new();
    let baseline = run_with(&pair, 1, false, &locked);
    for threads in [1, 2, 8] {
        for cache in [false, true] {
            let mut engine = HarmonyEngine::default();
            engine.set_match_config(MatchConfig {
                threads,
                cache,
                ..MatchConfig::default()
            });
            let budget = Budget::new(
                CancelToken::new(),
                Deadline::within(std::time::Duration::from_secs(3600)),
            );
            let r = engine
                .run_budgeted(&pair.source, &pair.target, &locked, &budget)
                .expect("an hour-long deadline must not expire");
            assert_identical(
                &baseline,
                &r,
                &format!("deadline set, threads={threads} cache={cache}"),
            );
        }
    }
}

#[test]
fn aborted_runs_leave_the_engine_reusable_and_identical() {
    // A cancelled run yields a structured abort, and the *same engine*
    // still produces byte-identical results afterwards — no partial
    // state sticks.
    let pair = seeded_pair(11, 10);
    let locked = HashMap::new();
    let baseline = run_with(&pair, 1, false, &locked);
    for threads in [1, 2, 8] {
        let mut engine = HarmonyEngine::default();
        engine.set_match_config(MatchConfig {
            threads,
            cache: true,
            ..MatchConfig::default()
        });
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let budget = Budget::new(cancelled, Deadline::none());
        let err = engine
            .run_budgeted(&pair.source, &pair.target, &locked, &budget)
            .expect_err("cancelled before start must abort");
        assert_eq!(err, Interrupt::Cancelled);
        let expired = Budget::new(
            CancelToken::new(),
            Deadline::within(std::time::Duration::ZERO),
        );
        let err = engine
            .run_budgeted(&pair.source, &pair.target, &locked, &expired)
            .expect_err("expired deadline must abort");
        assert_eq!(err, Interrupt::DeadlineExceeded);
        let r = engine
            .run_budgeted(&pair.source, &pair.target, &locked, &Budget::unlimited())
            .expect("unlimited budget");
        assert_identical(
            &baseline,
            &r,
            &format!("post-abort rerun, threads={threads}"),
        );
    }
}

#[test]
fn incremental_rematch_is_byte_identical_to_from_scratch() {
    // The persistence contract of `iwb-store`: after a user decision,
    // re-matching splices only the dirty rows into the retained matrix
    // — and the splice is byte-identical to a from-scratch run with the
    // same locked cells, for every thread count × cache setting
    // (threads: 0 resolves to the machine's available parallelism).
    let pair = seeded_pair(23, 8);
    let probe = run_with(&pair, 1, false, &HashMap::new());
    let src = probe.matrix.src_ids().to_vec();
    let tgt = probe.matrix.tgt_ids().to_vec();
    let mut locked = HashMap::new();
    locked.insert((src[1], tgt[2]), Confidence::ACCEPT);
    locked.insert((src[3], tgt[0]), Confidence::REJECT);
    let scratch = run_with(&pair, 1, false, &locked);
    for threads in [1, 2, 8, 0] {
        for cache in [false, true] {
            let mut engine = HarmonyEngine::default();
            engine.set_match_config(MatchConfig {
                threads,
                cache,
                ..MatchConfig::default()
            });
            let full = engine.run(&pair.source, &pair.target, &HashMap::new());
            assert_identical(
                &probe,
                &full,
                &format!("full, threads={threads} cache={cache}"),
            );
            assert!(!engine.last_run().incremental, "first run is full");
            let spliced = engine.run(&pair.source, &pair.target, &locked);
            let report = engine.last_run();
            assert!(
                report.incremental,
                "threads={threads} cache={cache}: re-run took the incremental path"
            );
            assert_eq!(
                report.dirty_rows, 2,
                "threads={threads} cache={cache}: exactly the two decided rows re-merge"
            );
            assert_identical(
                &scratch,
                &spliced,
                &format!("incremental, threads={threads} cache={cache}"),
            );
        }
    }
}

#[test]
fn retracting_a_decision_incrementally_is_identical_too() {
    // Dirty-row detection is symmetric: removing a locked cell must
    // re-merge its row back to the undecided result, byte-identically.
    let pair = seeded_pair(29, 8);
    let probe = run_with(&pair, 1, false, &HashMap::new());
    let src = probe.matrix.src_ids().to_vec();
    let tgt = probe.matrix.tgt_ids().to_vec();
    let mut locked = HashMap::new();
    locked.insert((src[0], tgt[1]), Confidence::ACCEPT);
    for threads in [1, 8] {
        let mut engine = HarmonyEngine::default();
        engine.set_match_config(MatchConfig {
            threads,
            cache: true,
            ..MatchConfig::default()
        });
        engine.run(&pair.source, &pair.target, &locked);
        let retracted = engine.run(&pair.source, &pair.target, &HashMap::new());
        let report = engine.last_run();
        assert!(
            report.incremental,
            "threads={threads}: retraction is incremental"
        );
        assert_eq!(report.dirty_rows, 1, "threads={threads}");
        assert_identical(&probe, &retracted, &format!("retract, threads={threads}"));
    }
}

#[test]
fn distinct_seeds_produce_distinct_matrices() {
    // Sanity check that the suite is not vacuous: different workloads
    // must actually differ, or bit-equality above proves nothing.
    let a = seeded_pair(11, 8);
    let b = seeded_pair(12, 8);
    let locked = HashMap::new();
    let ra = run_with(&a, 1, false, &locked);
    let rb = run_with(&b, 1, false, &locked);
    assert_ne!(bits(&ra.matrix), bits(&rb.matrix));
}
