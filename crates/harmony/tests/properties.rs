//! Property-based tests for confidence algebra, the merger, and the
//! score matrix.

use iwb_harmony::{Confidence, MergeStrategy, ScoreMatrix, VoteMerger};
use iwb_model::ElementId;
use proptest::prelude::*;

proptest! {
    /// Engine confidences always land strictly inside (-1, 1); user
    /// endpoints are only reachable through raw/ACCEPT/REJECT.
    #[test]
    fn engine_confidence_never_claims_user_certainty(v in any::<f64>()) {
        let c = Confidence::engine(v);
        prop_assert!(c.value() > -1.0 && c.value() < 1.0);
        prop_assert!(!c.is_user_decision());
        prop_assert!((0.0..1.0).contains(&c.magnitude()));
    }

    /// from_similarity is monotone in the similarity and crosses zero at
    /// the baseline.
    #[test]
    fn similarity_mapping_monotone(
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        baseline in 0.05f64..0.95,
    ) {
        let c1 = Confidence::from_similarity(s1, baseline, 0.9).value();
        let c2 = Confidence::from_similarity(s2, baseline, 0.9).value();
        if s1 < s2 {
            prop_assert!(c1 <= c2 + 1e-12);
        }
        prop_assert!((Confidence::from_similarity(baseline, baseline, 0.9).value()).abs() < 1e-12);
    }

    /// Merged confidence is bounded by the extreme votes (a convex-ish
    /// combination), for both strategies.
    #[test]
    fn merge_stays_within_vote_envelope(votes in prop::collection::vec(-0.95f64..0.95, 1..6)) {
        let named: Vec<(String, Confidence)> = votes
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("v{i}"), Confidence::engine(v)))
            .collect();
        let refs: Vec<(&str, Confidence)> =
            named.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        let lo = votes.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = votes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for strategy in [MergeStrategy::MagnitudeWeighted, MergeStrategy::UniformAverage] {
            let m = VoteMerger::with_strategy(strategy).merge(&refs);
            prop_assert!(m.value() >= lo - 1e-9 && m.value() <= hi + 1e-9,
                "{:?}: {} not in [{}, {}]", strategy, m.value(), lo, hi);
        }
    }

    /// The score matrix stores and retrieves arbitrary score patterns
    /// exactly (modulo the raw clamp).
    #[test]
    fn score_matrix_round_trip(scores in prop::collection::vec(-1.0f64..1.0, 9)) {
        let src: Vec<ElementId> = (0..3).map(ElementId::from_index).collect();
        let tgt: Vec<ElementId> = (10..13).map(ElementId::from_index).collect();
        let mut m = ScoreMatrix::new(src.clone(), tgt.clone());
        for (k, &v) in scores.iter().enumerate() {
            m.set(src[k / 3], tgt[k % 3], Confidence::raw(v));
        }
        for (k, &v) in scores.iter().enumerate() {
            prop_assert!((m.get(src[k / 3], tgt[k % 3]).value() - v).abs() < 1e-12);
        }
        // best_for_src returns the row maximum.
        for (r, &s) in src.iter().enumerate() {
            let (_, best) = m.best_for_src(s).unwrap();
            let expected = scores[r * 3..(r + 1) * 3]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((best.value() - expected).abs() < 1e-12);
        }
    }

    /// Sharded splice is equivalent to one whole-matrix splice: cutting
    /// a row-major slab at arbitrary row boundaries and splicing the
    /// shards in *any* order reproduces the slab bit-for-bit. This is
    /// the invariant the parallel engine's merge step rests on.
    #[test]
    fn sharded_splice_equals_whole_splice(
        rows in 1usize..10,
        cols in 1usize..8,
        cuts in prop::collection::vec(0usize..10, 0..4),
        reverse in any::<bool>(),
        raw in prop::collection::vec(-1.0f64..1.0, 90),
    ) {
        let slab: Vec<f64> = raw.iter().copied().take(rows * cols).collect();
        let src: Vec<ElementId> = (0..rows).map(ElementId::from_index).collect();
        let tgt: Vec<ElementId> = (100..100 + cols).map(ElementId::from_index).collect();

        let mut whole = ScoreMatrix::new(src.clone(), tgt.clone());
        whole.splice_rows(0, &slab);

        // Arbitrary shard boundaries from the random cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (rows + 1)).collect();
        bounds.push(0);
        bounds.push(rows);
        bounds.sort_unstable();
        bounds.dedup();
        let mut shards: Vec<(usize, usize)> =
            bounds.windows(2).map(|w| (w[0], w[1])).collect();
        if reverse {
            // Splice order must not matter (the engine receives shards
            // in channel arrival order, not row order).
            shards.reverse();
        }

        let mut sharded = ScoreMatrix::new(src, tgt);
        for &(lo, hi) in &shards {
            sharded.splice_rows(lo, &slab[lo * cols..hi * cols]);
        }
        let bits = |m: &ScoreMatrix| m.scores().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&whole), bits(&sharded));
    }

    /// Splicing a row range leaves every other row untouched.
    #[test]
    fn splice_preserves_untouched_rows(
        rows in 2usize..10,
        cols in 1usize..8,
        lo in 0usize..10,
        len in 1usize..10,
        raw in prop::collection::vec(-1.0f64..1.0, 90),
    ) {
        let lo = lo % rows;
        let hi = (lo + len).min(rows);
        let src: Vec<ElementId> = (0..rows).map(ElementId::from_index).collect();
        let tgt: Vec<ElementId> = (100..100 + cols).map(ElementId::from_index).collect();
        let mut m = ScoreMatrix::new(src.clone(), tgt.clone());
        let base: Vec<f64> = raw.iter().copied().take(rows * cols).collect();
        m.splice_rows(0, &base);
        let patch: Vec<f64> = vec![0.5; (hi - lo) * cols];
        m.splice_rows(lo, &patch);
        for r in 0..rows {
            for c in 0..cols {
                let expected = if (lo..hi).contains(&r) { 0.5 } else { base[r * cols + c] };
                prop_assert_eq!(m.scores()[r * cols + c].to_bits(), expected.to_bits());
            }
        }
    }

    /// Merger learning keeps weights within the clamp bounds no matter
    /// what the feedback looks like.
    #[test]
    fn learned_weights_bounded(signs in prop::collection::vec(any::<bool>(), 1..20)) {
        let mut merger = VoteMerger::default();
        for &accepted in &signs {
            let fb = vec![iwb_harmony::Feedback {
                src: ElementId::from_index(0),
                tgt: ElementId::from_index(0),
                accepted,
            }];
            merger.learn(&fb, &["v"], |_, f| Confidence::engine(0.7 * f.sign()));
        }
        let w = merger.weight("v");
        prop_assert!((0.2..=4.0).contains(&w), "w={}", w);
    }
}
