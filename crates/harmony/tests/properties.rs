//! Property-based tests for confidence algebra, the merger, and the
//! score matrix.

use iwb_harmony::{Confidence, MergeStrategy, ScoreMatrix, VoteMerger};
use iwb_model::ElementId;
use proptest::prelude::*;

proptest! {
    /// Engine confidences always land strictly inside (-1, 1); user
    /// endpoints are only reachable through raw/ACCEPT/REJECT.
    #[test]
    fn engine_confidence_never_claims_user_certainty(v in any::<f64>()) {
        let c = Confidence::engine(v);
        prop_assert!(c.value() > -1.0 && c.value() < 1.0);
        prop_assert!(!c.is_user_decision());
        prop_assert!((0.0..1.0).contains(&c.magnitude()));
    }

    /// from_similarity is monotone in the similarity and crosses zero at
    /// the baseline.
    #[test]
    fn similarity_mapping_monotone(
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        baseline in 0.05f64..0.95,
    ) {
        let c1 = Confidence::from_similarity(s1, baseline, 0.9).value();
        let c2 = Confidence::from_similarity(s2, baseline, 0.9).value();
        if s1 < s2 {
            prop_assert!(c1 <= c2 + 1e-12);
        }
        prop_assert!((Confidence::from_similarity(baseline, baseline, 0.9).value()).abs() < 1e-12);
    }

    /// Merged confidence is bounded by the extreme votes (a convex-ish
    /// combination), for both strategies.
    #[test]
    fn merge_stays_within_vote_envelope(votes in prop::collection::vec(-0.95f64..0.95, 1..6)) {
        let named: Vec<(String, Confidence)> = votes
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("v{i}"), Confidence::engine(v)))
            .collect();
        let refs: Vec<(&str, Confidence)> =
            named.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        let lo = votes.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = votes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for strategy in [MergeStrategy::MagnitudeWeighted, MergeStrategy::UniformAverage] {
            let m = VoteMerger::with_strategy(strategy).merge(&refs);
            prop_assert!(m.value() >= lo - 1e-9 && m.value() <= hi + 1e-9,
                "{:?}: {} not in [{}, {}]", strategy, m.value(), lo, hi);
        }
    }

    /// The score matrix stores and retrieves arbitrary score patterns
    /// exactly (modulo the raw clamp).
    #[test]
    fn score_matrix_round_trip(scores in prop::collection::vec(-1.0f64..1.0, 9)) {
        let src: Vec<ElementId> = (0..3).map(ElementId::from_index).collect();
        let tgt: Vec<ElementId> = (10..13).map(ElementId::from_index).collect();
        let mut m = ScoreMatrix::new(src.clone(), tgt.clone());
        for (k, &v) in scores.iter().enumerate() {
            m.set(src[k / 3], tgt[k % 3], Confidence::raw(v));
        }
        for (k, &v) in scores.iter().enumerate() {
            prop_assert!((m.get(src[k / 3], tgt[k % 3]).value() - v).abs() < 1e-12);
        }
        // best_for_src returns the row maximum.
        for (r, &s) in src.iter().enumerate() {
            let (_, best) = m.best_for_src(s).unwrap();
            let expected = scores[r * 3..(r + 1) * 3]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((best.value() - expected).abs() < 1e-12);
        }
    }

    /// Merger learning keeps weights within the clamp bounds no matter
    /// what the feedback looks like.
    #[test]
    fn learned_weights_bounded(signs in prop::collection::vec(any::<bool>(), 1..20)) {
        let mut merger = VoteMerger::default();
        for &accepted in &signs {
            let fb = vec![iwb_harmony::Feedback {
                src: ElementId::from_index(0),
                tgt: ElementId::from_index(0),
                accepted,
            }];
            merger.learn(&fb, &["v"], |_, f| Confidence::engine(0.7 * f.sign()));
        }
        let w = merger.weight("v");
        prop_assert!((0.2..=4.0).contains(&w), "w={}", w);
    }
}
