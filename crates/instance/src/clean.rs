//! Data cleaning (task 11).
//!
//! "This subtask removes erroneous values from instance elements. A
//! value may be erroneous because it violates a domain constraint or
//! because it contradicts information from a more reliable source."
//!
//! A [`Cleaner`] applies declarative [`CleaningRule`]s to records and,
//! given per-source reliability ranks, resolves contradictions between
//! records describing the same object by preferring the more reliable
//! source.

use iwb_mapper::{Node, Value};
use iwb_model::Domain;
use std::collections::HashMap;
use std::fmt;

/// A declarative cleaning rule.
#[derive(Debug, Clone, PartialEq)]
pub enum CleaningRule {
    /// The field's value must belong to the domain.
    DomainConstraint {
        /// Field (path) checked.
        field: String,
        /// The coding scheme.
        domain: Domain,
    },
    /// The field's numeric value must lie in [min, max].
    Range {
        /// Field checked.
        field: String,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The field must be present and non-null.
    Required {
        /// Field checked.
        field: String,
    },
}

/// What the cleaner did to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum CleaningAction {
    /// An offending value was nulled out.
    RemovedValue {
        /// Record index.
        record: usize,
        /// Field cleared.
        field: String,
        /// The erroneous value.
        value: String,
        /// Which rule fired.
        reason: String,
    },
    /// A record is missing a required field (reported, not fixable).
    MissingRequired {
        /// Record index.
        record: usize,
        /// The absent field.
        field: String,
    },
    /// A contradiction was resolved by source reliability.
    ResolvedContradiction {
        /// Field involved.
        field: String,
        /// Value kept (from the more reliable source).
        kept: String,
        /// Value discarded.
        discarded: String,
    },
}

impl fmt::Display for CleaningAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleaningAction::RemovedValue {
                record,
                field,
                value,
                reason,
            } => write!(f, "record {record}: removed {field}={value:?} ({reason})"),
            CleaningAction::MissingRequired { record, field } => {
                write!(f, "record {record}: required field {field} missing")
            }
            CleaningAction::ResolvedContradiction {
                field,
                kept,
                discarded,
            } => write!(f, "kept {field}={kept:?}, discarded {discarded:?}"),
        }
    }
}

/// The cleaning engine.
#[derive(Debug, Clone, Default)]
pub struct Cleaner {
    rules: Vec<CleaningRule>,
    /// Source name → reliability rank (higher = more reliable).
    reliability: HashMap<String, u32>,
}

impl Cleaner {
    /// A cleaner with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn with_rule(mut self, rule: CleaningRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Register a source's reliability rank.
    pub fn with_source_reliability(mut self, source: impl Into<String>, rank: u32) -> Self {
        self.reliability.insert(source.into(), rank);
        self
    }

    /// Apply every rule to every record in place; offending values are
    /// nulled. Returns the actions taken.
    pub fn clean(&self, records: &mut [Node]) -> Vec<CleaningAction> {
        let mut actions = Vec::new();
        for (idx, record) in records.iter_mut().enumerate() {
            for rule in &self.rules {
                match rule {
                    CleaningRule::DomainConstraint { field, domain } => {
                        let v = record.value_at(field);
                        if !v.is_null() && !domain.contains(&v.as_str()) {
                            null_out(record, field);
                            actions.push(CleaningAction::RemovedValue {
                                record: idx,
                                field: field.clone(),
                                value: v.as_str(),
                                reason: format!("not in domain {}", domain.name),
                            });
                        }
                    }
                    CleaningRule::Range { field, min, max } => {
                        let v = record.value_at(field);
                        if let Some(n) = v.as_num() {
                            if n < *min || n > *max {
                                null_out(record, field);
                                actions.push(CleaningAction::RemovedValue {
                                    record: idx,
                                    field: field.clone(),
                                    value: v.as_str(),
                                    reason: format!("outside [{min}, {max}]"),
                                });
                            }
                        }
                    }
                    CleaningRule::Required { field } => {
                        if record.value_at(field).is_null() {
                            actions.push(CleaningAction::MissingRequired {
                                record: idx,
                                field: field.clone(),
                            });
                        }
                    }
                }
            }
        }
        actions
    }

    /// Resolve a contradiction between two values of `field` coming from
    /// two named sources: the more reliable source's value wins; on a
    /// tie, `a` wins. Returns the kept value and the action taken (or
    /// `None` when the values agree).
    pub fn resolve(
        &self,
        field: &str,
        a: (&str, &Value),
        b: (&str, &Value),
    ) -> (Value, Option<CleaningAction>) {
        if a.1 == b.1 {
            return (a.1.clone(), None);
        }
        let rank = |s: &str| self.reliability.get(s).copied().unwrap_or(0);
        let (kept, discarded) = if rank(b.0) > rank(a.0) {
            (b, a)
        } else {
            (a, b)
        };
        (
            kept.1.clone(),
            Some(CleaningAction::ResolvedContradiction {
                field: field.to_owned(),
                kept: kept.1.as_str(),
                discarded: discarded.1.as_str(),
            }),
        )
    }
}

fn null_out(record: &mut Node, field: &str) {
    // Walk the path mutably.
    let mut cur = record;
    let mut segs = field.split('/').filter(|s| !s.is_empty()).peekable();
    while let Some(seg) = segs.next() {
        let Some(child) = cur.children.iter_mut().find(|c| c.name == seg) else {
            return;
        };
        if segs.peek().is_none() {
            child.value = Some(Value::Null);
            return;
        }
        cur = child;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runway(surface: &str, length: f64) -> Node {
        Node::elem("runway")
            .with_leaf("surface", surface)
            .with_leaf("length_ft", length)
    }

    fn cleaner() -> Cleaner {
        Cleaner::new()
            .with_rule(CleaningRule::DomainConstraint {
                field: "surface".into(),
                domain: Domain::new("surface")
                    .with_value("ASP", "Asphalt")
                    .with_value("CON", "Concrete"),
            })
            .with_rule(CleaningRule::Range {
                field: "length_ft".into(),
                min: 500.0,
                max: 20000.0,
            })
            .with_rule(CleaningRule::Required {
                field: "surface".into(),
            })
            .with_source_reliability("faa", 2)
            .with_source_reliability("scraped-web", 1)
    }

    #[test]
    fn domain_violations_are_nulled() {
        let mut records = vec![runway("DIRT", 8000.0), runway("ASP", 8000.0)];
        let actions = cleaner().clean(&mut records);
        assert!(records[0].value_at("surface").is_null());
        assert_eq!(records[1].value_at("surface"), Value::from("ASP"));
        assert!(actions
            .iter()
            .any(|a| matches!(a, CleaningAction::RemovedValue { record: 0, .. })));
        // Nulling the value triggers the Required rule next pass.
        let more = cleaner().clean(&mut records);
        assert!(more
            .iter()
            .any(|a| matches!(a, CleaningAction::MissingRequired { record: 0, .. })));
    }

    #[test]
    fn range_violations_are_nulled() {
        let mut records = vec![runway("ASP", 999999.0), runway("CON", 50.0)];
        let actions = cleaner().clean(&mut records);
        assert!(records[0].value_at("length_ft").is_null());
        assert!(records[1].value_at("length_ft").is_null());
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, CleaningAction::RemovedValue { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn reliability_resolves_contradictions() {
        let c = cleaner();
        let faa = Value::from(12000.0);
        let web = Value::from(11000.0);
        let (kept, action) = c.resolve("length_ft", ("scraped-web", &web), ("faa", &faa));
        assert_eq!(kept, faa);
        assert!(matches!(
            action.unwrap(),
            CleaningAction::ResolvedContradiction { .. }
        ));
        // Agreement needs no action.
        let (kept, action) = c.resolve("length_ft", ("faa", &faa), ("scraped-web", &faa));
        assert_eq!(kept, faa);
        assert!(action.is_none());
        // Unknown sources rank 0; first argument wins ties.
        let (kept, _) = c.resolve("x", ("mystery1", &web), ("mystery2", &faa));
        assert_eq!(kept, web);
    }

    #[test]
    fn nested_paths_null_correctly() {
        let mut records =
            vec![Node::elem("r").with(Node::elem("specs").with_leaf("length_ft", 99.0))];
        let c = Cleaner::new().with_rule(CleaningRule::Range {
            field: "specs/length_ft".into(),
            min: 500.0,
            max: 20000.0,
        });
        c.clean(&mut records);
        assert!(records[0].value_at("specs/length_ft").is_null());
    }

    #[test]
    fn actions_display() {
        let a = CleaningAction::RemovedValue {
            record: 3,
            field: "surface".into(),
            value: "DIRT".into(),
            reason: "not in domain surface".into(),
        };
        assert!(a.to_string().contains("DIRT"));
    }
}
