//! # iwb-instance — instance integration
//!
//! Phase 4 of the task model (§3.4):
//!
//! * [`linkage`] — task 10, "Link instance elements. Two instance
//!   elements (with different unique identifiers) may represent the same
//!   real-world object. This subtask merges these elements into a single
//!   element." Blocking + weighted field similarity + union-find
//!   clustering + merge.
//! * [`clean`] — task 11, "Clean the data. This subtask removes
//!   erroneous values from instance elements. A value may be erroneous
//!   because it violates a domain constraint or because it contradicts
//!   information from a more reliable source."

pub mod clean;
pub mod linkage;

pub use clean::{Cleaner, CleaningAction, CleaningRule};
pub use linkage::{
    link_records, merge_cluster, BlockingKey, CompareMethod, FieldComparator, LinkageConfig,
};
