//! Record linkage (task 10).
//!
//! Classic pipeline: a *blocking key* partitions records so only
//! plausible pairs are compared; weighted field comparators score each
//! pair; pairs above threshold are unioned into clusters; clusters merge
//! into one surviving record.

use iwb_ling::{jaro_winkler, soundex};
use iwb_mapper::{Node, Value};
use std::collections::HashMap;

/// How candidate pairs are restricted before comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockingKey {
    /// Compare every pair (quadratic; small sets only).
    None,
    /// Records sharing the exact value of this field are co-blocked.
    Attribute(String),
    /// Records whose field values share a Soundex code are co-blocked
    /// (catches misspelled names).
    SoundexOf(String),
}

impl BlockingKey {
    fn key_of(&self, record: &Node) -> String {
        match self {
            BlockingKey::None => String::new(),
            BlockingKey::Attribute(f) => record.value_at(f).as_str().to_lowercase(),
            BlockingKey::SoundexOf(f) => soundex(&record.value_at(f).as_str()).unwrap_or_default(),
        }
    }
}

/// Similarity method for one field.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareMethod {
    /// 1.0 on exact (case-insensitive) equality, else 0.
    Exact,
    /// Jaro-Winkler string similarity.
    JaroWinkler,
    /// 1.0 when |a-b| ≤ tolerance, linearly decaying to 0 at 3×
    /// tolerance.
    NumericTolerance(f64),
}

/// A weighted field comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldComparator {
    /// Field (path) compared.
    pub field: String,
    /// Similarity method.
    pub method: CompareMethod,
    /// Relative weight.
    pub weight: f64,
}

impl FieldComparator {
    /// Convenience constructor.
    pub fn new(field: impl Into<String>, method: CompareMethod, weight: f64) -> Self {
        FieldComparator {
            field: field.into(),
            method,
            weight,
        }
    }

    fn similarity(&self, a: &Node, b: &Node) -> Option<f64> {
        let va = a.value_at(&self.field);
        let vb = b.value_at(&self.field);
        if va.is_null() || vb.is_null() {
            return None; // missing data is no evidence either way
        }
        Some(match &self.method {
            CompareMethod::Exact => {
                if va.as_str().eq_ignore_ascii_case(&vb.as_str()) {
                    1.0
                } else {
                    0.0
                }
            }
            CompareMethod::JaroWinkler => {
                jaro_winkler(&va.as_str().to_lowercase(), &vb.as_str().to_lowercase())
            }
            CompareMethod::NumericTolerance(tol) => {
                let (Some(x), Some(y)) = (va.as_num(), vb.as_num()) else {
                    return Some(0.0);
                };
                let d = (x - y).abs();
                if d <= *tol {
                    1.0
                } else if *tol > 0.0 && d < 3.0 * tol {
                    1.0 - (d - tol) / (2.0 * tol)
                } else {
                    0.0
                }
            }
        })
    }
}

/// Linkage configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkageConfig {
    /// Candidate-pair blocking.
    pub blocking: BlockingKey,
    /// Field comparators.
    pub comparators: Vec<FieldComparator>,
    /// Weighted similarity above which a pair links.
    pub threshold: f64,
}

/// Weighted similarity of a record pair in [0, 1]; `None` when no
/// comparator had data on both sides.
pub fn pair_similarity(cfg: &LinkageConfig, a: &Node, b: &Node) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for c in &cfg.comparators {
        if let Some(s) = c.similarity(a, b) {
            num += c.weight * s;
            den += c.weight;
        }
    }
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

/// Cluster records: returns clusters as index lists (singletons
/// included), in first-appearance order.
pub fn link_records(records: &[Node], cfg: &LinkageConfig) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(records.len());
    // Block.
    let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        blocks.entry(cfg.blocking.key_of(r)).or_default().push(i);
    }
    for members in blocks.values() {
        for (pos, &i) in members.iter().enumerate() {
            for &j in &members[pos + 1..] {
                if let Some(sim) = pair_similarity(cfg, &records[i], &records[j]) {
                    if sim >= cfg.threshold {
                        uf.union(i, j);
                    }
                }
            }
        }
    }
    uf.clusters()
}

/// Merge a cluster into a single record (task 10's "merges these
/// elements into a single element"): field-wise, the first non-null
/// value in cluster order wins; fields present in any member survive.
pub fn merge_cluster(records: &[Node], cluster: &[usize]) -> Node {
    let first = &records[cluster[0]];
    let mut merged = Node::elem(first.name.clone());
    let mut seen: Vec<String> = Vec::new();
    for &idx in cluster {
        for child in &records[idx].children {
            if seen.contains(&child.name) {
                continue;
            }
            if child.value.as_ref().map(Value::is_null).unwrap_or(false) {
                continue;
            }
            seen.push(child.name.clone());
            merged.children.push(child.clone());
        }
    }
    merged
}

/// Minimal union-find with path compression.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb.max(ra)] = rb.min(ra);
        }
    }

    fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut order = Vec::new();
        for i in 0..n {
            let r = self.find(i);
            if !by_root.contains_key(&r) {
                order.push(r);
            }
            by_root.entry(r).or_default().push(i);
        }
        order
            .into_iter()
            .map(|r| by_root.remove(&r).unwrap())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person(first: &str, last: &str, dob: &str) -> Node {
        Node::elem("person")
            .with_leaf("first", first)
            .with_leaf("last", last)
            .with_leaf("dob", dob)
    }

    fn cfg() -> LinkageConfig {
        LinkageConfig {
            blocking: BlockingKey::SoundexOf("last".into()),
            comparators: vec![
                FieldComparator::new("first", CompareMethod::JaroWinkler, 1.0),
                FieldComparator::new("last", CompareMethod::JaroWinkler, 1.0),
                FieldComparator::new("dob", CompareMethod::Exact, 2.0),
            ],
            threshold: 0.85,
        }
    }

    #[test]
    fn misspelled_duplicates_link() {
        let records = vec![
            person("Ada", "Lovelace", "1815-12-10"),
            person("Ada", "Lovelase", "1815-12-10"), // typo, same soundex
            person("Alan", "Turing", "1912-06-23"),
        ];
        let clusters = link_records(&records, &cfg());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1]);
        assert_eq!(clusters[1], vec![2]);
    }

    #[test]
    fn blocking_prevents_cross_block_comparison() {
        // Same person, but the blocking key (last name sound) differs —
        // they cannot link; this is the classic blocking trade-off.
        let records = vec![
            person("Ada", "Lovelace", "1815-12-10"),
            person("Ada", "Byron", "1815-12-10"),
        ];
        let clusters = link_records(&records, &cfg());
        assert_eq!(clusters.len(), 2);
        // The classic blocking trade-off: without blocking, the shared
        // first name and birth date push the pair over threshold — the
        // block key is what kept them apart.
        let mut no_block = cfg();
        no_block.blocking = BlockingKey::None;
        let sim = pair_similarity(&no_block, &records[0], &records[1]).unwrap();
        assert!(sim >= no_block.threshold);
        assert_eq!(link_records(&records, &no_block).len(), 1);
    }

    #[test]
    fn numeric_tolerance_comparator() {
        let c = FieldComparator::new("elev", CompareMethod::NumericTolerance(10.0), 1.0);
        let a = Node::elem("r").with_leaf("elev", 100.0);
        let b = Node::elem("r").with_leaf("elev", 105.0);
        assert_eq!(c.similarity(&a, &b), Some(1.0));
        let far = Node::elem("r").with_leaf("elev", 125.0);
        let s = c.similarity(&a, &far).unwrap();
        assert!(s > 0.0 && s < 1.0);
        let very_far = Node::elem("r").with_leaf("elev", 200.0);
        assert_eq!(c.similarity(&a, &very_far), Some(0.0));
    }

    #[test]
    fn missing_fields_are_no_evidence() {
        let c = cfg();
        let a = person("Ada", "Lovelace", "1815-12-10");
        let b = Node::elem("person").with_leaf("last", "Lovelace");
        // dob/first missing on b: only last name contributes.
        let sim = pair_similarity(&c, &a, &b).unwrap();
        assert!(sim > 0.9);
        let empty = Node::elem("person");
        assert_eq!(pair_similarity(&c, &a, &empty), None);
    }

    #[test]
    fn merge_prefers_first_non_null_and_unions_fields() {
        let records = vec![
            Node::elem("person")
                .with_leaf("first", "Ada")
                .with_leaf("dob", Value::Null),
            Node::elem("person")
                .with_leaf("first", "A.")
                .with_leaf("dob", "1815-12-10")
                .with_leaf("title", "Countess"),
        ];
        let merged = merge_cluster(&records, &[0, 1]);
        assert_eq!(merged.value_at("first"), Value::from("Ada"));
        assert_eq!(merged.value_at("dob"), Value::from("1815-12-10"));
        assert_eq!(merged.value_at("title"), Value::from("Countess"));
    }

    #[test]
    fn transitive_linking_through_union_find() {
        // A~B and B~C ⇒ {A,B,C} even if A~C alone is below threshold.
        let records = vec![
            person("Katherine", "Johnson", "1918-08-26"),
            person("Katherine", "Johnson", "1918-08-26"),
            person("Katherin", "Johnson", "1918-08-26"),
        ];
        let clusters = link_records(&records, &cfg());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }
}
