//! Property-based tests for record linkage.

use iwb_instance::{
    link_records, merge_cluster, BlockingKey, CompareMethod, FieldComparator, LinkageConfig,
};
use iwb_mapper::Node;
use proptest::prelude::*;

fn records(names: &[String]) -> Vec<Node> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Node::elem("r")
                .with_leaf("name", n.clone())
                .with_leaf("idx", i as f64)
        })
        .collect()
}

fn config(threshold: f64, blocking: BlockingKey) -> LinkageConfig {
    LinkageConfig {
        blocking,
        comparators: vec![FieldComparator::new(
            "name",
            CompareMethod::JaroWinkler,
            1.0,
        )],
        threshold,
    }
}

proptest! {
    /// Clustering is a partition: every index appears in exactly one
    /// cluster.
    #[test]
    fn clusters_partition_records(names in prop::collection::vec("[a-z]{1,10}", 0..30), th in 0.5f64..1.0) {
        let recs = records(&names);
        let clusters = link_records(&recs, &config(th, BlockingKey::None));
        let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..recs.len()).collect();
        prop_assert_eq!(seen, expected);
    }

    /// At threshold 1.0+ε behaviour: identical names always co-cluster
    /// regardless of blocking by that field.
    #[test]
    fn identical_records_always_link(name in "[a-z]{2,10}", copies in 2usize..6) {
        let names: Vec<String> = (0..copies).map(|_| name.clone()).collect();
        for blocking in [BlockingKey::None, BlockingKey::Attribute("name".into()), BlockingKey::SoundexOf("name".into())] {
            let recs = records(&names);
            let clusters = link_records(&recs, &config(0.99, blocking));
            prop_assert_eq!(clusters.len(), 1);
        }
    }

    /// Raising the threshold never produces fewer clusters (linking is
    /// monotone in the threshold).
    #[test]
    fn threshold_monotonicity(names in prop::collection::vec("[a-z]{1,8}", 1..20)) {
        let recs = records(&names);
        let loose = link_records(&recs, &config(0.7, BlockingKey::None)).len();
        let strict = link_records(&recs, &config(0.95, BlockingKey::None)).len();
        prop_assert!(strict >= loose);
    }

    /// Blocking can only split clusters relative to no blocking, never
    /// merge records that full comparison kept apart.
    #[test]
    fn blocking_never_merges_more(names in prop::collection::vec("[a-z]{1,8}", 1..20)) {
        let recs = records(&names);
        let unblocked = link_records(&recs, &config(0.85, BlockingKey::None)).len();
        let blocked = link_records(&recs, &config(0.85, BlockingKey::SoundexOf("name".into()))).len();
        prop_assert!(blocked >= unblocked);
    }

    /// Merged records keep one value per field and the first record's
    /// shape.
    #[test]
    fn merge_keeps_first_values(names in prop::collection::vec("[a-z]{1,8}", 1..10)) {
        let recs = records(&names);
        let cluster: Vec<usize> = (0..recs.len()).collect();
        let merged = merge_cluster(&recs, &cluster);
        prop_assert_eq!(merged.value_at("name"), recs[0].value_at("name"));
        prop_assert_eq!(merged.children_named("name").count(), 1);
    }
}
