//! String edit distances used by the name match voter.

/// Levenshtein distance between two strings (unit costs), computed over
/// Unicode scalar values with a two-row dynamic program.
///
/// ```
/// use iwb_ling::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein similarity normalised to [0, 1]: `1 - dist / max_len`.
/// Two empty strings are fully similar.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in [0, 1].
fn jaro(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::with_capacity(a.len());
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push((i, j));
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: half the number of positions where the matched
    // characters, taken in order from each string, disagree.
    let b_matched: Vec<char> = (0..b.len()).filter(|&j| b_used[j]).map(|j| b[j]).collect();
    let a_matched_chars: Vec<char> = a_matched.iter().map(|&(i, _)| a[i]).collect();
    let t = a_matched_chars
        .iter()
        .zip(b_matched.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity in [0, 1]: Jaro boosted by up to 4 characters
/// of common prefix (scaling factor 0.1). Good at matching abbreviated
/// schema names (`addr` vs `address`).
///
/// ```
/// use iwb_ling::jaro_winkler;
/// assert!(jaro_winkler("address", "addr") > 0.9);
/// assert!(jaro_winkler("runway", "weather") < 0.6);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let j = jaro(&av, &bv);
    let prefix = av
        .iter()
        .zip(bv.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(
            levenshtein("shipTo", "shippingInfo"),
            levenshtein("shippingInfo", "shipTo")
        );
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("a", "a"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("subtotal", "total");
        assert!(v > 0.5 && v < 1.0);
    }

    #[test]
    fn jaro_winkler_identity_and_disjoint() {
        assert!((jaro_winkler("martha", "martha") - 1.0).abs() < 1e-12);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_reference_values() {
        // Classic reference pair from Winkler's papers.
        let v = jaro_winkler("martha", "marhta");
        assert!((v - 0.9611).abs() < 0.001, "got {v}");
        let v = jaro_winkler("dixon", "dicksonx");
        assert!((v - 0.8133).abs() < 0.005, "got {v}");
    }

    #[test]
    fn prefix_boost_helps_abbreviations() {
        assert!(jaro_winkler("addr", "address") > jaro_winkler("drad", "address"));
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(levenshtein("naïve", "naive"), 1);
        assert!(jaro_winkler("café", "cafe") > 0.8);
    }
}
