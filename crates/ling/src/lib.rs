//! # iwb-ling — linguistic processing substrate
//!
//! The Harmony match engine "begins with linguistic preprocessing (e.g.,
//! tokenization, stop-word removal, and stemming) of element names and any
//! associated documentation" (paper §4). This crate provides that whole
//! layer, built from scratch:
//!
//! * [`tokenize`] — identifier splitting (camelCase, snake_case, digits)
//!   and prose tokenisation;
//! * [`stopwords`] — a standard English stop list;
//! * [`stem`] — a full Porter stemmer;
//! * [`editdist`] — Levenshtein and Jaro-Winkler string distances;
//! * [`ngram`] — character n-gram profiles and Dice overlap;
//! * [`soundex`] — phonetic codes for name matching;
//! * [`tfidf`] — corpus statistics, weighted bag-of-words vectors, cosine
//!   similarity (the documentation matcher's engine; §4.3's "bag-of-words
//!   matcher that weights each word based on inverted frequency");
//! * [`thesaurus`] — synonym rings and abbreviation expansion (the
//!   matcher that "expands the elements' names using a thesaurus");
//! * [`pipeline`] — the composed preprocess step used by voters;
//! * [`vocab_stats`] — documentation counting used to regenerate Table 1.

pub mod editdist;
pub mod ngram;
pub mod pipeline;
pub mod soundex;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod thesaurus;
pub mod tokenize;
pub mod vocab_stats;

pub use editdist::{jaro_winkler, levenshtein, normalized_levenshtein};
pub use ngram::{dice_coefficient, dice_profiles, ngrams, NgramProfile};
pub use pipeline::{preprocess, Preprocessed};
pub use soundex::soundex;
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tfidf::{cosine, Corpus, TermVector};
pub use thesaurus::Thesaurus;
pub use tokenize::{split_identifier, tokenize_prose};
pub use vocab_stats::{DocStats, DocStatsRow};
