//! Character n-gram profiles and Dice overlap.
//!
//! N-gram similarity is robust to concatenated identifiers
//! (`lastname` vs `last_name`) where token-level comparison fails.

use std::collections::HashMap;

/// The multiset of character `n`-grams of `s`, with counts.
///
/// Strings shorter than `n` contribute themselves as a single gram, so
/// very short names still compare non-trivially.
pub fn ngrams(s: &str, n: usize) -> HashMap<String, usize> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> = s.chars().collect();
    let mut out = HashMap::new();
    if chars.is_empty() {
        return out;
    }
    if chars.len() < n {
        *out.entry(s.to_owned()).or_insert(0) += 1;
        return out;
    }
    for w in chars.windows(n) {
        *out.entry(w.iter().collect::<String>()).or_insert(0) += 1;
    }
    out
}

/// A precomputed n-gram multiset with its total gram count, so repeated
/// Dice comparisons against the same string skip re-extraction (the
/// match engine caches one profile per element name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NgramProfile {
    grams: HashMap<String, usize>,
    total: usize,
}

impl NgramProfile {
    /// Profile of `s` under `n`-grams.
    pub fn new(s: &str, n: usize) -> Self {
        let grams = ngrams(s, n);
        let total = grams.values().sum();
        NgramProfile { grams, total }
    }

    /// Total gram count (with multiplicity).
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Dice coefficient between two precomputed profiles. Identical to
/// [`dice_coefficient`] on the originating strings: a zero gram total on
/// both sides only happens for two empty strings, which compare equal.
pub fn dice_profiles(a: &NgramProfile, b: &NgramProfile) -> f64 {
    let total = a.total + b.total;
    if total == 0 {
        return 1.0;
    }
    let overlap: usize = a
        .grams
        .iter()
        .map(|(g, &ca)| ca.min(b.grams.get(g).copied().unwrap_or(0)))
        .sum();
    2.0 * overlap as f64 / total as f64
}

/// Dice coefficient over character `n`-gram multisets, in [0, 1].
///
/// `2·|A ∩ B| / (|A| + |B|)` with multiset intersection.
///
/// ```
/// use iwb_ling::dice_coefficient;
/// assert!(dice_coefficient("lastname", "last_name", 2) > 0.6);
/// assert_eq!(dice_coefficient("abc", "abc", 2), 1.0);
/// ```
pub fn dice_coefficient(a: &str, b: &str, n: usize) -> f64 {
    let (pa, pb) = (NgramProfile::new(a, n), NgramProfile::new(b, n));
    if pa.total + pb.total == 0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    dice_profiles(&pa, &pb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigram_extraction() {
        let g = ngrams("abab", 2);
        assert_eq!(g.get("ab"), Some(&2));
        assert_eq!(g.get("ba"), Some(&1));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn short_strings_become_single_gram() {
        let g = ngrams("a", 3);
        assert_eq!(g.get("a"), Some(&1));
    }

    #[test]
    fn empty_string_has_no_grams() {
        assert!(ngrams("", 2).is_empty());
    }

    #[test]
    fn dice_bounds_and_identity() {
        assert_eq!(dice_coefficient("abc", "abc", 2), 1.0);
        assert_eq!(dice_coefficient("abc", "xyz", 2), 0.0);
        assert_eq!(dice_coefficient("", "", 2), 1.0);
        assert_eq!(dice_coefficient("", "abc", 2), 0.0);
    }

    #[test]
    fn dice_symmetry() {
        let a = dice_coefficient("firstname", "first_name", 2);
        let b = dice_coefficient("first_name", "firstname", 2);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn concatenation_robustness() {
        assert!(dice_coefficient("lastname", "lastName".to_lowercase().as_str(), 2) > 0.9);
        assert!(dice_coefficient("subtotal", "total", 2) > dice_coefficient("subtotal", "name", 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gram_size_panics() {
        ngrams("abc", 0);
    }
}
