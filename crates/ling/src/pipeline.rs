//! The composed linguistic preprocessing pipeline.
//!
//! §4: the engine "begins with linguistic preprocessing (e.g.,
//! tokenization, stop-word removal, and stemming) of element names and
//! any associated documentation". [`preprocess`] performs all three and
//! returns both the raw and processed token streams, since different
//! voters want different granularities (the thesaurus voter needs
//! unstemmed tokens, the bag-of-words voter wants stems).

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::tokenize::{split_identifier, tokenize_prose};

/// Output of linguistic preprocessing for one text fragment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Preprocessed {
    /// Lowercased tokens, stop words removed, unstemmed.
    pub tokens: Vec<String>,
    /// Porter-stemmed tokens, stop words removed.
    pub stems: Vec<String>,
}

impl Preprocessed {
    /// True if nothing survived preprocessing.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Preprocess an element name (identifier conventions) or `None`.
pub fn preprocess_name(name: &str) -> Preprocessed {
    finish(split_identifier(name))
}

/// Preprocess prose documentation.
pub fn preprocess_doc(doc: &str) -> Preprocessed {
    finish(tokenize_prose(doc))
}

/// Preprocess a name and optional documentation into one combined stream
/// (name tokens first).
pub fn preprocess(name: &str, doc: Option<&str>) -> Preprocessed {
    let mut tokens = split_identifier(name);
    if let Some(d) = doc {
        tokens.extend(tokenize_prose(d));
    }
    finish(tokens)
}

fn finish(raw: Vec<String>) -> Preprocessed {
    let tokens: Vec<String> = raw.into_iter().filter(|t| !is_stopword(t)).collect();
    let stems = tokens.iter().map(|t| porter_stem(t)).collect();
    Preprocessed { tokens, stems }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_pipeline_splits_and_stems() {
        let p = preprocess_name("shippingAddresses");
        assert_eq!(p.tokens, ["shipping", "addresses"]);
        assert_eq!(p.stems, ["ship", "address"]);
    }

    #[test]
    fn doc_pipeline_removes_stopwords() {
        let p = preprocess_doc("The unique identifier of the airport.");
        assert_eq!(p.tokens, ["unique", "identifier", "airport"]);
        assert_eq!(p.stems, ["uniqu", "identifi", "airport"]);
    }

    #[test]
    fn combined_keeps_name_tokens_first() {
        let p = preprocess("acftType", Some("Kind of aircraft."));
        assert_eq!(p.tokens, ["acft", "type", "kind", "aircraft"]);
    }

    #[test]
    fn all_stopword_input_is_empty() {
        let p = preprocess_doc("of the and");
        assert!(p.is_empty());
        assert!(p.stems.is_empty());
    }

    #[test]
    fn stems_align_with_tokens() {
        let p = preprocess("ordersShipped", None);
        assert_eq!(p.tokens.len(), p.stems.len());
    }
}
