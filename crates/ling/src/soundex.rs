//! American Soundex phonetic codes.
//!
//! Used by the name voter as a weak-evidence signal for names that sound
//! alike but are spelled differently (`Smith`/`Smyth` in personnel
//! schemata).

/// The Soundex digit for a letter, or `None` for vowels and h/w/y.
fn digit(c: u8) -> Option<u8> {
    match c.to_ascii_lowercase() {
        b'b' | b'f' | b'p' | b'v' => Some(b'1'),
        b'c' | b'g' | b'j' | b'k' | b'q' | b's' | b'x' | b'z' => Some(b'2'),
        b'd' | b't' => Some(b'3'),
        b'l' => Some(b'4'),
        b'm' | b'n' => Some(b'5'),
        b'r' => Some(b'6'),
        _ => None,
    }
}

/// The 4-character Soundex code of `word`, or `None` if the word has no
/// ASCII-alphabetic leading character.
///
/// Classic rules: keep the first letter; encode following consonants;
/// collapse adjacent duplicates; `h`/`w` are transparent between
/// same-coded consonants; vowels break runs; pad with zeros.
///
/// ```
/// use iwb_ling::soundex;
/// assert_eq!(soundex("Robert").as_deref(), Some("R163"));
/// assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
/// assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
/// ```
pub fn soundex(word: &str) -> Option<String> {
    let bytes: Vec<u8> = word.bytes().filter(|b| b.is_ascii_alphabetic()).collect();
    let &first = bytes.first()?;
    let mut code = String::new();
    code.push(first.to_ascii_uppercase() as char);
    let mut last_digit = digit(first);
    for &b in &bytes[1..] {
        let d = digit(b);
        match d {
            Some(d) => {
                if Some(d) != last_digit {
                    code.push(d as char);
                    if code.len() == 4 {
                        break;
                    }
                }
                last_digit = Some(d);
            }
            None => {
                // h and w are transparent; vowels reset the run.
                if !matches!(b.to_ascii_lowercase(), b'h' | b'w') {
                    last_digit = None;
                }
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// True if two words share a Soundex code.
pub fn sounds_like(a: &str, b: &str) -> bool {
    match (soundex(a), soundex(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_codes() {
        let cases = [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"), // h transparent between s and c
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"), // vowel separates cz
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
            ("Jackson", "J250"),
        ];
        for (word, expected) in cases {
            assert_eq!(soundex(word).as_deref(), Some(expected), "{word}");
        }
    }

    #[test]
    fn short_words_padded() {
        assert_eq!(soundex("a").as_deref(), Some("A000"));
        assert_eq!(soundex("at").as_deref(), Some("A300"));
    }

    #[test]
    fn non_alpha_filtered_and_empty_rejected() {
        assert_eq!(soundex("O'Brien").as_deref(), Some("O165"));
        assert!(soundex("123").is_none());
        assert!(soundex("").is_none());
    }

    #[test]
    fn sounds_like_pairs() {
        assert!(sounds_like("Smith", "Smyth"));
        assert!(!sounds_like("Smith", "Jones"));
        assert!(!sounds_like("", "Jones"));
    }
}
