//! The Porter stemming algorithm (Porter, 1980), implemented in full.
//!
//! Stemming folds morphological variants together so that, e.g., a
//! definition saying "identifies the shipping destination" matches an
//! element named `shipTo` ("ship"). The implementation follows the
//! original paper's five steps over the measure/condition framework.

/// True if byte `i` of `w` is a consonant in Porter's sense:
/// not a vowel, and `y` is a consonant only when preceded by a vowel... more
/// precisely, `y` is a consonant when at position 0 or preceded by a vowel.
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure m of the first `len` bytes of `w`: the number of VC
/// sequences in `[C](VC)^m[V]`. Length semantics keep the empty stem
/// (len 0) well-defined with m = 0.
fn measure(w: &[u8], len: usize) -> usize {
    let mut n = 0;
    let mut i = 0;
    // Skip the optional initial consonant run.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Vowel run.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return n;
        }
        // Consonant run following vowels completes one VC.
        n += 1;
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return n;
        }
    }
}

/// True if the first `len` bytes of `w` contain a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// True if `w[..=j]` ends in a double consonant.
fn double_consonant(w: &[u8], j: usize) -> bool {
    j >= 1 && w[j] == w[j - 1] && is_consonant(w, j)
}

/// True if `w[..=j]` ends consonant-vowel-consonant where the final
/// consonant is not w, x or y (the *o* condition).
fn cvc(w: &[u8], j: usize) -> bool {
    if j < 2 || !is_consonant(w, j) || is_consonant(w, j - 1) || !is_consonant(w, j - 2) {
        return false;
    }
    !matches!(w[j], b'w' | b'x' | b'y')
}

struct Stemmer {
    w: Vec<u8>,
    /// Index of the last character of the current stem.
    k: usize,
}

impl Stemmer {
    fn ends(&self, suffix: &[u8]) -> bool {
        let n = suffix.len();
        n <= self.k + 1 && &self.w[self.k + 1 - n..=self.k] == suffix
    }

    /// Length of the stem if the word ends with `suffix` (0 when the
    /// whole word is the suffix — the case the conditions below all
    /// treat as "do not transform").
    fn stem_len(&self, suffix: &[u8]) -> usize {
        self.k + 1 - suffix.len()
    }

    fn set_to_len(&mut self, stem_len: usize, replacement: &[u8]) {
        self.w.truncate(stem_len);
        self.w.extend_from_slice(replacement);
        debug_assert!(!self.w.is_empty(), "stemmer never produces an empty word");
        self.k = self.w.len() - 1;
    }

    /// If the word ends with `suffix` and m(stem) > `min_m`, replace the
    /// suffix. Returns true if the suffix matched (even without replace).
    fn replace_if_m(&mut self, suffix: &[u8], replacement: &[u8], min_m: usize) -> bool {
        if self.ends(suffix) {
            let len = self.stem_len(suffix);
            if measure(&self.w, len) > min_m {
                self.set_to_len(len, replacement);
            }
            true
        } else {
            false
        }
    }

    /// Step 1a: plurals.
    fn step1a(&mut self) {
        if self.ends(b"sses") {
            self.k -= 2;
        } else if self.ends(b"ies") {
            self.set_to_len(self.stem_len(b"ies"), b"i");
        } else if !self.ends(b"ss") && self.ends(b"s") {
            self.k -= 1;
        }
        self.w.truncate(self.k + 1);
    }

    /// Step 1b: -ed / -ing.
    fn step1b(&mut self) {
        let mut second = false;
        if self.ends(b"eed") {
            let len = self.stem_len(b"eed");
            if measure(&self.w, len) > 0 {
                self.k -= 1;
                self.w.truncate(self.k + 1);
            }
        } else if self.ends(b"ed") {
            let len = self.stem_len(b"ed");
            if has_vowel(&self.w, len) {
                self.set_to_len(len, b"");
                second = true;
            }
        } else if self.ends(b"ing") {
            let len = self.stem_len(b"ing");
            if has_vowel(&self.w, len) {
                self.set_to_len(len, b"");
                second = true;
            }
        }
        if second {
            if self.ends(b"at") || self.ends(b"bl") || self.ends(b"iz") {
                let len = self.k + 1;
                self.set_to_len(len, b"e");
            } else if double_consonant(&self.w, self.k)
                && !matches!(self.w[self.k], b'l' | b's' | b'z')
            {
                self.k -= 1;
                self.w.truncate(self.k + 1);
            } else if measure(&self.w, self.k + 1) == 1 && cvc(&self.w, self.k) {
                let len = self.k + 1;
                self.set_to_len(len, b"e");
            }
        }
    }

    /// Step 1c: terminal y → i when there is another vowel in the stem.
    fn step1c(&mut self) {
        if self.ends(b"y") && has_vowel(&self.w, self.k) {
            self.w[self.k] = b'i';
        }
    }

    /// Step 2: double-suffix reductions (m > 0).
    fn step2(&mut self) {
        let rules: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"abli", b"able"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
        ];
        for (suffix, replacement) in rules {
            if self.replace_if_m(suffix, replacement, 0) {
                return;
            }
        }
    }

    /// Step 3: -ic-, -full, -ness etc. (m > 0).
    fn step3(&mut self) {
        let rules: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for (suffix, replacement) in rules {
            if self.replace_if_m(suffix, replacement, 0) {
                return;
            }
        }
    }

    /// Step 4: strip remaining suffixes when m > 1.
    fn step4(&mut self) {
        let rules: &[&[u8]] = &[
            b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
            b"ent", b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
        ];
        for suffix in rules {
            if self.ends(suffix) {
                let len = self.stem_len(suffix);
                if measure(&self.w, len) > 1 {
                    self.set_to_len(len, b"");
                }
                return;
            }
        }
        // Special case: -ion only strips after s or t.
        if self.ends(b"ion") {
            let len = self.stem_len(b"ion");
            if measure(&self.w, len) > 1 && matches!(self.w[len - 1], b's' | b't') {
                self.set_to_len(len, b"");
            }
        }
    }

    /// Step 5a/5b: remove final e and reduce double l.
    fn step5(&mut self) {
        if self.ends(b"e") {
            let len = self.k; // stem before the final e
            let m = measure(&self.w, len);
            if m > 1 || (m == 1 && !cvc(&self.w, len - 1)) {
                self.k -= 1;
                self.w.truncate(self.k + 1);
            }
        }
        if self.w[self.k] == b'l'
            && double_consonant(&self.w, self.k)
            && measure(&self.w, self.k + 1) > 1
        {
            self.k -= 1;
            self.w.truncate(self.k + 1);
        }
    }
}

/// Stem a lowercase ASCII word with the Porter algorithm.
///
/// Words of length ≤ 2 and words containing non-ASCII-alphabetic
/// characters are returned unchanged (matching Porter's guidance).
///
/// ```
/// use iwb_ling::porter_stem;
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("shipping"), "ship");
/// assert_eq!(porter_stem("identifies"), "identifi");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_owned();
    }
    let mut s = Stemmer {
        w: word.as_bytes().to_vec(),
        k: word.len() - 1,
    };
    s.step1a();
    if s.k >= 1 {
        s.step1b();
    }
    if s.k >= 1 {
        s.step1c();
        s.step2();
        s.step3();
        s.step4();
        s.step5();
    }
    s.w.truncate(s.k + 1);
    String::from_utf8(s.w).expect("ascii in, ascii out")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's paper and the canonical test set.
    #[test]
    fn canonical_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn schema_vocabulary() {
        assert_eq!(porter_stem("shipping"), "ship");
        assert_eq!(porter_stem("shipped"), "ship");
        assert_eq!(porter_stem("ships"), "ship");
        assert_eq!(porter_stem("identifies"), "identifi");
        assert_eq!(porter_stem("identifier"), "identifi");
        assert_eq!(porter_stem("identification"), "identif");
    }

    #[test]
    fn short_and_non_ascii_unchanged() {
        assert_eq!(porter_stem("ab"), "ab");
        assert_eq!(porter_stem("y"), "y");
        assert_eq!(porter_stem("naïve"), "naïve");
        assert_eq!(porter_stem("B747"), "B747");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["ship", "airport", "runway", "code", "order", "total"] {
            let once = porter_stem(w);
            assert_eq!(porter_stem(&once), once, "{w}");
        }
    }
}
