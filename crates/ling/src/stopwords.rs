//! English stop-word list used during linguistic preprocessing.
//!
//! Schema definitions are short (Table 1: ~11–16 words), so the list is
//! deliberately conservative: function words only, never domain nouns.

/// Alphabetically ordered stop list (binary-searchable).
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "am", "an", "and", "any", "are", "as",
    "at", "be", "because", "been", "before", "being", "below", "between", "both", "but", "by",
    "can", "could", "did", "do", "does", "doing", "down", "during", "each", "etc", "few", "for",
    "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his",
    "how", "i", "if", "in", "into", "is", "it", "its", "itself", "just", "may", "me", "might",
    "more", "most", "must", "my", "no", "nor", "not", "of", "off", "on", "once", "only", "or",
    "other", "our", "ours", "out", "over", "own", "same", "shall", "she", "should", "so", "some",
    "such", "than", "that", "the", "their", "theirs", "them", "then", "there", "these", "they",
    "this", "those", "through", "to", "too", "under", "until", "up", "upon", "very", "was", "we",
    "were", "what", "when", "where", "which", "while", "who", "whom", "why", "will", "with",
    "would", "you", "your", "yours",
];

/// True if `word` (lowercase) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Remove stop words from a token stream, preserving order.
pub fn remove_stopwords(tokens: Vec<String>) -> Vec<String> {
    tokens.into_iter().filter(|t| !is_stopword(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn function_words_are_stopped() {
        for w in ["the", "of", "and", "which", "a"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn domain_nouns_are_kept() {
        for w in ["aircraft", "runway", "subtotal", "name", "code"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn removal_preserves_order() {
        let toks = ["the", "unique", "identifier", "of", "the", "airport"]
            .map(String::from)
            .to_vec();
        assert_eq!(remove_stopwords(toks), ["unique", "identifier", "airport"]);
    }
}
