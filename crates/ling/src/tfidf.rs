//! TF-IDF weighted bag-of-words vectors and cosine similarity.
//!
//! The documentation match voter compares "the words appearing in the
//! elements' definitions" (§4); §4.3 describes it as "a bag-of-words
//! matcher that weights each word based on inverted frequency" whose word
//! weights can be adjusted by user feedback. [`Corpus`] holds the document
//! frequencies plus a learned per-term weight multiplier to support
//! exactly that adjustment.

use std::collections::{BTreeMap, HashMap};

/// A sparse term-weight vector.
///
/// Weights live in a `BTreeMap` so every float reduction over the
/// vector (norm, cosine dot product) runs in term order. `HashMap`
/// iteration order differs per map instance, and f64 addition is not
/// associative — with a hash map, two vectors built from the same
/// tokens could produce cosines differing in the last bits, breaking
/// the match engine's bit-identical determinism contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TermVector {
    weights: BTreeMap<String, f64>,
}

impl TermVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The weight of `term` (0 if absent).
    pub fn weight(&self, term: &str) -> f64 {
        self.weights.get(term).copied().unwrap_or(0.0)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if no terms have weight.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterate `(term, weight)` pairs in term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.weights.iter().map(|(t, &w)| (t.as_str(), w))
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.weights.values().map(|w| w * w).sum::<f64>().sqrt()
    }
}

impl<S: Into<String>> FromIterator<(S, f64)> for TermVector {
    fn from_iter<T: IntoIterator<Item = (S, f64)>>(iter: T) -> Self {
        TermVector {
            weights: iter.into_iter().map(|(t, w)| (t.into(), w)).collect(),
        }
    }
}

/// Cosine similarity of two term vectors, in [0, 1] for non-negative
/// weights. Zero if either vector is empty.
pub fn cosine(a: &TermVector, b: &TermVector) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small.iter().map(|(t, w)| w * large.weight(t)).sum();
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// A document corpus with document frequencies and learned term weights.
///
/// Build by [`Corpus::add_document`]-ing every element's token stream,
/// then [`Corpus::vector`] turns a token stream into a TF-IDF vector.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    doc_count: usize,
    doc_freq: HashMap<String, usize>,
    /// Learned multiplier per term, adjusted by user feedback (§4.3);
    /// defaults to 1.
    term_boost: HashMap<String, f64>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents added.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Register one document's tokens (duplicates within the document
    /// count once toward document frequency).
    pub fn add_document<'a>(&mut self, tokens: impl IntoIterator<Item = &'a str>) {
        self.doc_count += 1;
        let mut seen = std::collections::HashSet::new();
        for t in tokens {
            if seen.insert(t) {
                *self.doc_freq.entry(t.to_owned()).or_insert(0) += 1;
            }
        }
    }

    /// Smoothed inverse document frequency: `ln((1 + N) / (1 + df)) + 1`,
    /// which is always ≥ 1 (so unseen terms in an empty corpus still get
    /// weight) and maximal for terms never seen in the corpus.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        ((1.0 + self.doc_count as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// The learned boost multiplier of a term (default 1).
    pub fn boost(&self, term: &str) -> f64 {
        self.term_boost.get(term).copied().unwrap_or(1.0)
    }

    /// Multiply a term's boost, clamped to [0.1, 10]. The feedback loop
    /// calls this with >1 factors for predictive words and <1 for
    /// misleading ones.
    pub fn adjust_boost(&mut self, term: &str, factor: f64) {
        let b = self.term_boost.entry(term.to_owned()).or_insert(1.0);
        *b = (*b * factor).clamp(0.1, 10.0);
    }

    /// Build the TF-IDF vector of a token stream: term frequency ×
    /// smoothed IDF × learned boost.
    pub fn vector<'a>(&self, tokens: impl IntoIterator<Item = &'a str>) -> TermVector {
        let mut tf: HashMap<&str, usize> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        tf.into_iter()
            .map(|(t, f)| (t.to_owned(), f as f64 * self.idf(t) * self.boost(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_document(["unique", "identifier", "airport"]);
        c.add_document(["name", "airport", "facility"]);
        c.add_document(["surface", "runway", "airport"]);
        c
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let c = corpus();
        assert!(c.idf("runway") > c.idf("airport"));
        assert!(c.idf("neverseen") > c.idf("runway"));
    }

    #[test]
    fn vector_counts_term_frequency() {
        let c = corpus();
        let v = c.vector(["runway", "runway", "airport"]);
        assert!(v.weight("runway") > v.weight("airport"));
        assert_eq!(v.weight("absent"), 0.0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn cosine_identity_and_disjoint() {
        let c = corpus();
        let v1 = c.vector(["runway", "surface"]);
        let v2 = c.vector(["runway", "surface"]);
        let v3 = c.vector(["name", "facility"]);
        assert!((cosine(&v1, &v2) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&v1, &v3), 0.0);
        assert_eq!(cosine(&v1, &TermVector::new()), 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let c = corpus();
        let v1 = c.vector(["runway", "surface", "airport"]);
        let v2 = c.vector(["runway", "airport", "name"]);
        let s = cosine(&v1, &v2);
        assert!((cosine(&v2, &v1) - s).abs() < 1e-12);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn boost_changes_vector_weights() {
        let mut c = corpus();
        let before = c.vector(["runway"]).weight("runway");
        c.adjust_boost("runway", 2.0);
        let after = c.vector(["runway"]).weight("runway");
        assert!((after / before - 2.0).abs() < 1e-12);
    }

    #[test]
    fn boost_clamped() {
        let mut c = corpus();
        for _ in 0..100 {
            c.adjust_boost("x", 10.0);
        }
        assert!((c.boost("x") - 10.0).abs() < 1e-12);
        for _ in 0..100 {
            c.adjust_boost("x", 0.01);
        }
        assert!((c.boost("x") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_still_vectorises() {
        let c = Corpus::new();
        let v = c.vector(["a", "b"]);
        assert_eq!(v.len(), 2);
        assert!(v.weight("a") > 0.0);
    }
}
