//! Synonym rings and abbreviation expansion.
//!
//! One Harmony matcher "expands the elements' names using a thesaurus"
//! (§4). WordNet is not shipped here; instead the thesaurus is a
//! user-extensible structure pre-seeded with synonym rings and
//! abbreviations for the domains the paper's examples draw on (air
//! traffic management, procurement/shipping, personnel).

use std::collections::HashMap;

/// A thesaurus of synonym rings plus an abbreviation table.
///
/// Words in a ring are mutually synonymous; abbreviations expand to a
/// canonical long form which can itself sit in a ring.
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// word → ring index
    ring_of: HashMap<String, usize>,
    /// ring index → members
    rings: Vec<Vec<String>>,
    /// abbreviation → expansion
    abbreviations: HashMap<String, String>,
}

impl Thesaurus {
    /// An empty thesaurus.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in thesaurus used by Harmony's thesaurus voter: synonym
    /// rings and abbreviations covering the paper's example domains.
    pub fn builtin() -> Self {
        let mut t = Thesaurus::new();
        for ring in [
            &["ship", "send", "dispatch", "deliver"][..],
            &["buy", "purchase", "procure", "acquire"],
            &["order", "requisition"],
            &["person", "individual", "party"],
            &["employee", "worker", "staff"],
            &["student", "pupil"],
            &["professor", "instructor", "teacher", "faculty"],
            &["customer", "client", "buyer"],
            &["vendor", "supplier", "seller", "merchant"],
            &["name", "designation", "label", "title"],
            &["first", "given", "fore"],
            &["last", "family", "surname"],
            &["middle", "mid"],
            &["identifier", "id", "key", "code"],
            &["address", "location", "place"],
            &["city", "town", "municipality"],
            &["state", "province", "region"],
            &["zip", "postcode", "postal"],
            &["country", "nation"],
            &["phone", "telephone"],
            &["price", "cost", "amount", "charge"],
            &["total", "sum", "aggregate"],
            &["tax", "levy", "duty"],
            &["date", "day"],
            &["time", "hour"],
            &["begin", "start", "commence"],
            &["end", "finish", "terminate", "stop"],
            &["aircraft", "airplane", "plane", "airframe"],
            &["airport", "airfield", "aerodrome"],
            &["runway", "airstrip", "strip"],
            &["flight", "sortie"],
            &["route", "path", "airway", "course"],
            &["weather", "meteorology"],
            &["facility", "installation", "site"],
            &["carrier", "airline", "operator"],
            &["depart", "leave", "origin"],
            &["arrive", "destination", "land"],
            &["salary", "pay", "wage", "compensation"],
            &["birth", "born"],
            &["type", "kind", "category", "class"],
            &["status", "condition"],
            &["description", "definition", "comment", "remark", "note"],
            &["quantity", "count", "number"],
            &["unit", "measure"],
            &["weight", "mass"],
            &["invoice", "bill", "statement"],
            &["item", "article", "product", "goods"],
            &["grade", "mark", "score"],
            &["course", "class"],
            &["department", "division", "branch", "unit"],
        ] {
            t.add_ring(ring.iter().copied());
        }
        for (abbr, full) in [
            ("acft", "aircraft"),
            ("arpt", "airport"),
            ("rwy", "runway"),
            ("flt", "flight"),
            ("wx", "weather"),
            ("fac", "facility"),
            ("cd", "code"),
            ("id", "identifier"),
            ("num", "number"),
            ("nbr", "number"),
            ("no", "number"),
            ("qty", "quantity"),
            ("amt", "amount"),
            ("addr", "address"),
            ("st", "street"),
            ("ctry", "country"),
            ("tel", "telephone"),
            ("dob", "birth"),
            ("ssn", "social"),
            ("dept", "department"),
            ("div", "division"),
            ("emp", "employee"),
            ("cust", "customer"),
            ("vend", "vendor"),
            ("ord", "order"),
            ("purch", "purchase"),
            ("inv", "invoice"),
            ("desc", "description"),
            ("defn", "definition"),
            ("dt", "date"),
            ("tm", "time"),
            ("loc", "location"),
            ("org", "organization"),
            ("prof", "professor"),
            ("stud", "student"),
            ("sal", "salary"),
            ("avg", "average"),
            ("min", "minimum"),
            ("max", "maximum"),
            ("fname", "first"),
            ("lname", "last"),
            ("mi", "middle"),
        ] {
            t.add_abbreviation(abbr, full);
        }
        t
    }

    /// Add a synonym ring. Words already in a ring are merged into the
    /// new ring's identity (union semantics).
    pub fn add_ring<'a>(&mut self, words: impl IntoIterator<Item = &'a str>) {
        let idx = self.rings.len();
        let mut members = Vec::new();
        let mut merged_into: Option<usize> = None;
        for w in words {
            let w = w.to_lowercase();
            if let Some(&existing) = self.ring_of.get(&w) {
                merged_into = Some(merged_into.map_or(existing, |m| m.min(existing)));
            }
            members.push(w);
        }
        let target = merged_into.unwrap_or(idx);
        if target == idx {
            self.rings.push(Vec::new());
        }
        for w in members {
            if self.ring_of.insert(w.clone(), target).is_none() {
                self.rings[target].push(w);
            }
        }
    }

    /// Register an abbreviation → expansion pair.
    pub fn add_abbreviation(&mut self, abbr: impl Into<String>, full: impl Into<String>) {
        self.abbreviations
            .insert(abbr.into().to_lowercase(), full.into().to_lowercase());
    }

    /// Expand `word` if it is a known abbreviation, else return it as-is.
    pub fn expand<'a>(&'a self, word: &'a str) -> &'a str {
        self.abbreviations
            .get(word)
            .map(String::as_str)
            .unwrap_or(word)
    }

    /// True if the two words are synonymous: equal after abbreviation
    /// expansion, or members of the same ring.
    pub fn synonymous(&self, a: &str, b: &str) -> bool {
        let a = self.expand(a);
        let b = self.expand(b);
        if a == b {
            return true;
        }
        match (self.ring_of.get(a), self.ring_of.get(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All synonyms of `word` (after abbreviation expansion), including
    /// the expanded word itself.
    pub fn synonyms<'a>(&'a self, word: &'a str) -> Vec<&'a str> {
        let w = self.expand(word);
        match self.ring_of.get(w) {
            Some(&idx) => self.rings[idx].iter().map(String::as_str).collect(),
            None => vec![w],
        }
    }

    /// Number of synonym rings.
    pub fn ring_count(&self) -> usize {
        self.rings.iter().filter(|r| !r.is_empty()).count()
    }

    /// Jaccard-style overlap between two token sets under synonymy: the
    /// fraction of tokens in the smaller set that have a synonymous
    /// counterpart in the other. Returns 0 for empty inputs.
    pub fn token_overlap(&self, a: &[String], b: &[String]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let hits = small
            .iter()
            .filter(|x| large.iter().any(|y| self.synonymous(x, y)))
            .count();
        hits as f64 / small.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_make_members_synonymous() {
        let t = Thesaurus::builtin();
        assert!(t.synonymous("ship", "deliver"));
        assert!(t.synonymous("vendor", "supplier"));
        assert!(!t.synonymous("vendor", "customer"));
    }

    #[test]
    fn abbreviations_expand_before_ring_lookup() {
        let t = Thesaurus::builtin();
        assert_eq!(t.expand("acft"), "aircraft");
        assert!(t.synonymous("acft", "airplane"));
        assert!(t.synonymous("rwy", "airstrip"));
        assert!(t.synonymous("id", "key"));
    }

    #[test]
    fn unknown_words_only_match_themselves() {
        let t = Thesaurus::builtin();
        assert!(t.synonymous("zorp", "zorp"));
        assert!(!t.synonymous("zorp", "blap"));
        assert_eq!(t.synonyms("zorp"), vec!["zorp"]);
    }

    #[test]
    fn synonyms_lists_whole_ring() {
        let t = Thesaurus::builtin();
        let syns = t.synonyms("arpt");
        assert!(syns.contains(&"airport"));
        assert!(syns.contains(&"aerodrome"));
    }

    #[test]
    fn ring_union_on_overlap() {
        let mut t = Thesaurus::new();
        t.add_ring(["a", "b"]);
        t.add_ring(["b", "c"]);
        assert!(t.synonymous("a", "c"));
        assert_eq!(t.ring_count(), 1);
    }

    #[test]
    fn token_overlap_fractional() {
        let t = Thesaurus::builtin();
        let a = vec!["ship".to_owned(), "to".to_owned()];
        let b = vec!["shipping".to_owned(), "info".to_owned()];
        // "ship" vs "shipping": not synonymous without stemming, so 0.5
        // would require stemming upstream; here only exact/ring matches.
        let overlap = t.token_overlap(&a, &b);
        assert!((0.0..=1.0).contains(&overlap));
        let c = vec!["dispatch".to_owned(), "info".to_owned()];
        assert!(t.token_overlap(&a, &c) >= 0.5);
        assert_eq!(t.token_overlap(&[], &a), 0.0);
    }

    #[test]
    fn builtin_is_nontrivial() {
        let t = Thesaurus::builtin();
        assert!(t.ring_count() > 30);
    }
}
