//! Tokenisation of schema identifiers and prose documentation.
//!
//! Schema element names mix conventions — `shipTo`, `ACFT_TYPE_CD`,
//! `shipping-info`, `Address2`. [`split_identifier`] breaks all of them
//! into lowercase word tokens; [`tokenize_prose`] handles definition text.

/// Split a schema identifier into lowercase word tokens.
///
/// Handles camelCase (`shipTo` → `ship to`), PascalCase with acronym runs
/// (`XMLSchema` → `xml schema`), snake_case, kebab-case, spaces/dots, and
/// digit boundaries (`Address2` → `address 2`).
///
/// ```
/// use iwb_ling::split_identifier;
/// assert_eq!(split_identifier("shipTo"), vec!["ship", "to"]);
/// assert_eq!(split_identifier("ACFT_TYPE_CD"), vec!["acft", "type", "cd"]);
/// assert_eq!(split_identifier("XMLSchemaURI"), vec!["xml", "schema", "uri"]);
/// ```
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = ident.chars().collect();

    let flush = |current: &mut String, tokens: &mut Vec<String>| {
        if !current.is_empty() {
            tokens.push(std::mem::take(current).to_lowercase());
        }
    };

    for i in 0..chars.len() {
        let c = chars[i];
        if !c.is_alphanumeric() {
            flush(&mut current, &mut tokens);
            continue;
        }
        let prev = i.checked_sub(1).map(|j| chars[j]);
        let next = chars.get(i + 1).copied();
        let boundary = match prev {
            None => false,
            Some(p) => {
                // lower → Upper: shipTo
                (p.is_lowercase() && c.is_uppercase())
                    // letter ↔ digit: Address2, 2ndLine
                    || (p.is_alphabetic() && c.is_numeric())
                    || (p.is_numeric() && c.is_alphabetic())
                    // Acronym run end: "XMLSchema" → boundary before 'S' of "Schema"
                    || (p.is_uppercase()
                        && c.is_uppercase()
                        && next.map(|n| n.is_lowercase()).unwrap_or(false))
            }
        };
        if boundary {
            flush(&mut current, &mut tokens);
        }
        current.push(c);
    }
    flush(&mut current, &mut tokens);
    tokens
}

/// Tokenise prose documentation into lowercase word tokens.
///
/// Splits on any non-alphanumeric character and lowercases; purely
/// numeric tokens are kept (coding schemes often use numeric codes).
pub fn tokenize_prose(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(str::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_case() {
        assert_eq!(split_identifier("firstName"), ["first", "name"]);
        assert_eq!(split_identifier("shippingInfo"), ["shipping", "info"]);
    }

    #[test]
    fn pascal_and_acronym_runs() {
        assert_eq!(split_identifier("XMLSchema"), ["xml", "schema"]);
        assert_eq!(
            split_identifier("ParseXMLSchema"),
            ["parse", "xml", "schema"]
        );
        assert_eq!(split_identifier("URI"), ["uri"]);
    }

    #[test]
    fn snake_kebab_and_spaces() {
        assert_eq!(split_identifier("ACFT_TYPE_CD"), ["acft", "type", "cd"]);
        assert_eq!(split_identifier("shipping-info"), ["shipping", "info"]);
        assert_eq!(split_identifier("ship to"), ["ship", "to"]);
        assert_eq!(split_identifier("a.b.c"), ["a", "b", "c"]);
    }

    #[test]
    fn digit_boundaries() {
        assert_eq!(split_identifier("Address2"), ["address", "2"]);
        assert_eq!(split_identifier("line2Text"), ["line", "2", "text"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(split_identifier("").is_empty());
        assert!(split_identifier("___").is_empty());
    }

    #[test]
    fn prose_tokenisation() {
        let t = tokenize_prose("The pre-tax sum, in U.S. dollars (USD).");
        assert_eq!(
            t,
            ["the", "pre", "tax", "sum", "in", "u", "s", "dollars", "usd"]
        );
    }

    #[test]
    fn prose_keeps_numbers() {
        assert_eq!(
            tokenize_prose("code 42 means B747"),
            ["code", "42", "means", "b747"]
        );
    }
}
