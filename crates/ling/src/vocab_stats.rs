//! Documentation statistics — the machinery behind the paper's Table 1.
//!
//! Table 1 reports, per item kind (Element, Attribute, Domain): the item
//! count, how many have a definition, the percentage, the total word
//! count, words per item, and words per definition. [`DocStats`]
//! accumulates those quantities from any stream of (kind, definition)
//! observations.

use std::collections::BTreeMap;
use std::fmt;

/// One accumulated row of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DocStatsRow {
    /// Total number of items of this kind.
    pub item_count: u64,
    /// Items that carry a definition.
    pub with_definition: u64,
    /// Total words across all definitions.
    pub word_count: u64,
}

impl DocStatsRow {
    /// Percentage of items that carry a definition (0 if no items).
    pub fn pct_with_definition(&self) -> f64 {
        if self.item_count == 0 {
            0.0
        } else {
            100.0 * self.with_definition as f64 / self.item_count as f64
        }
    }

    /// Mean words per item (definition-less items count as zero words).
    pub fn words_per_item(&self) -> f64 {
        if self.item_count == 0 {
            0.0
        } else {
            self.word_count as f64 / self.item_count as f64
        }
    }

    /// Mean words per definition (over documented items only).
    pub fn words_per_definition(&self) -> f64 {
        if self.with_definition == 0 {
            0.0
        } else {
            self.word_count as f64 / self.with_definition as f64
        }
    }
}

/// Accumulator of documentation statistics, keyed by item kind label.
#[derive(Debug, Clone, Default)]
pub struct DocStats {
    rows: BTreeMap<String, DocStatsRow>,
    /// Fixed row order for rendering (kinds observed first print first
    /// unless an explicit order is installed).
    order: Vec<String>,
}

impl DocStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// An accumulator with a preset row order (Table 1 uses
    /// Element, Attribute, Domain).
    pub fn with_order(kinds: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let order: Vec<String> = kinds.into_iter().map(Into::into).collect();
        let rows = order
            .iter()
            .map(|k| (k.clone(), DocStatsRow::default()))
            .collect();
        DocStats { rows, order }
    }

    /// Record one item of `kind` with an optional definition.
    pub fn record(&mut self, kind: &str, definition: Option<&str>) {
        if !self.rows.contains_key(kind) {
            self.order.push(kind.to_owned());
        }
        let row = self.rows.entry(kind.to_owned()).or_default();
        row.item_count += 1;
        if let Some(d) = definition {
            let words = d.split_whitespace().count() as u64;
            if words > 0 {
                row.with_definition += 1;
                row.word_count += words;
            }
        }
    }

    /// The accumulated row for a kind.
    pub fn row(&self, kind: &str) -> Option<&DocStatsRow> {
        self.rows.get(kind)
    }

    /// Rows in presentation order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &DocStatsRow)> {
        self.order
            .iter()
            .filter_map(|k| self.rows.get(k).map(|r| (k.as_str(), r)))
    }

    /// Render in the layout of the paper's Table 1.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>11} {:>13} {:>11} {:>12} {:>11} {:>13}",
            "Item",
            "Item Count",
            "# With Defn",
            "% With Defn",
            "Word Count",
            "Words/Item",
            "Words/Defn"
        );
        for (kind, r) in self.rows() {
            let _ = writeln!(
                out,
                "{:<10} {:>11} {:>13} {:>10.0}% {:>12} {:>11.2} {:>13.2}",
                kind,
                r.item_count,
                r.with_definition,
                r.pct_with_definition(),
                r.word_count,
                r.words_per_item(),
                r.words_per_definition()
            );
        }
        out
    }
}

use std::fmt::Write;

impl fmt::Display for DocStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_words() {
        let mut s = DocStats::new();
        s.record("Element", Some("An airport facility."));
        s.record("Element", None);
        s.record("Attribute", Some("one two three four"));
        let e = s.row("Element").unwrap();
        assert_eq!(e.item_count, 2);
        assert_eq!(e.with_definition, 1);
        assert_eq!(e.word_count, 3);
        assert_eq!(e.pct_with_definition(), 50.0);
        assert_eq!(e.words_per_item(), 1.5);
        assert_eq!(e.words_per_definition(), 3.0);
        assert_eq!(s.row("Attribute").unwrap().word_count, 4);
    }

    #[test]
    fn empty_definition_counts_as_undocumented() {
        let mut s = DocStats::new();
        s.record("Domain", Some("   "));
        let r = s.row("Domain").unwrap();
        assert_eq!(r.with_definition, 0);
    }

    #[test]
    fn zero_division_guards() {
        let r = DocStatsRow::default();
        assert_eq!(r.pct_with_definition(), 0.0);
        assert_eq!(r.words_per_item(), 0.0);
        assert_eq!(r.words_per_definition(), 0.0);
    }

    #[test]
    fn preset_order_is_respected() {
        let mut s = DocStats::with_order(["Element", "Attribute", "Domain"]);
        s.record("Domain", Some("x"));
        s.record("Element", Some("y"));
        let kinds: Vec<&str> = s.rows().map(|(k, _)| k).collect();
        assert_eq!(kinds, ["Element", "Attribute", "Domain"]);
    }

    #[test]
    fn table_renders_all_rows() {
        let mut s = DocStats::with_order(["Element", "Attribute", "Domain"]);
        for _ in 0..10 {
            s.record("Element", Some("air traffic control element definition"));
            s.record("Attribute", Some("an attribute"));
            s.record("Domain", None);
        }
        let t = s.render_table();
        assert!(t.contains("Element"));
        assert!(t.contains("Domain"));
        assert!(t.lines().count() >= 4);
    }
}
