//! Property-based tests for the linguistic substrate.

use iwb_ling::{
    dice_coefficient, jaro_winkler, levenshtein, normalized_levenshtein, porter_stem, soundex,
    split_identifier, Corpus,
};
use proptest::prelude::*;

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Levenshtein is bounded by the longer string's length.
    #[test]
    fn levenshtein_bounds(a in "[a-z]{0,16}", b in "[a-z]{0,16}") {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        let n = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    /// Jaro-Winkler is symmetric, bounded, and 1 on identity.
    #[test]
    fn jaro_winkler_properties(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let s = jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s), "s={}", s);
        prop_assert!((jaro_winkler(&b, &a) - s).abs() < 1e-12);
        prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12 || a.is_empty());
    }

    /// Dice coefficient is symmetric and bounded; 1 on identity.
    #[test]
    fn dice_properties(a in "[a-z]{0,12}", b in "[a-z]{0,12}", n in 1usize..4) {
        let s = dice_coefficient(&a, &b, n);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        prop_assert!((dice_coefficient(&b, &a, n) - s).abs() < 1e-12);
        prop_assert!((dice_coefficient(&a, &a, n) - 1.0).abs() < 1e-12);
    }

    /// Stemming never grows a word, never empties it, and repeated
    /// application reaches a fixpoint quickly. (Porter is not strictly
    /// idempotent — e.g. "oase" → "oas" → "oa" — but chains terminate.)
    #[test]
    fn stemming_shrinks_and_reaches_fixpoint(w in "[a-z]{1,16}") {
        let once = porter_stem(&w);
        prop_assert!(once.len() <= w.len());
        prop_assert!(!once.is_empty());
        let mut cur = once;
        let mut converged = false;
        for _ in 0..6 {
            let next = porter_stem(&cur);
            prop_assert!(next.len() <= cur.len());
            if next == cur {
                converged = true;
                break;
            }
            cur = next;
        }
        prop_assert!(converged, "no fixpoint for {}", w);
    }

    /// Identifier splitting produces lowercase alphanumeric tokens that
    /// jointly preserve every alphanumeric character of the input.
    #[test]
    fn split_identifier_preserves_chars(w in "[A-Za-z0-9_\\- ]{0,24}") {
        let tokens = split_identifier(&w);
        for t in &tokens {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(t.to_lowercase(), t.clone());
        }
        let rejoined: String = tokens.concat();
        let expected: String = w.to_lowercase().chars().filter(|c| c.is_alphanumeric()).collect();
        prop_assert_eq!(rejoined, expected);
    }

    /// Soundex always yields a 4-character code starting with a letter.
    #[test]
    fn soundex_shape(w in "[A-Za-z]{1,16}") {
        let code = soundex(&w).unwrap();
        prop_assert_eq!(code.len(), 4);
        let bytes = code.as_bytes();
        prop_assert!(bytes[0].is_ascii_uppercase());
        prop_assert!(bytes[1..].iter().all(|b| (b'0'..=b'6').contains(b)));
    }

    /// IDF is monotonically non-increasing in document frequency, and
    /// cosine stays within [0, 1].
    #[test]
    fn corpus_idf_monotone(df_a in 0usize..20, df_b in 0usize..20) {
        let mut corpus = Corpus::new();
        for i in 0..20usize {
            let mut doc: Vec<&str> = vec!["filler"];
            if i < df_a { doc.push("alpha"); }
            if i < df_b { doc.push("beta"); }
            corpus.add_document(doc);
        }
        if df_a <= df_b {
            prop_assert!(corpus.idf("alpha") >= corpus.idf("beta"));
        }
        let v1 = corpus.vector(["alpha", "beta"]);
        let v2 = corpus.vector(["alpha", "filler"]);
        let c = iwb_ling::cosine(&v1, &v2);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }
}
