//! Data-dictionary enrichment.
//!
//! Task 1 includes importing "ancillary information such as definitions
//! from a data dictionary" (§5.2.1), and §3.1 notes that "one may enrich
//! the schemata … documenting constraints that are not documented in the
//! actual system". A dictionary is a sidecar text file of
//! `path = definition` lines; definitions are attached to the matching
//! elements' `documentation` annotation.

use crate::error::LoadError;
use iwb_model::SchemaGraph;

/// Result of applying a dictionary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DictionaryReport {
    /// Entries that matched an element and were applied.
    pub applied: usize,
    /// Entries whose path did not resolve.
    pub unresolved: usize,
    /// Entries that overwrote existing documentation.
    pub overwritten: usize,
}

/// Parse `path = definition` lines and attach definitions to `graph`.
///
/// * Lines starting with `#` and blank lines are skipped.
/// * Paths are slash-separated from the schema root
///   (`flights/AIRPORT/ident`); a path may also omit the root segment.
/// * By default existing documentation is kept; pass `overwrite` to
///   replace it.
pub fn apply_dictionary(
    graph: &mut SchemaGraph,
    dictionary: &str,
    overwrite: bool,
) -> Result<DictionaryReport, LoadError> {
    let mut report = DictionaryReport::default();
    for (lineno, raw) in dictionary.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (path, definition) = line.split_once('=').ok_or_else(|| {
            LoadError::at("dictionary", lineno + 1, "expected 'path = definition'")
        })?;
        let path = path.trim();
        let definition = definition.trim();
        if definition.is_empty() {
            return Err(LoadError::at("dictionary", lineno + 1, "empty definition"));
        }
        let root_name = graph.element(graph.root()).name.clone();
        let full = if path.starts_with(&format!("{root_name}/")) || path == root_name {
            path.to_owned()
        } else {
            format!("{root_name}/{path}")
        };
        match graph.find_by_path(&full) {
            Some(id) => {
                let el = graph.element_mut(id);
                if el.documentation.is_some() {
                    if overwrite {
                        report.overwritten += 1;
                        el.documentation = Some(definition.to_owned());
                        report.applied += 1;
                    }
                } else {
                    el.documentation = Some(definition.to_owned());
                    report.applied += 1;
                }
            }
            None => report.unresolved += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{DataType, Metamodel, SchemaBuilder};

    fn graph() -> SchemaGraph {
        SchemaBuilder::new("db", Metamodel::Relational)
            .open("AIRPORT")
            .attr("IDENT", DataType::VarChar(4))
            .attr_doc("NAME", DataType::Text, "existing doc")
            .close()
            .build()
    }

    #[test]
    fn definitions_attach_by_path() {
        let mut g = graph();
        let report = apply_dictionary(
            &mut g,
            "# dictionary\nAIRPORT/IDENT = The ICAO identifier.\ndb/AIRPORT = An airport.\n",
            false,
        )
        .unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.unresolved, 0);
        let ident = g.find_by_path("db/AIRPORT/IDENT").unwrap();
        assert_eq!(
            g.element(ident).documentation.as_deref(),
            Some("The ICAO identifier.")
        );
    }

    #[test]
    fn existing_docs_kept_unless_overwrite() {
        let mut g = graph();
        let report = apply_dictionary(&mut g, "AIRPORT/NAME = new definition", false).unwrap();
        assert_eq!(report.applied, 0);
        let name = g.find_by_path("db/AIRPORT/NAME").unwrap();
        assert_eq!(
            g.element(name).documentation.as_deref(),
            Some("existing doc")
        );

        let report = apply_dictionary(&mut g, "AIRPORT/NAME = new definition", true).unwrap();
        assert_eq!(report.overwritten, 1);
        assert_eq!(
            g.element(name).documentation.as_deref(),
            Some("new definition")
        );
    }

    #[test]
    fn unresolved_paths_counted_not_fatal() {
        let mut g = graph();
        let report = apply_dictionary(&mut g, "NOPE/MISSING = x", false).unwrap();
        assert_eq!(report.unresolved, 1);
    }

    #[test]
    fn malformed_lines_are_errors() {
        let mut g = graph();
        let err = apply_dictionary(&mut g, "no equals sign here", false).unwrap_err();
        assert_eq!(err.line, 1);
    }
}
