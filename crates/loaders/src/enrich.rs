//! Schema enrichment: inferring semantic domains from data samples.
//!
//! §2: "The standard approach is to store each coding scheme in its own
//! relation, and each code as a string or integer value, sans
//! documentation. … A better solution would be to define semantic
//! domains for each coding scheme so that integration tools could more
//! easily identify domain correspondences." And §3.1: "one may enrich
//! the schemata, e.g., by defining coding schemes as domains".
//!
//! When sample values *are* available (they sometimes are, §2 merely
//! warns they often are not), [`infer_domains`] detects low-cardinality
//! code-like columns and attaches inferred [`Domain`]s, upgrading their
//! data type to [`DataType::Coded`] so the domain match voter can use
//! them.

use iwb_model::{DataType, Domain, EdgeKind, ElementId, ElementKind, SchemaGraph};
use std::collections::BTreeSet;

/// Controls for domain inference.
#[derive(Debug, Clone, Copy)]
pub struct InferenceConfig {
    /// Maximum number of distinct values for a column to count as a
    /// coding scheme.
    pub max_cardinality: usize,
    /// Minimum number of observations before inferring anything.
    pub min_samples: usize,
    /// Maximum length of a value that still looks like a code.
    pub max_code_length: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            max_cardinality: 24,
            min_samples: 8,
            max_code_length: 8,
        }
    }
}

/// One inferred domain, before attachment.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredDomain {
    /// The attribute the domain was inferred for.
    pub attribute: ElementId,
    /// The inferred coding scheme (undocumented values — documentation
    /// is exactly what was lost, per §2).
    pub domain: Domain,
}

/// Inspect per-attribute value samples and propose domains. `samples`
/// pairs attribute ids with their observed values.
pub fn infer_domains(
    graph: &SchemaGraph,
    samples: &[(ElementId, Vec<String>)],
    config: &InferenceConfig,
) -> Vec<InferredDomain> {
    let mut out = Vec::new();
    for (attr, values) in samples {
        if graph.element(*attr).kind != ElementKind::Attribute {
            continue;
        }
        if values.len() < config.min_samples {
            continue;
        }
        let distinct: BTreeSet<&String> = values.iter().collect();
        if distinct.len() > config.max_cardinality || distinct.len() < 2 {
            continue;
        }
        if !distinct.iter().all(|v| looks_like_code(v, config)) {
            continue;
        }
        let mut domain = Domain::new(format!(
            "{}-inferred",
            graph.element(*attr).name.to_lowercase()
        ));
        domain.documentation = Some(format!(
            "Coding scheme inferred from {} observations of {}.",
            values.len(),
            graph.name_path(*attr)
        ));
        for v in distinct {
            domain.values.push(iwb_model::DomainValue::bare(v.clone()));
        }
        out.push(InferredDomain {
            attribute: *attr,
            domain,
        });
    }
    out
}

/// Attach inferred domains to the schema: the domain node is added
/// under the root, the attribute gains a `has-domain` edge and its type
/// becomes `coded(...)`. Returns how many were attached.
pub fn attach_inferred(graph: &mut SchemaGraph, inferred: &[InferredDomain]) -> usize {
    let mut attached = 0;
    for inf in inferred {
        // Skip attributes that already reference a domain.
        if graph
            .cross_edges_from(inf.attribute)
            .any(|e| e.kind == EdgeKind::HasDomain)
        {
            continue;
        }
        let dom = inf.domain.attach(graph);
        graph.add_cross_edge(inf.attribute, EdgeKind::HasDomain, dom);
        graph.element_mut(inf.attribute).data_type = Some(DataType::Coded(inf.domain.name.clone()));
        attached += 1;
    }
    attached
}

/// A value "looks like a code" when it is short and has no interior
/// whitespace (ASP, CON, B747, 01, ACTIVE).
fn looks_like_code(v: &str, config: &InferenceConfig) -> bool {
    !v.is_empty() && v.len() <= config.max_code_length && !v.chars().any(char::is_whitespace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwb_model::{Metamodel, SchemaBuilder};

    fn schema() -> SchemaGraph {
        SchemaBuilder::new("db", Metamodel::Relational)
            .open("RUNWAY")
            .attr("SFC_CD", DataType::VarChar(3))
            .attr("REMARKS", DataType::Text)
            .attr("LEN_FT", DataType::Integer)
            .close()
            .build()
    }

    fn samples(g: &SchemaGraph) -> Vec<(ElementId, Vec<String>)> {
        let sfc = g.find_by_name("SFC_CD").unwrap();
        let remarks = g.find_by_name("REMARKS").unwrap();
        let len = g.find_by_name("LEN_FT").unwrap();
        vec![
            (
                sfc,
                [
                    "ASP", "CON", "ASP", "GRS", "ASP", "CON", "ASP", "GRS", "CON",
                ]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            ),
            (
                remarks,
                (0..10)
                    .map(|i| format!("free text remark number {i} with spaces"))
                    .collect(),
            ),
            (
                len,
                (0..10).map(|i| format!("{}", 5000 + i * 137)).collect(),
            ),
        ]
    }

    #[test]
    fn code_columns_are_detected_and_prose_is_not() {
        let g = schema();
        let inferred = infer_domains(&g, &samples(&g), &InferenceConfig::default());
        assert_eq!(inferred.len(), 2, "SFC_CD and LEN_FT qualify by shape");
        let sfc = g.find_by_name("SFC_CD").unwrap();
        let d = inferred.iter().find(|i| i.attribute == sfc).unwrap();
        assert_eq!(d.domain.values.len(), 3);
        assert!(d.domain.contains("ASP"));
    }

    #[test]
    fn attach_upgrades_type_and_links_domain() {
        let mut g = schema();
        let inferred = infer_domains(&g, &samples(&g), &InferenceConfig::default());
        let n = attach_inferred(&mut g, &inferred);
        assert_eq!(n, 2);
        let sfc = g.find_by_name("SFC_CD").unwrap();
        assert!(matches!(g.element(sfc).data_type, Some(DataType::Coded(_))));
        assert!(g
            .cross_edges_from(sfc)
            .any(|e| e.kind == EdgeKind::HasDomain));
        assert!(iwb_model::validate(&g).is_empty());
        // Re-attachment is idempotent.
        assert_eq!(attach_inferred(&mut g, &inferred), 0);
    }

    #[test]
    fn thresholds_guard_against_noise() {
        let g = schema();
        let sfc = g.find_by_name("SFC_CD").unwrap();
        // Too few samples.
        let few = vec![(sfc, vec!["ASP".to_string(), "CON".to_string()])];
        assert!(infer_domains(&g, &few, &InferenceConfig::default()).is_empty());
        // Single constant value is a default, not a scheme.
        let constant = vec![(sfc, vec!["ASP".to_string(); 20])];
        assert!(infer_domains(&g, &constant, &InferenceConfig::default()).is_empty());
        // Too many distinct values → not a coding scheme.
        let unique: Vec<String> = (0..100).map(|i| format!("V{i}")).collect();
        let high_card = vec![(sfc, unique)];
        assert!(infer_domains(&g, &high_card, &InferenceConfig::default()).is_empty());
    }

    #[test]
    fn inferred_domains_improve_matching() {
        // Two schemata with cryptic attribute names but the same codes:
        // without inference the names disagree; with inference the
        // domain voter finds them.
        use iwb_harmony::HarmonyEngine;
        use std::collections::HashMap;
        let build = |id: &str, attr: &str| {
            SchemaBuilder::new(id, Metamodel::Relational)
                .open("T")
                .attr(attr, DataType::VarChar(3))
                .close()
                .build()
        };
        let mut s = build("a", "X1");
        let mut t = build("b", "Z9");
        let sx = s.find_by_name("X1").unwrap();
        let tz = t.find_by_name("Z9").unwrap();
        // Baseline: cryptic names, no domain evidence.
        let before = HarmonyEngine::default()
            .run(&s, &t, &HashMap::new())
            .matrix
            .get(sx, tz)
            .value();
        let codes: Vec<String> = ["ASP", "CON", "GRS", "ASP", "CON", "ASP", "GRS", "CON"]
            .iter()
            .map(|x| (*x).to_string())
            .collect();
        let inf_s = infer_domains(&s, &[(sx, codes.clone())], &InferenceConfig::default());
        let inf_t = infer_domains(&t, &[(tz, codes)], &InferenceConfig::default());
        attach_inferred(&mut s, &inf_s);
        attach_inferred(&mut t, &inf_t);
        let after = HarmonyEngine::default()
            .run(&s, &t, &HashMap::new())
            .matrix
            .get(sx, tz)
            .value();
        assert!(
            after > before + 0.3,
            "inferred domains must lift the cryptic pair: {before} → {after}"
        );
    }
}
