//! Loader for an ERWin-like textual entity-relationship format.
//!
//! Harmony imports "entity-relationship schemata from ERWin, a popular
//! modeling tool" (§4). ERWin's native file format is proprietary; this
//! loader defines an equivalent textual form carrying the same
//! information — entities, attributes with types and keys,
//! relationships, and first-class semantic domains with documented
//! values (the representation §2 advocates for coding schemes):
//!
//! ```text
//! model flights "Flight tracking conceptual model."
//!
//! domain runway-type "Runway surface coding scheme." {
//!   ASP "Asphalt surface"
//!   CON "Concrete surface"
//! }
//!
//! entity AIRPORT "An airport facility." {
//!   ident : text key "The ICAO identifier."
//!   name  : text "Official airport name."
//! }
//!
//! entity RUNWAY "A runway at an airport." {
//!   number  : text key "Runway designator."
//!   surface : coded domain runway-type "Surface classification."
//! }
//!
//! relationship HAS_RUNWAY connects AIRPORT, RUNWAY "An airport has runways."
//! ```

use crate::error::LoadError;
use crate::loader::SchemaLoader;
use iwb_model::{
    DataType, Domain, EdgeKind, ElementId, ElementKind, Metamodel, SchemaElement, SchemaGraph,
};
use std::collections::HashMap;

/// Loader for the textual ER format.
#[derive(Debug, Default, Clone, Copy)]
pub struct ErLoader;

impl SchemaLoader for ErLoader {
    fn format(&self) -> &'static str {
        "er"
    }

    fn load(&self, text: &str, schema_id: &str) -> Result<SchemaGraph, LoadError> {
        let tokens = lex(text)?;
        let mut p = ErParser { tokens, pos: 0 };
        let mut graph = SchemaGraph::new(schema_id, Metamodel::EntityRelationship);
        let mut domains: HashMap<String, ElementId> = HashMap::new();
        let mut entities: HashMap<String, ElementId> = HashMap::new();
        let mut pending_connects: Vec<(ElementId, String)> = Vec::new();

        while !p.done() {
            if p.eat_word("model") {
                let _name = p.word()?;
                if let Some(doc) = p.maybe_string() {
                    let root = graph.root();
                    graph.element_mut(root).documentation = Some(doc);
                }
            } else if p.eat_word("domain") {
                let name = p.word()?;
                let mut domain = Domain::new(name.clone());
                domain.documentation = p.maybe_string();
                p.expect_sym('{')?;
                while !p.eat_sym('}') {
                    let code = p.word()?;
                    match p.maybe_string() {
                        Some(meaning) => domain = domain.with_value(code, meaning),
                        None => domain.values.push(iwb_model::DomainValue::bare(code)),
                    }
                }
                let id = domain.attach(&mut graph);
                domains.insert(name, id);
            } else if p.eat_word("entity") {
                let name = p.word()?;
                let mut node = SchemaElement::new(ElementKind::Entity, name.clone());
                node.documentation = p.maybe_string();
                let entity = graph.add_child(graph.root(), EdgeKind::ContainsEntity, node);
                entities.insert(name.clone(), entity);
                p.expect_sym('{')?;
                let mut key_attrs: Vec<ElementId> = Vec::new();
                while !p.eat_sym('}') {
                    let attr_name = p.word()?;
                    p.expect_sym(':')?;
                    let type_word = p.word()?;
                    let mut is_key = false;
                    let mut domain_ref: Option<String> = None;
                    let mut data_type = parse_type(&type_word);
                    loop {
                        if p.eat_word("key") {
                            is_key = true;
                        } else if p.eat_word("domain") {
                            let d = p.word()?;
                            data_type = DataType::Coded(d.clone());
                            domain_ref = Some(d);
                        } else {
                            break;
                        }
                    }
                    let mut attr =
                        SchemaElement::new(ElementKind::Attribute, attr_name).with_type(data_type);
                    attr.documentation = p.maybe_string();
                    let attr_id = graph.add_child(entity, EdgeKind::ContainsAttribute, attr);
                    if is_key {
                        key_attrs.push(attr_id);
                    }
                    if let Some(d) = domain_ref {
                        let dom = domains.get(&d).copied().ok_or_else(|| {
                            LoadError::new("er", format!("attribute references unknown domain {d}"))
                        })?;
                        graph.add_cross_edge(attr_id, EdgeKind::HasDomain, dom);
                    }
                }
                if !key_attrs.is_empty() {
                    let key = graph.add_child(
                        entity,
                        EdgeKind::ContainsKey,
                        SchemaElement::new(ElementKind::Key, format!("pk_{name}")),
                    );
                    for a in key_attrs {
                        graph.add_cross_edge(key, EdgeKind::KeyAttribute, a);
                    }
                }
            } else if p.eat_word("relationship") {
                let name = p.word()?;
                let mut node = SchemaElement::new(ElementKind::Relationship, name);
                // Doc can precede or follow the connects clause.
                node.documentation = p.maybe_string();
                let rel = graph.add_child(graph.root(), EdgeKind::ContainsRelationship, node);
                p.expect_word("connects")?;
                loop {
                    let target = p.word()?;
                    pending_connects.push((rel, target));
                    if !p.eat_sym(',') {
                        break;
                    }
                }
                if let Some(doc) = p.maybe_string() {
                    graph.element_mut(rel).documentation = Some(doc);
                }
            } else {
                return Err(LoadError::new(
                    "er",
                    format!("unexpected token {:?}", p.peek_text()),
                ));
            }
        }

        for (rel, target) in pending_connects {
            let entity = entities.get(&target).copied().ok_or_else(|| {
                LoadError::new(
                    "er",
                    format!("relationship connects unknown entity {target}"),
                )
            })?;
            graph.add_cross_edge(rel, EdgeKind::Connects, entity);
        }
        Ok(graph)
    }
}

fn parse_type(word: &str) -> DataType {
    if let Some(n) = word.strip_prefix("varchar-").and_then(|s| s.parse().ok()) {
        return DataType::VarChar(n);
    }
    match word {
        "text" | "string" => DataType::Text,
        "integer" | "int" => DataType::Integer,
        "decimal" | "number" => DataType::Decimal,
        "boolean" => DataType::Boolean,
        "date" => DataType::Date,
        "datetime" => DataType::DateTime,
        "coded" => DataType::Coded(String::new()), // refined by `domain`
        other => DataType::Other(other.to_owned()),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    Sym(char),
}

fn lex(text: &str) -> Result<Vec<Tok>, LoadError> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '#' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                match chars.get(i) {
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some('\\') if chars.get(i + 1) == Some(&'"') => {
                        s.push('"');
                        i += 2;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                    }
                    None => return Err(LoadError::at("er", line, "unterminated string")),
                }
            }
            out.push(Tok::Str(s));
        } else if c.is_alphanumeric() || c == '_' || c == '-' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
            {
                i += 1;
            }
            out.push(Tok::Word(chars[start..i].iter().collect()));
        } else {
            out.push(Tok::Sym(c));
            i += 1;
        }
    }
    Ok(out)
}

struct ErParser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl ErParser {
    fn done(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_text(&self) -> String {
        match self.tokens.get(self.pos) {
            Some(Tok::Word(w)) => w.clone(),
            Some(Tok::Str(s)) => format!("\"{s}\""),
            Some(Tok::Sym(c)) => c.to_string(),
            None => "<eof>".into(),
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if let Some(Tok::Word(x)) = self.tokens.get(self.pos) {
            if x == w {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, w: &str) -> Result<(), LoadError> {
        if self.eat_word(w) {
            Ok(())
        } else {
            Err(LoadError::new(
                "er",
                format!("expected {w:?}, found {}", self.peek_text()),
            ))
        }
    }

    fn word(&mut self) -> Result<String, LoadError> {
        match self.tokens.get(self.pos) {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(LoadError::new(
                "er",
                format!("expected a word, found {}", self.peek_text()),
            )),
        }
    }

    fn maybe_string(&mut self) -> Option<String> {
        if let Some(Tok::Str(s)) = self.tokens.get(self.pos) {
            let s = s.clone();
            self.pos += 1;
            Some(s)
        } else {
            None
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if let Some(Tok::Sym(s)) = self.tokens.get(self.pos) {
            if *s == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, c: char) -> Result<(), LoadError> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(LoadError::new(
                "er",
                format!("expected {c:?}, found {}", self.peek_text()),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = r#"
        # Air traffic conceptual model
        model flights "Flight tracking conceptual model."

        domain runway-type "Runway surface coding scheme." {
          ASP "Asphalt surface"
          CON "Concrete surface"
          GRS "Grass or turf surface"
        }

        entity AIRPORT "An airport facility." {
          ident : text key "The ICAO identifier."
          name  : text "Official airport name."
          elevation : integer "Field elevation in feet."
        }

        entity RUNWAY "A runway at an airport." {
          number  : text key "Runway designator."
          surface : coded domain runway-type "Surface classification."
        }

        relationship HAS_RUNWAY connects AIRPORT, RUNWAY "An airport has runways."
    "#;

    #[test]
    fn entities_and_attributes_load() {
        let g = ErLoader.load(MODEL, "flights").unwrap();
        assert_eq!(g.metamodel(), Metamodel::EntityRelationship);
        let airport = g.find_by_path("flights/AIRPORT").unwrap();
        assert_eq!(g.element(airport).kind, ElementKind::Entity);
        assert_eq!(g.depth(airport), 1);
        let ident = g.find_by_path("flights/AIRPORT/ident").unwrap();
        assert_eq!(g.depth(ident), 2);
        assert!(g
            .element(ident)
            .documentation
            .as_deref()
            .unwrap()
            .contains("ICAO"));
        assert!(iwb_model::validate(&g).is_empty());
    }

    #[test]
    fn domains_attach_with_documented_values() {
        let g = ErLoader.load(MODEL, "flights").unwrap();
        let surface = g.find_by_path("flights/RUNWAY/surface").unwrap();
        assert_eq!(
            g.element(surface).data_type,
            Some(DataType::Coded("runway-type".into()))
        );
        let edge = g.cross_edges_from(surface).next().unwrap();
        assert_eq!(edge.kind, EdgeKind::HasDomain);
        let dom = Domain::detach(&g, edge.to).unwrap();
        assert_eq!(dom.values.len(), 3);
        assert_eq!(
            dom.value("GRS").unwrap().meaning.as_deref(),
            Some("Grass or turf surface")
        );
    }

    #[test]
    fn keys_are_materialised() {
        let g = ErLoader.load(MODEL, "flights").unwrap();
        let pk = g.find_by_name("pk_AIRPORT").unwrap();
        assert_eq!(g.element(pk).kind, ElementKind::Key);
        assert_eq!(g.cross_edges_from(pk).count(), 1);
    }

    #[test]
    fn relationships_connect_entities() {
        let g = ErLoader.load(MODEL, "flights").unwrap();
        let rel = g.find_by_name("HAS_RUNWAY").unwrap();
        assert_eq!(g.element(rel).kind, ElementKind::Relationship);
        let targets: Vec<_> = g.cross_edges_from(rel).map(|e| e.to).collect();
        assert_eq!(targets.len(), 2);
        assert!(g
            .element(rel)
            .documentation
            .as_deref()
            .unwrap()
            .contains("has runways"));
    }

    #[test]
    fn model_doc_lands_on_root() {
        let g = ErLoader.load(MODEL, "flights").unwrap();
        assert!(g
            .element(g.root())
            .documentation
            .as_deref()
            .unwrap()
            .contains("conceptual model"));
    }

    #[test]
    fn unknown_domain_is_an_error() {
        let bad = r#"entity E { a : coded domain missing "doc" }"#;
        let err = ErLoader.load(bad, "s").unwrap_err();
        assert!(err.message.contains("unknown domain"));
    }

    #[test]
    fn unknown_entity_in_connects_is_an_error() {
        let bad = "entity A { x : text }\nrelationship R connects A, GHOST";
        let err = ErLoader.load(bad, "s").unwrap_err();
        assert!(err.message.contains("unknown entity"));
    }

    #[test]
    fn comments_and_bare_domain_values() {
        let src = "# comment\ndomain d { A B C }\nentity E { x : coded domain d }";
        let g = ErLoader.load(src, "s").unwrap();
        let dom_id = g.ids_of_kind(ElementKind::Domain)[0];
        let dom = Domain::detach(&g, dom_id).unwrap();
        assert_eq!(dom.values.len(), 3);
        assert!(dom.values.iter().all(|v| v.meaning.is_none()));
    }
}
