//! Loader error type.

use std::fmt;

/// A failure while parsing a schema artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// The source format ("xsd", "sql-ddl", "er", "xml").
    pub format: &'static str,
    /// 1-based line where the problem was detected (0 when unknown).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl LoadError {
    /// Construct an error with a known line.
    pub fn at(format: &'static str, line: usize, message: impl Into<String>) -> Self {
        LoadError {
            format,
            line,
            message: message.into(),
        }
    }

    /// Construct an error without location information.
    pub fn new(format: &'static str, message: impl Into<String>) -> Self {
        Self::at(format, 0, message)
    }
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} load error at line {}: {}",
                self.format, self.line, self.message
            )
        } else {
            write!(f, "{} load error: {}", self.format, self.message)
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(
            LoadError::at("xsd", 3, "boom").to_string(),
            "xsd load error at line 3: boom"
        );
        assert_eq!(
            LoadError::new("er", "boom").to_string(),
            "er load error: boom"
        );
    }
}
