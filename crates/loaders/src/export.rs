//! Schema exporters: canonical graphs back to loadable text.
//!
//! The derivation path (task 2's "the target schema may be derived from
//! the correspondences") produces schema *graphs*; real systems need
//! schema *files*. These exporters write a graph back out as the ER
//! text format or as SQL DDL — both round-trip through the
//! corresponding loaders, so a derived target can be saved, shared, and
//! re-imported by another workbench instance.

use iwb_model::{DataType, Domain, EdgeKind, ElementKind, SchemaGraph};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render a graph in the ER text format accepted by
/// [`crate::ErLoader`]. Works for any metamodel whose containers sit at
/// depth 1 (relational tables export as entities).
pub fn to_er_text(graph: &SchemaGraph) -> String {
    let mut out = String::new();
    let root = graph.element(graph.root());
    match &root.documentation {
        Some(doc) => {
            let _ = writeln!(out, "model {} \"{}\"", graph.id().as_str(), escape(doc));
        }
        None => {
            let _ = writeln!(out, "model {}", graph.id().as_str());
        }
    }
    let _ = writeln!(out);

    // Domains first (the loader requires them before use).
    for dom_id in graph.ids_of_kind(ElementKind::Domain) {
        let Some(domain) = Domain::detach(graph, dom_id) else {
            continue;
        };
        match &domain.documentation {
            Some(doc) => {
                let _ = writeln!(out, "domain {} \"{}\" {{", domain.name, escape(doc));
            }
            None => {
                let _ = writeln!(out, "domain {} {{", domain.name);
            }
        }
        for v in &domain.values {
            match &v.meaning {
                Some(m) => {
                    let _ = writeln!(out, "  {} \"{}\"", v.code, escape(m));
                }
                None => {
                    let _ = writeln!(out, "  {}", v.code);
                }
            }
        }
        let _ = writeln!(out, "}}\n");
    }

    // Entities (tables and XML containers export as entities).
    for &(_, container) in graph.children(graph.root()) {
        let el = graph.element(container);
        if !el.kind.is_container() || el.kind == ElementKind::Domain {
            continue;
        }
        if el.kind == ElementKind::Relationship {
            continue; // emitted after entities
        }
        match &el.documentation {
            Some(doc) => {
                let _ = writeln!(out, "entity {} \"{}\" {{", el.name, escape(doc));
            }
            None => {
                let _ = writeln!(out, "entity {} {{", el.name);
            }
        }
        // Key participants of this container.
        let key_targets: Vec<_> = graph
            .children(container)
            .iter()
            .filter(|(k, _)| *k == EdgeKind::ContainsKey)
            .flat_map(|&(_, key)| graph.cross_edges_from(key).map(|e| e.to))
            .collect();
        for &(edge, child) in graph.children(container) {
            if edge != EdgeKind::ContainsAttribute {
                continue;
            }
            let attr = graph.element(child);
            let type_word = er_type_word(attr.data_type.as_ref());
            let _ = write!(out, "  {} : {}", attr.name, type_word);
            if key_targets.contains(&child) {
                let _ = write!(out, " key");
            }
            if let Some(DataType::Coded(_)) = &attr.data_type {
                if let Some(dom_edge) = graph
                    .cross_edges_from(child)
                    .find(|e| e.kind == EdgeKind::HasDomain)
                {
                    let _ = write!(out, " domain {}", graph.element(dom_edge.to).name);
                }
            }
            if let Some(doc) = &attr.documentation {
                let _ = write!(out, " \"{}\"", escape(doc));
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "}}\n");
    }

    // Relationships.
    for rel_id in graph.ids_of_kind(ElementKind::Relationship) {
        let rel = graph.element(rel_id);
        let connects: Vec<&str> = graph
            .cross_edges_from(rel_id)
            .filter(|e| e.kind == EdgeKind::Connects)
            .map(|e| graph.element(e.to).name.as_str())
            .collect();
        if connects.is_empty() {
            continue;
        }
        let _ = write!(
            out,
            "relationship {} connects {}",
            rel.name,
            connects.join(", ")
        );
        if let Some(doc) = &rel.documentation {
            let _ = write!(out, " \"{}\"", escape(doc));
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a relational graph as SQL DDL accepted by
/// [`crate::SqlDdlLoader`] (tables, column types, PRIMARY KEY, foreign
/// keys, and `COMMENT ON` documentation). Domains are not expressible
/// in plain DDL (§2's exact complaint) and are dropped with their
/// attributes downgraded to their base type.
pub fn to_sql_ddl(graph: &SchemaGraph) -> String {
    let mut out = String::new();
    let mut comments = String::new();
    // Map each attribute id to (table name, column name) for FK emission.
    let mut column_of: BTreeMap<usize, (String, String)> = BTreeMap::new();
    for &(_, table_id) in graph.children(graph.root()) {
        let table = graph.element(table_id);
        if !table.kind.is_container() || table.kind == ElementKind::Domain {
            continue;
        }
        for &(edge, col) in graph.children(table_id) {
            if edge == EdgeKind::ContainsAttribute {
                column_of.insert(
                    col.index(),
                    (table.name.clone(), graph.element(col).name.clone()),
                );
            }
        }
    }

    for &(_, table_id) in graph.children(graph.root()) {
        let table = graph.element(table_id);
        if !table.kind.is_container() || table.kind == ElementKind::Domain {
            continue;
        }
        let _ = writeln!(out, "CREATE TABLE {} (", table.name);
        let mut lines: Vec<String> = Vec::new();
        for &(edge, col_id) in graph.children(table_id) {
            if edge != EdgeKind::ContainsAttribute {
                continue;
            }
            let col = graph.element(col_id);
            let mut line = format!("    {} {}", col.name, sql_type(col.data_type.as_ref()));
            if col.annotations.flag("not-null") == Some(true) {
                line.push_str(" NOT NULL");
            }
            for fk in graph
                .cross_edges_from(col_id)
                .filter(|e| e.kind == EdgeKind::References)
            {
                if let Some((t, c)) = column_of.get(&fk.to.index()) {
                    let _ = write!(line, " REFERENCES {t} ({c})");
                }
            }
            lines.push(line);
            if let Some(doc) = &col.documentation {
                let _ = writeln!(
                    comments,
                    "COMMENT ON COLUMN {}.{} IS '{}';",
                    table.name,
                    col.name,
                    doc.replace('\'', "''")
                );
            }
        }
        // Keys.
        for &(edge, key_id) in graph.children(table_id) {
            if edge != EdgeKind::ContainsKey {
                continue;
            }
            let cols: Vec<&str> = graph
                .cross_edges_from(key_id)
                .filter(|e| e.kind == EdgeKind::KeyAttribute)
                .map(|e| graph.element(e.to).name.as_str())
                .collect();
            if !cols.is_empty() {
                lines.push(format!("    PRIMARY KEY ({})", cols.join(", ")));
            }
        }
        let _ = writeln!(out, "{}", lines.join(",\n"));
        let _ = writeln!(out, ");");
        if let Some(doc) = &table.documentation {
            let _ = writeln!(
                comments,
                "COMMENT ON TABLE {} IS '{}';",
                table.name,
                doc.replace('\'', "''")
            );
        }
    }
    out.push_str(&comments);
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"").replace('\n', " ")
}

fn er_type_word(dt: Option<&DataType>) -> String {
    match dt {
        Some(DataType::Integer) => "integer".into(),
        Some(DataType::Decimal) => "decimal".into(),
        Some(DataType::Boolean) => "boolean".into(),
        Some(DataType::Date) => "date".into(),
        Some(DataType::DateTime) => "datetime".into(),
        Some(DataType::Coded(_)) => "coded".into(),
        Some(DataType::VarChar(n)) => format!("varchar-{n}"),
        _ => "text".into(),
    }
}

fn sql_type(dt: Option<&DataType>) -> String {
    match dt {
        Some(DataType::Integer) => "INT".into(),
        Some(DataType::Decimal) => "DECIMAL(18,4)".into(),
        Some(DataType::Boolean) => "BOOLEAN".into(),
        Some(DataType::Date) => "DATE".into(),
        Some(DataType::DateTime) => "TIMESTAMP".into(),
        Some(DataType::VarChar(n)) => format!("VARCHAR({n})"),
        // Coded columns are stored as short strings — the §2 lament.
        Some(DataType::Coded(_)) => "VARCHAR(16)".into(),
        _ => "TEXT".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErLoader, SchemaLoader, SqlDdlLoader};
    use iwb_model::{Metamodel, SchemaBuilder};

    const ER: &str = r#"
        model flights "Flight model."
        domain sfc "Surface codes." { ASP "Asphalt" CON "Concrete" }
        entity AIRPORT "An airport." {
          ident : text key "ICAO identifier."
          elevation : integer
        }
        entity RUNWAY {
          number : text key
          surface : coded domain sfc "Surface class."
        }
        relationship HAS_RUNWAY connects AIRPORT, RUNWAY "Airports have runways."
    "#;

    #[test]
    fn er_round_trip_preserves_structure() {
        let g1 = ErLoader.load(ER, "flights").unwrap();
        let text = to_er_text(&g1);
        let g2 = ErLoader.load(&text, "flights").unwrap();
        assert_eq!(g1.len(), g2.len(), "element counts differ:\n{text}");
        for (id, el) in g1.iter() {
            let path = g1.name_path(id);
            let other = g2
                .find_by_path(&path)
                .unwrap_or_else(|| panic!("missing {path}"));
            let o = g2.element(other);
            assert_eq!(el.kind, o.kind, "{path}");
            assert_eq!(el.data_type, o.data_type, "{path}");
            assert_eq!(el.documentation, o.documentation, "{path}");
        }
        assert_eq!(g1.cross_edges().len(), g2.cross_edges().len());
    }

    #[test]
    fn sql_round_trip_preserves_structure() {
        let g1 = SqlDdlLoader
            .load(
                "CREATE TABLE A (ID INT PRIMARY KEY, NAME VARCHAR(40) NOT NULL);
                 CREATE TABLE B (A_ID INT REFERENCES A (ID), NOTE TEXT);
                 COMMENT ON TABLE A IS 'Table A.';
                 COMMENT ON COLUMN A.NAME IS 'It''s a name.';",
                "db",
            )
            .unwrap();
        let ddl = to_sql_ddl(&g1);
        let g2 = SqlDdlLoader.load(&ddl, "db").unwrap();
        assert_eq!(g1.len(), g2.len(), "{ddl}");
        let name = g2.find_by_path("db/A/NAME").unwrap();
        assert_eq!(
            g2.element(name).documentation.as_deref(),
            Some("It's a name.")
        );
        assert_eq!(g2.element(name).annotations.flag("not-null"), Some(true));
        let fk = g2.find_by_path("db/B/A_ID").unwrap();
        assert_eq!(
            g2.cross_edges_from(fk)
                .filter(|e| e.kind == EdgeKind::References)
                .count(),
            1
        );
        // Keys survive.
        assert!(g2.find_by_name("pk_A").is_some());
    }

    #[test]
    fn derived_targets_are_exportable() {
        // A graph built by hand (as derive_target would) exports cleanly.
        let g = SchemaBuilder::new("merged", Metamodel::Relational)
            .open("CUSTOMER")
            .doc("Merged customer/client entity.")
            .attr_doc("ID", DataType::Integer, "Unique identifier.")
            .attr("TAX_CODE", DataType::VarChar(8))
            .key("pk", &["ID"])
            .close()
            .build();
        let ddl = to_sql_ddl(&g);
        assert!(ddl.contains("CREATE TABLE CUSTOMER"));
        assert!(ddl.contains("PRIMARY KEY (ID)"));
        assert!(ddl.contains("COMMENT ON TABLE CUSTOMER"));
        let er = to_er_text(&g);
        assert!(er.contains("entity CUSTOMER"));
        assert!(er.contains("ID : integer key"));
        // Both forms reload.
        assert!(SqlDdlLoader.load(&ddl, "merged").is_ok());
        assert!(ErLoader.load(&er, "merged").is_ok());
    }
}

#[cfg(test)]
mod registry_round_trip {
    use super::*;
    use crate::{ErLoader, SchemaLoader};
    use iwb_registry::{generate_registry, GeneratorConfig};

    /// Every registry-generated ER model survives export → reload with
    /// identical paths, types and documentation.
    #[test]
    fn generated_models_round_trip() {
        let registry = generate_registry(GeneratorConfig::scaled(31, 0.002));
        for g1 in &registry.models {
            let text = to_er_text(g1);
            let g2 = ErLoader
                .load(&text, g1.id().as_str())
                .unwrap_or_else(|e| panic!("reload of {} failed: {e}", g1.id()));
            assert_eq!(g1.len(), g2.len(), "model {}", g1.id());
            for (id, el) in g1.iter() {
                // Key node names are loader-generated (`pk` vs
                // `pk_ENTITY`); compare them by participant set below.
                if el.kind == ElementKind::Key {
                    continue;
                }
                let path = g1.name_path(id);
                let other = g2
                    .find_by_path(&path)
                    .unwrap_or_else(|| panic!("missing {path}"));
                assert_eq!(el.data_type, g2.element(other).data_type, "{path}");
                assert_eq!(el.documentation, g2.element(other).documentation, "{path}");
            }
            // Key participants are preserved per entity.
            let key_participants = |g: &SchemaGraph| -> std::collections::BTreeSet<String> {
                g.cross_edges()
                    .iter()
                    .filter(|e| e.kind == EdgeKind::KeyAttribute)
                    .map(|e| g.name_path(e.to))
                    .collect()
            };
            assert_eq!(
                key_participants(g1),
                key_participants(&g2),
                "model {}",
                g1.id()
            );
        }
    }
}
