//! Importing XML *instance documents* into the execution data model.
//!
//! §5.3: "At any point this code can be tested on sample documents."
//! Sample documents arrive as XML text; this bridge parses them with
//! the in-tree XML parser and converts them into the
//! [`iwb_mapper::Node`] trees the mapping engine executes over. Leaf
//! text is auto-typed: numerals become numbers, `true`/`false` become
//! booleans, everything else stays text.

use crate::error::LoadError;
use crate::xml::{parse, XmlNode};
use iwb_mapper::{Node, Value};

/// Parse an XML document into an instance tree.
pub fn parse_instance(text: &str) -> Result<Node, LoadError> {
    let root = parse(text)?;
    Ok(convert(&root))
}

fn convert(x: &XmlNode) -> Node {
    let mut node = Node::elem(x.local_name());
    // XML attributes become leaf children (the canonical graph treats
    // them like sub-elements anyway).
    for (k, v) in &x.attributes {
        if k.starts_with("xmlns") {
            continue;
        }
        node.children.push(Node::leaf(k.clone(), type_value(v)));
    }
    for c in &x.children {
        node.children.push(convert(c));
    }
    if node.children.is_empty() && !x.text.is_empty() {
        node.value = Some(type_value(&x.text));
    }
    node
}

/// Auto-type a lexical value. Zero-padded tokens ("007", "04L") stay
/// text — they are almost always codes, not quantities.
fn type_value(s: &str) -> Value {
    let t = s.trim();
    if t.eq_ignore_ascii_case("true") {
        return Value::Bool(true);
    }
    if t.eq_ignore_ascii_case("false") {
        return Value::Bool(false);
    }
    let zero_padded = t.len() > 1 && t.starts_with('0') && !t.starts_with("0.");
    if !zero_padded {
        if let Ok(n) = t.parse::<f64>() {
            if n.is_finite() {
                return Value::Num(n);
            }
        }
    }
    Value::Str(t.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purchase_order_parses_and_types() {
        let doc = parse_instance(
            r#"<purchaseOrder>
                 <shipTo country="US">
                   <firstName>Ada</firstName>
                   <lastName>Lovelace</lastName>
                   <subtotal>100.5</subtotal>
                   <expedite>true</expedite>
                 </shipTo>
               </purchaseOrder>"#,
        )
        .unwrap();
        assert_eq!(doc.name, "purchaseOrder");
        assert_eq!(doc.value_at("shipTo/firstName"), Value::from("Ada"));
        assert_eq!(doc.value_at("shipTo/subtotal").as_num(), Some(100.5));
        assert_eq!(doc.value_at("shipTo/expedite"), Value::Bool(true));
        assert_eq!(doc.value_at("shipTo/country"), Value::from("US"));
    }

    #[test]
    fn codes_with_leading_zeros_stay_text() {
        let doc = parse_instance("<r><rwy>04L</rwy><code>007</code><n>42</n></r>").unwrap();
        assert_eq!(doc.value_at("rwy"), Value::from("04L"));
        assert_eq!(doc.value_at("code"), Value::from("007"));
        assert_eq!(doc.value_at("n").as_num(), Some(42.0));
    }

    #[test]
    fn repeated_elements_become_repeated_children() {
        let doc = parse_instance("<db><row><x>1</x></row><row><x>2</x></row></db>").unwrap();
        assert_eq!(doc.children_named("row").count(), 2);
    }

    #[test]
    fn namespaces_are_stripped_and_xmlns_dropped() {
        let doc = parse_instance(
            r#"<po:order xmlns:po="http://example.org"><po:total>5</po:total></po:order>"#,
        )
        .unwrap();
        assert_eq!(doc.name, "order");
        assert_eq!(doc.value_at("total").as_num(), Some(5.0));
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(parse_instance("<broken").is_err());
    }

    #[test]
    fn round_trip_through_mapping_execution() {
        use iwb_mapper::logical::AttrRule;
        use iwb_mapper::{
            execute, parse_expr, AttributeTransformation, EntityMapping, EntityRule, LogicalMapping,
        };
        let doc = parse_instance(
            "<po><shipTo><firstName>Ada</firstName><subtotal>100</subtotal></shipTo></po>",
        )
        .unwrap();
        let mapping = LogicalMapping::new("invoice").with_rule(
            EntityRule::new(
                "info",
                EntityMapping::Direct {
                    source: "shipTo".into(),
                },
            )
            .with_attr(AttrRule::new(
                "total",
                AttributeTransformation::Scalar(parse_expr("data($src/subtotal) * 1.05").unwrap()),
            )),
        );
        let out = execute(&mapping, &doc).unwrap();
        assert_eq!(
            out.child("info").unwrap().value_at("total").as_num(),
            Some(105.0)
        );
    }
}
