//! # iwb-loaders — schema preparation tools
//!
//! Loaders implement tasks 1–2 of the paper's task model (§3.1): they
//! "parse a schema from a file, database or metadata repository
//! (including ancillary information such as definitions from a data
//! dictionary) into the internal representation used by the IB" (§5.2.1).
//!
//! Three concrete loaders cover the formats Harmony supports (§4: "XML
//! schemata, entity-relationship schemata from ERWin … and will soon
//! support relational schemata"):
//!
//! * [`xsd`] — an XML Schema subset, over the hand-written XML parser in
//!   [`xml`];
//! * [`sqlddl`] — SQL `CREATE TABLE` DDL with `COMMENT ON` documentation;
//! * [`er`] — a textual ERWin-like entity-relationship format with
//!   first-class domains (coding schemes).
//!
//! [`dictionary`] enriches a loaded schema with definitions from a data
//! dictionary sidecar; [`loader`] defines the common trait and a registry
//! keyed by format name.

pub mod dictionary;
pub mod enrich;
pub mod er;
pub mod error;
pub mod export;
pub mod instance_xml;
pub mod loader;
pub mod sqlddl;
pub mod xml;
pub mod xsd;

pub use dictionary::apply_dictionary;
pub use enrich::{attach_inferred, infer_domains, InferenceConfig};
pub use er::ErLoader;
pub use error::LoadError;
pub use export::{to_er_text, to_sql_ddl};
pub use instance_xml::parse_instance;
pub use loader::{LoaderRegistry, SchemaLoader};
pub use sqlddl::SqlDdlLoader;
pub use xsd::XsdLoader;
