//! The common loader trait and format registry.
//!
//! §5.2.1: loaders "parse a schema from a file, database or metadata
//! repository … into the internal representation used by the IB". Every
//! concrete loader implements [`SchemaLoader`]; the workbench looks
//! loaders up by format name (or file extension) in a [`LoaderRegistry`].

use crate::error::LoadError;
use iwb_model::SchemaGraph;
use std::collections::BTreeMap;

/// A schema import tool (task 1/2 of the task model).
pub trait SchemaLoader {
    /// Short format name ("xsd", "sql-ddl", "er").
    fn format(&self) -> &'static str;

    /// Parse `text` into a canonical schema graph with the given id.
    fn load(&self, text: &str, schema_id: &str) -> Result<SchemaGraph, LoadError>;

    /// Validate after loading; the default implementation runs the model
    /// invariant checks and fails on the first violation.
    fn load_validated(&self, text: &str, schema_id: &str) -> Result<SchemaGraph, LoadError> {
        let graph = self.load(text, schema_id)?;
        if let Some(err) = iwb_model::validate(&graph).into_iter().next() {
            return Err(LoadError::new(self.format(), err.to_string()));
        }
        Ok(graph)
    }
}

/// A registry of loaders keyed by format name and file extension.
///
/// # Examples
///
/// ```
/// use iwb_loaders::LoaderRegistry;
///
/// let registry = LoaderRegistry::with_builtin();
/// let graph = registry
///     .load_named("models/flights.er", r#"entity AIRPORT { ident : text key }"#)
///     .unwrap();
/// assert_eq!(graph.id().as_str(), "flights");
/// assert!(graph.find_by_path("flights/AIRPORT/ident").is_some());
/// ```
#[derive(Default)]
pub struct LoaderRegistry {
    by_format: BTreeMap<&'static str, Box<dyn SchemaLoader + Send + Sync>>,
    by_extension: BTreeMap<String, &'static str>,
}

impl LoaderRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with the three built-in loaders, with conventional
    /// extensions (`.xsd`, `.sql`/`.ddl`, `.er`).
    pub fn with_builtin() -> Self {
        let mut r = Self::new();
        r.register(crate::xsd::XsdLoader, &["xsd"]);
        r.register(crate::sqlddl::SqlDdlLoader, &["sql", "ddl"]);
        r.register(crate::er::ErLoader, &["er"]);
        r
    }

    /// Register a loader and map extensions to it.
    pub fn register(
        &mut self,
        loader: impl SchemaLoader + Send + Sync + 'static,
        extensions: &[&str],
    ) {
        let format = loader.format();
        for ext in extensions {
            self.by_extension.insert((*ext).to_lowercase(), format);
        }
        self.by_format.insert(format, Box::new(loader));
    }

    /// Look up by format name.
    pub fn by_format(&self, format: &str) -> Option<&(dyn SchemaLoader + Send + Sync)> {
        self.by_format.get(format).map(|b| b.as_ref())
    }

    /// Look up by file extension (case-insensitive, no dot).
    pub fn by_extension(&self, ext: &str) -> Option<&(dyn SchemaLoader + Send + Sync)> {
        let format = self.by_extension.get(&ext.to_lowercase())?;
        self.by_format(format)
    }

    /// Registered format names.
    pub fn formats(&self) -> Vec<&'static str> {
        self.by_format.keys().copied().collect()
    }

    /// Convenience: pick the loader from the file name's extension and
    /// load, deriving the schema id from the file stem.
    pub fn load_named(&self, file_name: &str, text: &str) -> Result<SchemaGraph, LoadError> {
        let (stem, ext) = file_name
            .rsplit_once('.')
            .ok_or_else(|| LoadError::new("registry", format!("no extension in {file_name}")))?;
        let loader = self.by_extension(ext).ok_or_else(|| {
            LoadError::new("registry", format!("no loader registered for .{ext}"))
        })?;
        let id = stem.rsplit('/').next().unwrap_or(stem);
        loader.load_validated(text, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_three_formats() {
        let r = LoaderRegistry::with_builtin();
        assert_eq!(r.formats(), vec!["er", "sql-ddl", "xsd"]);
        assert!(r.by_format("xsd").is_some());
        assert!(r.by_extension("SQL").is_some());
        assert!(r.by_extension("ddl").is_some());
        assert!(r.by_format("json").is_none());
    }

    #[test]
    fn load_named_dispatches_on_extension() {
        let r = LoaderRegistry::with_builtin();
        let g = r
            .load_named("models/flights.er", "entity A { x : text }")
            .unwrap();
        assert_eq!(g.id().as_str(), "flights");
        assert!(g.find_by_path("flights/A/x").is_some());
    }

    #[test]
    fn load_named_rejects_unknown_extension() {
        let r = LoaderRegistry::with_builtin();
        assert!(r.load_named("x.json", "{}").is_err());
        assert!(r.load_named("noext", "").is_err());
    }

    #[test]
    fn load_validated_reports_model_violations() {
        struct BadLoader;
        impl SchemaLoader for BadLoader {
            fn format(&self) -> &'static str {
                "bad"
            }
            fn load(&self, _: &str, id: &str) -> Result<SchemaGraph, LoadError> {
                use iwb_model::*;
                let mut g = SchemaGraph::new(id, Metamodel::Xml);
                g.add_child(
                    g.root(),
                    EdgeKind::ContainsElement,
                    SchemaElement::new(ElementKind::XmlElement, "  "),
                );
                Ok(g)
            }
        }
        let err = BadLoader.load_validated("", "s").unwrap_err();
        assert!(err.message.contains("empty name"));
    }
}
