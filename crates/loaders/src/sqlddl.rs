//! SQL DDL loader: `CREATE TABLE` statements plus `COMMENT ON`
//! documentation.
//!
//! §2 notes that domain/coding-scheme documentation "is often lost when a
//! logical schema is converted into SQL"; what survives is tables,
//! columns, keys, and (when the DBA bothered) `COMMENT ON` text. The
//! loader recovers all of it into the canonical graph:
//!
//! * `CREATE TABLE t (col TYPE [NOT NULL] [PRIMARY KEY], …,
//!   PRIMARY KEY (…), FOREIGN KEY (…) REFERENCES t2 (…), UNIQUE (…))`
//! * `COMMENT ON TABLE t IS '…'` / `COMMENT ON COLUMN t.c IS '…'`

use crate::error::LoadError;
use crate::loader::SchemaLoader;
use iwb_model::{
    DataType, EdgeKind, ElementId, ElementKind, Metamodel, SchemaElement, SchemaGraph,
};
use std::collections::HashMap;

/// Loader for SQL DDL scripts.
#[derive(Debug, Default, Clone, Copy)]
pub struct SqlDdlLoader;

impl SchemaLoader for SqlDdlLoader {
    fn format(&self) -> &'static str {
        "sql-ddl"
    }

    fn load(&self, text: &str, schema_id: &str) -> Result<SchemaGraph, LoadError> {
        let tokens = lex(text)?;
        let mut p = DdlParser { tokens, pos: 0 };
        let mut graph = SchemaGraph::new(schema_id, Metamodel::Relational);
        let mut tables: HashMap<String, ElementId> = HashMap::new();
        let mut columns: HashMap<(String, String), ElementId> = HashMap::new();
        let mut pending_fks: Vec<(ElementId, String, String)> = Vec::new();

        while !p.done() {
            if p.eat_kw("CREATE") {
                p.expect_kw("TABLE")?;
                let table_name = p.identifier()?;
                let table = graph.add_child(
                    graph.root(),
                    EdgeKind::ContainsTable,
                    SchemaElement::new(ElementKind::Table, table_name.clone()),
                );
                tables.insert(table_name.to_uppercase(), table);
                p.expect_sym('(')?;
                let mut key_counter = 0usize;
                loop {
                    if p.eat_kw("PRIMARY") {
                        p.expect_kw("KEY")?;
                        let cols = p.paren_identifier_list()?;
                        add_key(&mut graph, table, "pk", &table_name, &cols, &columns)?;
                    } else if p.eat_kw("UNIQUE") {
                        key_counter += 1;
                        let cols = p.paren_identifier_list()?;
                        add_key(
                            &mut graph,
                            table,
                            &format!("uq{key_counter}"),
                            &table_name,
                            &cols,
                            &columns,
                        )?;
                    } else if p.eat_kw("FOREIGN") {
                        p.expect_kw("KEY")?;
                        let cols = p.paren_identifier_list()?;
                        p.expect_kw("REFERENCES")?;
                        let target_table = p.identifier()?;
                        let target_cols = p.paren_identifier_list()?;
                        for (c, tc) in cols.iter().zip(target_cols.iter()) {
                            let from = columns
                                .get(&(table_name.to_uppercase(), c.to_uppercase()))
                                .copied()
                                .ok_or_else(|| {
                                    LoadError::new("sql-ddl", format!("unknown FK column {c}"))
                                })?;
                            pending_fks.push((
                                from,
                                target_table.to_uppercase(),
                                tc.to_uppercase(),
                            ));
                        }
                    } else {
                        // Column definition.
                        let col_name = p.identifier()?;
                        let data_type = p.data_type()?;
                        let mut col = SchemaElement::new(ElementKind::Attribute, col_name.clone())
                            .with_type(data_type);
                        // Inline constraints.
                        let mut inline_pk = false;
                        let mut inline_refs: Vec<(String, String)> = Vec::new();
                        loop {
                            if p.eat_kw("NOT") {
                                p.expect_kw("NULL")?;
                                col.annotations.set("not-null", true);
                            } else if p.eat_kw("PRIMARY") {
                                p.expect_kw("KEY")?;
                                inline_pk = true;
                            } else if p.eat_kw("REFERENCES") {
                                let target_table = p.identifier()?;
                                let target_cols = p.paren_identifier_list()?;
                                let tc = target_cols.first().cloned().unwrap_or_default();
                                // Resolved after all tables are parsed.
                                inline_refs.push((target_table.to_uppercase(), tc.to_uppercase()));
                            } else if p.eat_kw("DEFAULT") {
                                p.skip_default_value();
                            } else {
                                break;
                            }
                        }
                        let id = graph.add_child(table, EdgeKind::ContainsAttribute, col);
                        columns.insert((table_name.to_uppercase(), col_name.to_uppercase()), id);
                        for (t, c) in inline_refs {
                            pending_fks.push((id, t, c));
                        }
                        if inline_pk {
                            add_key(
                                &mut graph,
                                table,
                                "pk",
                                &table_name,
                                std::slice::from_ref(&col_name),
                                &columns,
                            )?;
                        }
                    }
                    if p.eat_sym(',') {
                        continue;
                    }
                    p.expect_sym(')')?;
                    break;
                }
                p.eat_sym(';');
            } else if p.eat_kw("COMMENT") {
                p.expect_kw("ON")?;
                if p.eat_kw("TABLE") {
                    let t = p.identifier()?;
                    p.expect_kw("IS")?;
                    let text = p.string()?;
                    let id = tables.get(&t.to_uppercase()).copied().ok_or_else(|| {
                        LoadError::new("sql-ddl", format!("COMMENT on unknown table {t}"))
                    })?;
                    graph.element_mut(id).documentation = Some(text);
                } else {
                    p.expect_kw("COLUMN")?;
                    let t = p.identifier()?;
                    p.expect_sym('.')?;
                    let c = p.identifier()?;
                    p.expect_kw("IS")?;
                    let text = p.string()?;
                    let id = columns
                        .get(&(t.to_uppercase(), c.to_uppercase()))
                        .copied()
                        .ok_or_else(|| {
                            LoadError::new("sql-ddl", format!("COMMENT on unknown column {t}.{c}"))
                        })?;
                    graph.element_mut(id).documentation = Some(text);
                }
                p.eat_sym(';');
            } else {
                return Err(LoadError::new(
                    "sql-ddl",
                    format!("unexpected token {:?}", p.peek_text()),
                ));
            }
        }

        for (from, table, col) in pending_fks {
            if let Some(&to) = columns.get(&(table.clone(), col.clone())) {
                graph.add_cross_edge(from, EdgeKind::References, to);
            } else {
                return Err(LoadError::new(
                    "sql-ddl",
                    format!("foreign key references unknown column {table}.{col}"),
                ));
            }
        }
        Ok(graph)
    }
}

fn add_key(
    graph: &mut SchemaGraph,
    table: ElementId,
    key_name: &str,
    table_name: &str,
    cols: &[String],
    columns: &HashMap<(String, String), ElementId>,
) -> Result<(), LoadError> {
    let key = graph.add_child(
        table,
        EdgeKind::ContainsKey,
        SchemaElement::new(ElementKind::Key, format!("{key_name}_{table_name}")),
    );
    for c in cols {
        let target = columns
            .get(&(table_name.to_uppercase(), c.to_uppercase()))
            .copied()
            .ok_or_else(|| LoadError::new("sql-ddl", format!("unknown key column {c}")))?;
        graph.add_cross_edge(key, EdgeKind::KeyAttribute, target);
    }
    Ok(())
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Sym(char),
    Str(String),
    Num(String),
}

fn lex(text: &str) -> Result<Vec<Tok>, LoadError> {
    let mut out = Vec::new();
    let b: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '-' && b.get(i + 1) == Some(&'-') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                match b.get(i) {
                    Some('\'') if b.get(i + 1) == Some(&'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some('\'') => {
                        i += 1;
                        break;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                    }
                    None => return Err(LoadError::new("sql-ddl", "unterminated string")),
                }
            }
            out.push(Tok::Str(s));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
                i += 1;
            }
            out.push(Tok::Num(b[start..i].iter().collect()));
        } else if c.is_alphanumeric() || c == '_' || c == '"' {
            if c == '"' {
                // Quoted identifier.
                i += 1;
                let start = i;
                while i < b.len() && b[i] != '"' {
                    i += 1;
                }
                if i == b.len() {
                    return Err(LoadError::new("sql-ddl", "unterminated quoted identifier"));
                }
                out.push(Tok::Word(b[start..i].iter().collect()));
                i += 1;
            } else {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Word(b[start..i].iter().collect()));
            }
        } else {
            out.push(Tok::Sym(c));
            i += 1;
        }
    }
    Ok(out)
}

struct DdlParser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl DdlParser {
    fn done(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_text(&self) -> String {
        match self.tokens.get(self.pos) {
            Some(Tok::Word(w)) => w.clone(),
            Some(Tok::Sym(c)) => c.to_string(),
            Some(Tok::Str(s)) => format!("'{s}'"),
            Some(Tok::Num(n)) => n.clone(),
            None => "<eof>".to_owned(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Word(w)) = self.tokens.get(self.pos) {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), LoadError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(LoadError::new(
                "sql-ddl",
                format!("expected {kw}, found {}", self.peek_text()),
            ))
        }
    }

    fn eat_sym(&mut self, sym: char) -> bool {
        if let Some(Tok::Sym(s)) = self.tokens.get(self.pos) {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, sym: char) -> Result<(), LoadError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(LoadError::new(
                "sql-ddl",
                format!("expected {sym:?}, found {}", self.peek_text()),
            ))
        }
    }

    fn identifier(&mut self) -> Result<String, LoadError> {
        match self.tokens.get(self.pos) {
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(LoadError::new(
                "sql-ddl",
                format!("expected identifier, found {}", self.peek_text()),
            )),
        }
    }

    fn string(&mut self) -> Result<String, LoadError> {
        match self.tokens.get(self.pos) {
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(LoadError::new(
                "sql-ddl",
                format!("expected string literal, found {}", self.peek_text()),
            )),
        }
    }

    fn paren_identifier_list(&mut self) -> Result<Vec<String>, LoadError> {
        self.expect_sym('(')?;
        let mut out = vec![self.identifier()?];
        while self.eat_sym(',') {
            out.push(self.identifier()?);
        }
        self.expect_sym(')')?;
        Ok(out)
    }

    fn data_type(&mut self) -> Result<DataType, LoadError> {
        let name = self.identifier()?.to_uppercase();
        // Optional length/precision argument(s).
        let mut arg: Option<u32> = None;
        if self.eat_sym('(') {
            if let Some(Tok::Num(n)) = self.tokens.get(self.pos) {
                arg = n.parse().ok();
                self.pos += 1;
            }
            while self.eat_sym(',') {
                self.pos += 1; // skip scale etc.
            }
            self.expect_sym(')')?;
        }
        Ok(match name.as_str() {
            "VARCHAR" | "CHAR" | "CHARACTER" | "NVARCHAR" => DataType::VarChar(arg.unwrap_or(255)),
            "TEXT" | "CLOB" | "STRING" => DataType::Text,
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "SERIAL" => DataType::Integer,
            "DECIMAL" | "NUMERIC" | "FLOAT" | "REAL" | "DOUBLE" | "MONEY" => DataType::Decimal,
            "BOOLEAN" | "BOOL" | "BIT" => DataType::Boolean,
            "DATE" => DataType::Date,
            "TIMESTAMP" | "DATETIME" | "TIME" => DataType::DateTime,
            "BLOB" | "BYTEA" | "BINARY" | "VARBINARY" => DataType::Binary,
            other => DataType::Other(other.to_lowercase()),
        })
    }

    fn skip_default_value(&mut self) {
        // A default is a single literal/word/number token in this subset.
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = r#"
        -- Flight tracking schema
        CREATE TABLE AIRPORT (
            IDENT VARCHAR(4) PRIMARY KEY,
            NAME VARCHAR(80) NOT NULL,
            ELEVATION_FT INT
        );
        CREATE TABLE RUNWAY (
            ARPT_IDENT VARCHAR(4) REFERENCES AIRPORT (IDENT),
            RWY_NUM VARCHAR(3),
            SURFACE_CD CHAR(3),
            PRIMARY KEY (ARPT_IDENT, RWY_NUM)
        );
        COMMENT ON TABLE AIRPORT IS 'An airport facility with runways.';
        COMMENT ON COLUMN AIRPORT.IDENT IS 'The ICAO identifier of the airport.';
        COMMENT ON COLUMN RUNWAY.SURFACE_CD IS 'Coded runway surface type.';
    "#;

    #[test]
    fn tables_columns_and_types() {
        let g = SqlDdlLoader.load(DDL, "flights").unwrap();
        let airport = g.find_by_path("flights/AIRPORT").unwrap();
        assert_eq!(
            g.children(airport)
                .iter()
                .filter(|(k, _)| *k == EdgeKind::ContainsAttribute)
                .count(),
            3
        );
        let ident = g.find_by_path("flights/AIRPORT/IDENT").unwrap();
        assert_eq!(g.element(ident).data_type, Some(DataType::VarChar(4)));
        let elev = g.find_by_path("flights/AIRPORT/ELEVATION_FT").unwrap();
        assert_eq!(g.element(elev).data_type, Some(DataType::Integer));
        assert!(iwb_model::validate(&g).is_empty());
    }

    #[test]
    fn comments_become_documentation() {
        let g = SqlDdlLoader.load(DDL, "flights").unwrap();
        let airport = g.find_by_path("flights/AIRPORT").unwrap();
        assert!(g
            .element(airport)
            .documentation
            .as_deref()
            .unwrap()
            .contains("airport facility"));
        let ident = g.find_by_path("flights/AIRPORT/IDENT").unwrap();
        assert!(g
            .element(ident)
            .documentation
            .as_deref()
            .unwrap()
            .contains("ICAO"));
    }

    #[test]
    fn inline_and_composite_keys() {
        let g = SqlDdlLoader.load(DDL, "flights").unwrap();
        let pk_airport = g.find_by_name("pk_AIRPORT").unwrap();
        assert_eq!(g.cross_edges_from(pk_airport).count(), 1);
        let pk_runway = g.find_by_name("pk_RUNWAY").unwrap();
        assert_eq!(g.cross_edges_from(pk_runway).count(), 2);
    }

    #[test]
    fn inline_foreign_keys_resolve() {
        let g = SqlDdlLoader.load(DDL, "flights").unwrap();
        let fk_col = g.find_by_path("flights/RUNWAY/ARPT_IDENT").unwrap();
        let refs: Vec<_> = g
            .cross_edges_from(fk_col)
            .filter(|e| e.kind == EdgeKind::References)
            .collect();
        assert_eq!(refs.len(), 1);
        assert_eq!(g.name_path(refs[0].to), "flights/AIRPORT/IDENT");
    }

    #[test]
    fn table_level_foreign_keys_resolve() {
        let ddl = r#"
            CREATE TABLE A (X INT PRIMARY KEY);
            CREATE TABLE B (
                Y INT,
                FOREIGN KEY (Y) REFERENCES A (X)
            );
        "#;
        let g = SqlDdlLoader.load(ddl, "db").unwrap();
        let y = g.find_by_path("db/B/Y").unwrap();
        assert_eq!(g.cross_edges_from(y).count(), 1);
    }

    #[test]
    fn not_null_becomes_annotation() {
        let g = SqlDdlLoader.load(DDL, "flights").unwrap();
        let name = g.find_by_path("flights/AIRPORT/NAME").unwrap();
        assert_eq!(g.element(name).annotations.flag("not-null"), Some(true));
    }

    #[test]
    fn errors_on_unknown_references() {
        let ddl = "CREATE TABLE A (X INT REFERENCES NOPE (Y));";
        assert!(SqlDdlLoader.load(ddl, "db").is_err());
        let ddl2 = "COMMENT ON TABLE MISSING IS 'x';";
        assert!(SqlDdlLoader.load(ddl2, "db").is_err());
    }

    #[test]
    fn quoted_identifiers_and_defaults() {
        let ddl = r#"CREATE TABLE "Order" (id INT PRIMARY KEY, status VARCHAR(10) DEFAULT 'new' NOT NULL);"#;
        let g = SqlDdlLoader.load(ddl, "db").unwrap();
        assert!(g.find_by_path("db/Order/status").is_some());
    }
}
