//! A small, dependency-free XML parser.
//!
//! Parses the XML subset that schema documents use: elements with
//! attributes, nested content, text, comments, processing instructions,
//! CDATA, and the five predefined entities. No DTDs, no namespaces
//! machinery (prefixes are kept as part of the name; [`XmlNode::local_name`]
//! strips them on demand).

use crate::error::LoadError;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlNode {
    /// Tag name as written, prefix included (e.g. `xs:element`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element.
    pub text: String,
}

impl XmlNode {
    /// The tag name with any namespace prefix removed.
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// The value of an attribute, matched on the full name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements with the given local name.
    pub fn children_named<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children
            .iter()
            .filter(move |c| c.local_name() == local)
    }

    /// First child with the given local name.
    pub fn child_named<'a>(&'a self, local: &'a str) -> Option<&'a XmlNode> {
        self.children_named(local).next()
    }

    /// Depth-first search for the first descendant with the local name.
    pub fn find(&self, local: &str) -> Option<&XmlNode> {
        for c in &self.children {
            if c.local_name() == local {
                return Some(c);
            }
            if let Some(hit) = c.find(local) {
                return Some(hit);
            }
        }
        None
    }
}

/// Element nesting deeper than this is rejected as malformed input:
/// the parser recurses per level, so an adversarial document of
/// absurd depth must fail with a [`LoadError`], not a stack overflow.
const MAX_ELEMENT_DEPTH: usize = 256;

/// Parse a document, returning its root element.
pub fn parse(input: &str) -> Result<XmlNode, LoadError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
    };
    p.skip_misc()?;
    let root = p.element(0)?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(p.error("content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> LoadError {
        LoadError::at("xml", self.line, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        if b == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), LoadError> {
        while self.pos < self.bytes.len() {
            if self.starts_with(end) {
                self.skip(end.len());
                return Ok(());
            }
            self.bump();
        }
        Err(self.error(format!("unterminated construct, expected {end}")))
    }

    /// Skip whitespace, comments, PIs, and the XML declaration.
    fn skip_misc(&mut self) -> Result<(), LoadError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip(4);
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip(2);
                self.skip_until("?>")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, LoadError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn attribute_value(&mut self) -> Result<String, LoadError> {
        let quote = self.bump().ok_or_else(|| self.error("expected quote"))?;
        if quote != b'"' && quote != b'\'' {
            return Err(self.error("attribute value must be quoted"));
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.bump();
                return decode_entities(&raw).map_err(|m| self.error(m));
            }
            self.bump();
        }
        Err(self.error("unterminated attribute value"))
    }

    fn element(&mut self, depth: usize) -> Result<XmlNode, LoadError> {
        if depth >= MAX_ELEMENT_DEPTH {
            return Err(self.error(format!(
                "element nesting deeper than {MAX_ELEMENT_DEPTH} levels"
            )));
        }
        if self.bump() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        let name = self.name()?;
        let mut node = XmlNode {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        };
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    if self.bump() != Some(b'>') {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    return Ok(node); // self-closing
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.error(format!("expected '=' after attribute {key}")));
                    }
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    node.attributes.push((key, value));
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }
        // Content.
        loop {
            if self.starts_with("</") {
                self.skip(2);
                let close = self.name()?;
                if close != node.name {
                    return Err(self.error(format!(
                        "mismatched close tag: expected </{}>, found </{close}>",
                        node.name
                    )));
                }
                self.skip_ws();
                if self.bump() != Some(b'>') {
                    return Err(self.error("expected '>' in close tag"));
                }
                node.text = node.text.trim().to_owned();
                return Ok(node);
            } else if self.starts_with("<!--") {
                self.skip(4);
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.skip(9);
                let start = self.pos;
                let mut end = None;
                while self.pos < self.bytes.len() {
                    if self.starts_with("]]>") {
                        end = Some(self.pos);
                        break;
                    }
                    self.bump();
                }
                let Some(end) = end else {
                    return Err(self.error("unterminated CDATA"));
                };
                node.text
                    .push_str(&String::from_utf8_lossy(&self.bytes[start..end]));
                self.skip(3);
            } else if self.starts_with("<?") {
                self.skip(2);
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                node.children.push(self.element(depth + 1)?);
            } else if self.peek().is_some() {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.bump();
                }
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                node.text
                    .push_str(&decode_entities(&raw).map_err(|m| self.error(m))?);
            } else {
                return Err(self.error(format!("unterminated element <{}>", node.name)));
            }
        }
    }
}

/// Decode the five predefined entities plus numeric character references.
fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "entity without terminating ';'".to_owned())?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad char ref &{entity};"))?;
                out.push(char::from_u32(code).ok_or("invalid char ref")?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad char ref &{entity};"))?;
                out.push(char::from_u32(code).ok_or("invalid char ref")?);
            }
            _ => return Err(format!("unknown entity &{entity};")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let doc = parse(r#"<a x="1"><b>hi</b><b y='2'/></a>"#).unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.attr("x"), Some("1"));
        assert_eq!(doc.children.len(), 2);
        assert_eq!(doc.children[0].text, "hi");
        assert_eq!(doc.children[1].attr("y"), Some("2"));
    }

    #[test]
    fn declaration_comments_and_doctype_skipped() {
        let doc = parse("<?xml version=\"1.0\"?>\n<!DOCTYPE a>\n<!-- hi -->\n<a/>\n<!-- bye -->")
            .unwrap();
        assert_eq!(doc.name, "a");
    }

    #[test]
    fn namespace_prefixes_kept_and_strippable() {
        let doc = parse(r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="e"/></xs:schema>"#).unwrap();
        assert_eq!(doc.name, "xs:schema");
        assert_eq!(doc.local_name(), "schema");
        assert_eq!(doc.children[0].local_name(), "element");
        assert_eq!(doc.children[0].attr("name"), Some("e"));
    }

    #[test]
    fn entities_decoded_in_text_and_attributes() {
        let doc = parse(r#"<a t="&lt;x&gt; &#65;">Tom &amp; Jerry &apos;&quot;</a>"#).unwrap();
        assert_eq!(doc.attr("t"), Some("<x> A"));
        assert_eq!(doc.text, "Tom & Jerry '\"");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        assert_eq!(doc.text, "1 < 2 && 3 > 2");
    }

    #[test]
    fn mismatched_tags_error_with_line() {
        let err = parse("<a>\n<b>\n</a>").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a x=>").is_err());
        assert!(parse("<a x=\"1>").is_err());
        assert!(parse("<a><![CDATA[zzz</a>").is_err());
    }

    #[test]
    fn content_after_root_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn mixed_content_text_concatenated() {
        let doc = parse("<a> x <b/> y </a>").unwrap();
        assert_eq!(doc.text, "x  y");
        assert_eq!(doc.children.len(), 1);
    }

    #[test]
    fn find_descends_depth_first() {
        let doc = parse("<a><b><c k=\"deep\"/></b><c k=\"shallow\"/></a>").unwrap();
        assert_eq!(doc.find("c").unwrap().attr("k"), Some("deep"));
        assert!(doc.find("zzz").is_none());
    }

    #[test]
    fn children_named_filters_by_local_name() {
        let doc = parse(r#"<s><xs:element/><other/><xs:element/></s>"#).unwrap();
        assert_eq!(doc.children_named("element").count(), 2);
        assert!(doc.child_named("other").is_some());
    }
}
