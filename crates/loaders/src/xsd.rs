//! XML Schema (XSD) subset loader.
//!
//! Covers the constructs that message-format schemata (the paper's
//! running purchase-order example, Figure 2) actually use:
//!
//! * `xs:element` with `name` + `type`, or with an inline
//!   `xs:complexType`;
//! * `xs:complexType` / `xs:sequence` / `xs:all` / `xs:choice` nesting;
//! * `xs:attribute` with built-in types;
//! * named global `xs:complexType`s referenced by `type="..."`;
//! * `xs:simpleType` with `xs:restriction`/`xs:enumeration` — imported
//!   as a first-class semantic domain (coding scheme), per §2;
//! * `xs:annotation`/`xs:documentation` — imported as the element's
//!   `documentation` annotation.

use crate::error::LoadError;
use crate::loader::SchemaLoader;
use crate::xml::{parse, XmlNode};
use iwb_model::{
    DataType, Domain, EdgeKind, ElementId, ElementKind, Metamodel, SchemaElement, SchemaGraph,
};
use std::collections::HashMap;

/// Loader for the XSD subset.
#[derive(Debug, Default, Clone, Copy)]
pub struct XsdLoader;

impl SchemaLoader for XsdLoader {
    fn format(&self) -> &'static str {
        "xsd"
    }

    fn load(&self, text: &str, schema_id: &str) -> Result<SchemaGraph, LoadError> {
        let root = parse(text)?;
        if root.local_name() != "schema" {
            return Err(LoadError::new("xsd", "document root is not xs:schema"));
        }
        let mut graph = SchemaGraph::new(schema_id, Metamodel::Xml);

        // Index named global complex and simple types.
        let complex_types: HashMap<&str, &XmlNode> = root
            .children_named("complexType")
            .filter_map(|n| n.attr("name").map(|name| (name, n)))
            .collect();
        let mut domains: HashMap<String, ElementId> = HashMap::new();
        for st in root.children_named("simpleType") {
            if let Some(name) = st.attr("name") {
                if let Some(domain) = simple_type_to_domain(name, st) {
                    let id = domain.attach(&mut graph);
                    domains.insert(name.to_owned(), id);
                }
            }
        }

        let ctx = Context {
            complex_types,
            domains,
        };
        if let Some(doc) = documentation_of(&root) {
            let root_id = graph.root();
            graph.element_mut(root_id).documentation = Some(doc);
        }
        for el in root.children_named("element") {
            let parent = graph.root();
            load_element(el, parent, &mut graph, &ctx, 0)?;
        }
        Ok(graph)
    }
}

struct Context<'a> {
    complex_types: HashMap<&'a str, &'a XmlNode>,
    domains: HashMap<String, ElementId>,
}

const MAX_DEPTH: usize = 64;

fn load_element(
    el: &XmlNode,
    parent: ElementId,
    graph: &mut SchemaGraph,
    ctx: &Context<'_>,
    depth: usize,
) -> Result<(), LoadError> {
    if depth > MAX_DEPTH {
        return Err(LoadError::new(
            "xsd",
            "element nesting exceeds supported depth",
        ));
    }
    let name = el
        .attr("name")
        .or_else(|| el.attr("ref"))
        .ok_or_else(|| LoadError::new("xsd", "xs:element without name or ref"))?;
    let declared_type = el.attr("type");
    let inline_complex = el.child_named("complexType");

    let is_complex = inline_complex.is_some()
        || declared_type
            .map(|t| ctx.complex_types.contains_key(strip_prefix(t)))
            .unwrap_or(false);

    if is_complex {
        let mut node = SchemaElement::new(ElementKind::XmlElement, name);
        node.documentation = documentation_of(el);
        let id = graph.add_child(parent, EdgeKind::ContainsElement, node);
        let body = inline_complex
            .or_else(|| declared_type.and_then(|t| ctx.complex_types.get(strip_prefix(t)).copied()))
            .ok_or_else(|| {
                LoadError::new("xsd", format!("missing complex type body for {name:?}"))
            })?;
        load_complex_body(body, id, graph, ctx, depth + 1)?;
    } else {
        // Leaf: map the declared type; enumerated simple types become
        // coded attributes linked to their domain.
        let mut node = SchemaElement::new(ElementKind::Attribute, name);
        node.documentation = documentation_of(el);
        let type_name = declared_type.map(strip_prefix);
        let domain_link = type_name.and_then(|t| ctx.domains.get(t).copied());
        node.data_type = Some(match (type_name, domain_link) {
            (Some(t), Some(_)) => DataType::Coded(t.to_owned()),
            (Some(t), None) => builtin_type(t),
            (None, _) => inline_simple_type(el)
                .map(DataType::Coded)
                .unwrap_or(DataType::Text),
        });
        let id = graph.add_child(parent, EdgeKind::ContainsAttribute, node);
        if let Some(dom) = domain_link {
            graph.add_cross_edge(id, EdgeKind::HasDomain, dom);
        }
    }
    Ok(())
}

fn load_complex_body(
    body: &XmlNode,
    parent: ElementId,
    graph: &mut SchemaGraph,
    ctx: &Context<'_>,
    depth: usize,
) -> Result<(), LoadError> {
    // Attributes declared directly on the complex type.
    for attr in body.children_named("attribute") {
        let name = attr
            .attr("name")
            .ok_or_else(|| LoadError::new("xsd", "xs:attribute without name"))?;
        let mut node = SchemaElement::new(ElementKind::Attribute, name);
        node.documentation = documentation_of(attr);
        node.data_type = Some(
            attr.attr("type")
                .map(|t| builtin_type(strip_prefix(t)))
                .unwrap_or(DataType::Text),
        );
        graph.add_child(parent, EdgeKind::ContainsAttribute, node);
    }
    // Model groups.
    for group in ["sequence", "all", "choice"] {
        for g in body.children_named(group) {
            for el in g.children_named("element") {
                load_element(el, parent, graph, ctx, depth)?;
            }
            // Nested groups one level deep (sequence inside choice etc.).
            for inner_name in ["sequence", "all", "choice"] {
                for inner in g.children_named(inner_name) {
                    for el in inner.children_named("element") {
                        load_element(el, parent, graph, ctx, depth)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Extract `xs:annotation/xs:documentation` text.
fn documentation_of(node: &XmlNode) -> Option<String> {
    let ann = node.child_named("annotation")?;
    let doc = ann.child_named("documentation")?;
    let text = doc.text.trim();
    if text.is_empty() {
        None
    } else {
        Some(text.to_owned())
    }
}

/// Convert an `xs:simpleType` with enumeration facets into a domain.
fn simple_type_to_domain(name: &str, st: &XmlNode) -> Option<Domain> {
    let restriction = st.child_named("restriction")?;
    let mut domain = Domain::new(name);
    domain.documentation = documentation_of(st);
    for e in restriction.children_named("enumeration") {
        let value = e.attr("value")?;
        match documentation_of(e) {
            Some(doc) => domain = domain.with_value(value, doc),
            None => domain.values.push(iwb_model::DomainValue::bare(value)),
        }
    }
    if domain.values.is_empty() {
        None
    } else {
        Some(domain)
    }
}

/// Inline `xs:simpleType` on a leaf element — returns the domain name if
/// it encodes an (anonymous) enumeration; anonymous domains are not
/// attached, the leaf just becomes text.
fn inline_simple_type(el: &XmlNode) -> Option<String> {
    el.child_named("simpleType")
        .and_then(|st| st.child_named("restriction"))
        .and_then(|r| r.attr("base"))
        .map(|b| strip_prefix(b).to_owned())
}

fn strip_prefix(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Map XSD built-in simple types onto the canonical [`DataType`]s.
fn builtin_type(local: &str) -> DataType {
    match local {
        "string" | "normalizedString" | "token" | "anyURI" => DataType::Text,
        "int" | "integer" | "long" | "short" | "byte" | "nonNegativeInteger"
        | "positiveInteger" | "unsignedInt" | "unsignedLong" => DataType::Integer,
        "decimal" | "float" | "double" => DataType::Decimal,
        "boolean" => DataType::Boolean,
        "date" | "gYear" | "gYearMonth" => DataType::Date,
        "dateTime" | "time" => DataType::DateTime,
        "base64Binary" | "hexBinary" => DataType::Binary,
        other => DataType::Other(other.to_owned()),
    }
}

/// The purchase-order source schema of the paper's Figure 2, as XSD.
pub const FIG2_SOURCE_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="purchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="shipTo">
          <xs:annotation><xs:documentation>The shipping destination for this purchase order.</xs:documentation></xs:annotation>
          <xs:complexType>
            <xs:sequence>
              <xs:element name="firstName" type="xs:string">
                <xs:annotation><xs:documentation>Given name of the receiving party.</xs:documentation></xs:annotation>
              </xs:element>
              <xs:element name="lastName" type="xs:string">
                <xs:annotation><xs:documentation>Family name of the receiving party.</xs:documentation></xs:annotation>
              </xs:element>
              <xs:element name="subtotal" type="xs:decimal">
                <xs:annotation><xs:documentation>Pre-tax sum of line item amounts.</xs:documentation></xs:annotation>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"#;

/// The invoice target schema of the paper's Figure 2, as XSD.
pub const FIG2_TARGET_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="invoice">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="shippingInfo">
          <xs:annotation><xs:documentation>Shipping information for the invoiced order.</xs:documentation></xs:annotation>
          <xs:complexType>
            <xs:sequence>
              <xs:element name="name" type="xs:string">
                <xs:annotation><xs:documentation>Full name of the receiving party, family name first.</xs:documentation></xs:annotation>
              </xs:element>
              <xs:element name="total" type="xs:decimal">
                <xs:annotation><xs:documentation>Total amount due including tax.</xs:documentation></xs:annotation>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_source_loads() {
        let g = XsdLoader.load(FIG2_SOURCE_XSD, "purchaseOrder").unwrap();
        assert_eq!(g.metamodel(), Metamodel::Xml);
        let ship = g
            .find_by_path("purchaseOrder/purchaseOrder/shipTo")
            .unwrap();
        assert_eq!(g.children(ship).len(), 3);
        assert!(g
            .element(ship)
            .documentation
            .as_deref()
            .unwrap()
            .contains("shipping destination"));
        let sub = g
            .find_by_path("purchaseOrder/purchaseOrder/shipTo/subtotal")
            .unwrap();
        assert_eq!(g.element(sub).data_type, Some(DataType::Decimal));
        assert!(iwb_model::validate(&g).is_empty());
    }

    #[test]
    fn named_complex_types_resolve() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:complexType name="AddressType">
            <xs:sequence>
              <xs:element name="street" type="xs:string"/>
              <xs:element name="zip" type="xs:string"/>
            </xs:sequence>
            <xs:attribute name="country" type="xs:string"/>
          </xs:complexType>
          <xs:element name="shipTo" type="AddressType"/>
          <xs:element name="billTo" type="AddressType"/>
        </xs:schema>"#;
        let g = XsdLoader.load(xsd, "s").unwrap();
        assert!(g.find_by_path("s/shipTo/street").is_some());
        assert!(g.find_by_path("s/billTo/zip").is_some());
        assert!(g.find_by_path("s/shipTo/country").is_some());
    }

    #[test]
    fn enumerated_simple_types_become_domains() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:simpleType name="runwayType">
            <xs:restriction base="xs:string">
              <xs:enumeration value="ASP"><xs:annotation><xs:documentation>Asphalt</xs:documentation></xs:annotation></xs:enumeration>
              <xs:enumeration value="CON"><xs:annotation><xs:documentation>Concrete</xs:documentation></xs:annotation></xs:enumeration>
            </xs:restriction>
          </xs:simpleType>
          <xs:element name="runway">
            <xs:complexType>
              <xs:sequence>
                <xs:element name="surface" type="runwayType"/>
              </xs:sequence>
            </xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let g = XsdLoader.load(xsd, "atc").unwrap();
        let surface = g.find_by_path("atc/runway/surface").unwrap();
        assert_eq!(
            g.element(surface).data_type,
            Some(DataType::Coded("runwayType".into()))
        );
        let dom_edge = g.cross_edges_from(surface).next().unwrap();
        assert_eq!(dom_edge.kind, EdgeKind::HasDomain);
        let dom = Domain::detach(&g, dom_edge.to).unwrap();
        assert_eq!(dom.values.len(), 2);
        assert_eq!(
            dom.value("ASP").unwrap().meaning.as_deref(),
            Some("Asphalt")
        );
    }

    #[test]
    fn choice_and_all_groups_supported() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="contact">
            <xs:complexType>
              <xs:choice>
                <xs:element name="phone" type="xs:string"/>
                <xs:element name="email" type="xs:string"/>
              </xs:choice>
            </xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let g = XsdLoader.load(xsd, "s").unwrap();
        assert!(g.find_by_path("s/contact/phone").is_some());
        assert!(g.find_by_path("s/contact/email").is_some());
    }

    #[test]
    fn non_schema_root_rejected() {
        assert!(XsdLoader.load("<foo/>", "s").is_err());
    }

    #[test]
    fn malformed_xml_propagates_error() {
        assert!(XsdLoader
            .load("<xs:schema><xs:element></xs:schema>", "s")
            .is_err());
    }

    #[test]
    fn builtin_type_mapping() {
        assert_eq!(builtin_type("string"), DataType::Text);
        assert_eq!(builtin_type("positiveInteger"), DataType::Integer);
        assert_eq!(builtin_type("double"), DataType::Decimal);
        assert_eq!(builtin_type("dateTime"), DataType::DateTime);
        assert_eq!(builtin_type("duration"), DataType::Other("duration".into()));
    }
}
