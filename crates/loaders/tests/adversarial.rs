//! Adversarial-corpus robustness tests: a fixed corpus of malformed
//! documents — truncated files, bytes that were never valid UTF-8,
//! unclosed tags, absurd nesting — fed to every loader through
//! `catch_unwind`. Each loader must return a structured `LoadError`
//! (or, for near-valid prefixes, an `Ok`), never panic, and never
//! overflow the stack.
//!
//! Complements `robustness.rs` (randomized proptest sweeps) with the
//! specific shapes attackers and broken exporters actually produce.

use iwb_loaders::{
    parse_instance, ErLoader, LoaderRegistry, SchemaLoader, SqlDdlLoader, XsdLoader,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Valid seeds that the corpus truncates and corrupts.
const VALID_XSD: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="po">
    <xs:complexType><xs:sequence>
      <xs:element name="item" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

const VALID_ER: &str = "entity Airport \"An airport.\" {\n  ident : text \"ICAO code.\"\n}\n";

const VALID_DDL: &str =
    "CREATE TABLE AIRPORT (IDENT VARCHAR(4) PRIMARY KEY, ELEVATION_FT INTEGER);";

const VALID_XML: &str = "<rows><row><ident>KSEA</ident></row></rows>";

/// Every truncation point of `text` (prefixes on char boundaries).
fn truncations(text: &str) -> Vec<String> {
    text.char_indices()
        .map(|(i, _)| text[..i].to_owned())
        .chain([text.to_owned()])
        .collect()
}

/// Bytes that are not valid UTF-8, decoded the way file readers feed
/// loaders (lossy): the replacement characters must not trip parsers.
fn bad_utf8_corpus() -> Vec<String> {
    let raw: Vec<Vec<u8>> = vec![
        vec![0xff, 0xfe, b'<', b'a', b'>', 0x80, b'<', b'/', b'a', b'>'],
        vec![b'e', b'n', b't', b'i', b't', b'y', b' ', 0xc3, b'{', b'}'],
        vec![0xf0, 0x28, 0x8c, 0xbc],
        [VALID_DDL.as_bytes(), &[0x80, 0x81, 0x82]].concat(),
    ];
    raw.iter()
        .map(|b| String::from_utf8_lossy(b).into_owned())
        .collect()
}

/// The shapes the issue calls out, plus close variants.
fn handcrafted_corpus() -> Vec<String> {
    let deep_open = "<a>".repeat(4_000);
    let deep_er = format!("entity E {{ {} }}", "f : text ".repeat(2_000));
    vec![
        String::new(),
        " ".to_owned(),
        "<".to_owned(),
        "<a".to_owned(),
        "<a>".to_owned(),
        "<a><b></a></b>".to_owned(),
        "<a attr=>".to_owned(),
        "<a attr=\"unterminated>".to_owned(),
        "<a><![CDATA[never closed".to_owned(),
        "<!-- never closed".to_owned(),
        deep_open.clone(),
        format!("{deep_open}x"),
        "entity {".to_owned(),
        "entity E { f : }".to_owned(),
        "entity E { f : text \"unterminated".to_owned(),
        deep_er,
        "CREATE TABLE (".to_owned(),
        "CREATE TABLE T (C".to_owned(),
        "CREATE TABLE T (C VARCHAR(".to_owned(),
        "CREATE TABLE T (C INTEGER,,);".to_owned(),
        ");(,.".repeat(500),
    ]
}

/// Run one loader over the whole corpus inside catch_unwind; panics
/// and stack-depth blowups fail the test with the offending input.
fn assert_total(tag: &str, f: impl Fn(&str)) {
    let mut corpus = handcrafted_corpus();
    corpus.extend(bad_utf8_corpus());
    for seed in [VALID_XSD, VALID_ER, VALID_DDL, VALID_XML] {
        corpus.extend(truncations(seed));
    }
    for (i, input) in corpus.iter().enumerate() {
        let result = catch_unwind(AssertUnwindSafe(|| f(input)));
        assert!(
            result.is_ok(),
            "{tag} panicked on corpus[{i}] ({} bytes): {:?}",
            input.len(),
            &input[..input.len().min(80)]
        );
    }
}

#[test]
fn xsd_loader_survives_the_adversarial_corpus() {
    assert_total("xsd", |input| {
        let _ = XsdLoader.load(input, "adversarial");
    });
}

#[test]
fn er_loader_survives_the_adversarial_corpus() {
    assert_total("er", |input| {
        let _ = ErLoader.load(input, "adversarial");
    });
}

#[test]
fn sql_ddl_loader_survives_the_adversarial_corpus() {
    assert_total("sql-ddl", |input| {
        let _ = SqlDdlLoader.load(input, "adversarial");
    });
}

#[test]
fn xml_parser_and_instance_import_survive_the_adversarial_corpus() {
    assert_total("xml", |input| {
        let _ = iwb_loaders::xml::parse(input);
        let _ = parse_instance(input);
    });
}

#[test]
fn registry_dispatch_survives_the_adversarial_corpus() {
    let registry = LoaderRegistry::with_builtin();
    assert_total("registry", |input| {
        for name in ["a.xsd", "a.er", "a.sql", "a.xml", "a", ""] {
            let _ = registry.load_named(name, input);
        }
    });
}

#[test]
fn absurd_nesting_is_rejected_with_an_error_not_a_stack_overflow() {
    // Depth 4000 is ~16x the parser's cap; must come back as Err.
    let mut doc = "<a>".repeat(4_000);
    doc.push_str("deep");
    doc.push_str(&"</a>".repeat(4_000));
    let err = iwb_loaders::xml::parse(&doc).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
    // At or under the cap, deep-but-sane documents still parse.
    let mut ok_doc = "<a>".repeat(200);
    ok_doc.push_str(&"</a>".repeat(200));
    assert!(iwb_loaders::xml::parse(&ok_doc).is_ok());
}

#[test]
fn truncated_valid_documents_error_with_positions_not_panics() {
    for input in truncations(VALID_XSD) {
        if input.len() < VALID_XSD.len() {
            // Every strict prefix is malformed; the error must be
            // structured (the Display form names the format).
            if let Err(e) = XsdLoader.load(&input, "trunc") {
                let msg = e.to_string();
                assert!(msg.contains("xsd") || msg.contains("xml"), "{msg}");
            }
        }
    }
    for input in truncations(VALID_DDL) {
        if let Err(e) = SqlDdlLoader.load(&input, "trunc") {
            assert!(e.to_string().contains("sql-ddl"), "{}", e.to_string());
        }
    }
}
