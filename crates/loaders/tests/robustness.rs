//! Fuzz-style robustness properties: loaders must reject garbage with
//! an error, never panic, on arbitrary input.

use iwb_loaders::{
    parse_instance, ErLoader, LoaderRegistry, SchemaLoader, SqlDdlLoader, XsdLoader,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The XML parser never panics on arbitrary text.
    #[test]
    fn xml_parser_total(input in ".{0,200}") {
        let _ = iwb_loaders::xml::parse(&input);
    }

    /// …including angle-bracket-dense text that looks almost like XML.
    #[test]
    fn xml_parser_total_on_taglike(input in "[<>/a-z\"= ]{0,120}") {
        let _ = iwb_loaders::xml::parse(&input);
    }

    /// The XSD loader never panics.
    #[test]
    fn xsd_loader_total(input in "[<>/a-zA-Z\":= \\n]{0,150}") {
        let _ = XsdLoader.load(&input, "fuzz");
    }

    /// The SQL DDL loader never panics.
    #[test]
    fn sql_loader_total(input in "[A-Za-z0-9(),;'\\. \\n]{0,200}") {
        let _ = SqlDdlLoader.load(&input, "fuzz");
    }

    /// The ER loader never panics.
    #[test]
    fn er_loader_total(input in "[a-z{}:\"#, \\n-]{0,200}") {
        let _ = ErLoader.load(&input, "fuzz");
    }

    /// Instance XML import never panics.
    #[test]
    fn instance_import_total(input in ".{0,150}") {
        let _ = parse_instance(&input);
    }

    /// The registry dispatcher never panics on weird file names.
    #[test]
    fn registry_dispatch_total(name in ".{0,40}", body in ".{0,60}") {
        let r = LoaderRegistry::with_builtin();
        let _ = r.load_named(&name, &body);
    }
}

/// Mutation-based robustness: take a valid document and corrupt it at
/// one position — the loader must still return (Ok or Err, no panic).
#[test]
fn mutated_valid_inputs_never_panic() {
    let xsd = iwb_loaders::xsd::FIG2_SOURCE_XSD;
    let bytes: Vec<char> = xsd.chars().collect();
    for pos in (0..bytes.len()).step_by(17) {
        // Deletion.
        let mut dropped: String = bytes[..pos].iter().collect();
        dropped.extend(bytes[pos + 1..].iter());
        let _ = XsdLoader.load(&dropped, "mut");
        // Substitution.
        let mut swapped = bytes.clone();
        swapped[pos] = '<';
        let s: String = swapped.into_iter().collect();
        let _ = XsdLoader.load(&s, "mut");
    }

    let ddl = "CREATE TABLE T (A INT PRIMARY KEY, B VARCHAR(10) NOT NULL);";
    let chars: Vec<char> = ddl.chars().collect();
    for pos in 0..chars.len() {
        let mut truncated: String = chars[..pos].iter().collect();
        truncated.push('(');
        let _ = SqlDdlLoader.load(&truncated, "mut");
    }
}
