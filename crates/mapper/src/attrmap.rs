//! Attribute transformations (task 5, §3.3).
//!
//! "Sometimes one provides a transformation from source to target
//! values, either scalar (e.g., Age from Birthdate), or by aggregation
//! (e.g., AverageSalaryByDepartment from Salary). Other transforms we
//! have seen include pushing metadata down to data (e.g., to populate a
//! type attribute or timestamp), and populating a comment (in the
//! target) to store source attribute information that has no
//! corresponding attribute."

use crate::expr::{Env, EvalError, Expr};
use crate::instance::Node;
use crate::value::Value;

/// An aggregation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of non-null values.
    Count,
}

impl AggregateOp {
    /// Apply over a value slice; nulls and non-numerics are skipped
    /// (except for Count, which counts non-nulls).
    pub fn apply(self, values: &[Value]) -> Value {
        if self == AggregateOp::Count {
            return Value::Num(values.iter().filter(|v| !v.is_null()).count() as f64);
        }
        let nums: Vec<f64> = values.iter().filter_map(Value::as_num).collect();
        if nums.is_empty() {
            return Value::Null;
        }
        match self {
            AggregateOp::Sum => Value::Num(nums.iter().sum()),
            AggregateOp::Avg => Value::Num(nums.iter().sum::<f64>() / nums.len() as f64),
            AggregateOp::Min => Value::Num(nums.iter().copied().fold(f64::INFINITY, f64::min)),
            AggregateOp::Max => Value::Num(nums.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            AggregateOp::Count => unreachable!("handled above"),
        }
    }
}

/// How one target attribute is populated.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeTransformation {
    /// A scalar expression over the bound source entity (`$src`).
    Scalar(Expr),
    /// An aggregation over a repeated child path of the source entity
    /// (e.g. `Avg` over `employees/salary`).
    Aggregate {
        /// The operator.
        op: AggregateOp,
        /// Path (relative to the bound entity) whose occurrences are
        /// aggregated; the last segment names the leaf.
        path: String,
    },
    /// Metadata pushed down to data: a constant captured from schema
    /// metadata (type tags, source-system names, load timestamps).
    MetadataPushdown(Value),
    /// Preserve a source attribute that has no corresponding target
    /// attribute inside a target comment: renders `name=value`.
    CommentPreserving {
        /// Source attribute (path relative to the bound entity).
        source_path: String,
    },
}

impl AttributeTransformation {
    /// Compute the target attribute value for one source entity
    /// instance.
    pub fn apply(&self, entity: &Node) -> Result<Value, EvalError> {
        match self {
            AttributeTransformation::Scalar(expr) => {
                let mut env = Env::new();
                env.bind_node("src", entity.clone());
                expr.eval(&env)
            }
            AttributeTransformation::Aggregate { op, path } => {
                Ok(op.apply(&collect_path(entity, path)))
            }
            AttributeTransformation::MetadataPushdown(v) => Ok(v.clone()),
            AttributeTransformation::CommentPreserving { source_path } => {
                let v = entity.value_at(source_path);
                let leaf = source_path.rsplit('/').next().unwrap_or(source_path);
                Ok(Value::Str(format!("{leaf}={}", v.as_str())))
            }
        }
    }
}

/// Collect every value at `path` under `node`, following repeated
/// children at each step.
fn collect_path(node: &Node, path: &str) -> Vec<Value> {
    let mut frontier = vec![node];
    for seg in path.split('/').filter(|s| !s.is_empty()) {
        let mut next = Vec::new();
        for n in frontier {
            next.extend(n.children_named(seg));
        }
        frontier = next;
    }
    frontier
        .into_iter()
        .filter_map(|n| n.value.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn dept() -> Node {
        Node::elem("DEPARTMENT")
            .with_leaf("name", "ATC")
            .with(
                Node::elem("employee")
                    .with_leaf("salary", 100.0)
                    .with_leaf("dob", "1990-03-02"),
            )
            .with(Node::elem("employee").with_leaf("salary", 140.0))
            .with(Node::elem("employee").with_leaf("salary", 120.0))
    }

    #[test]
    fn scalar_age_from_birthdate() {
        let t = AttributeTransformation::Scalar(
            parse_expr("age-at(data($src/employee/dob), \"2006-01-01\")").unwrap(),
        );
        assert_eq!(t.apply(&dept()).unwrap().as_num(), Some(15.0));
    }

    #[test]
    fn aggregate_average_salary_by_department() {
        let t = AttributeTransformation::Aggregate {
            op: AggregateOp::Avg,
            path: "employee/salary".into(),
        };
        assert_eq!(t.apply(&dept()).unwrap().as_num(), Some(120.0));
        let sum = AttributeTransformation::Aggregate {
            op: AggregateOp::Sum,
            path: "employee/salary".into(),
        };
        assert_eq!(sum.apply(&dept()).unwrap().as_num(), Some(360.0));
        let count = AttributeTransformation::Aggregate {
            op: AggregateOp::Count,
            path: "employee/salary".into(),
        };
        assert_eq!(count.apply(&dept()).unwrap().as_num(), Some(3.0));
        let min = AttributeTransformation::Aggregate {
            op: AggregateOp::Min,
            path: "employee/salary".into(),
        };
        assert_eq!(min.apply(&dept()).unwrap().as_num(), Some(100.0));
        let max = AttributeTransformation::Aggregate {
            op: AggregateOp::Max,
            path: "employee/salary".into(),
        };
        assert_eq!(max.apply(&dept()).unwrap().as_num(), Some(140.0));
    }

    #[test]
    fn aggregate_over_missing_path_is_null() {
        let t = AttributeTransformation::Aggregate {
            op: AggregateOp::Avg,
            path: "nothing/here".into(),
        };
        assert_eq!(t.apply(&dept()).unwrap(), Value::Null);
    }

    #[test]
    fn metadata_pushdown_emits_constant() {
        let t = AttributeTransformation::MetadataPushdown(Value::from("personnel-db-v2"));
        assert_eq!(t.apply(&dept()).unwrap(), Value::from("personnel-db-v2"));
    }

    #[test]
    fn comment_preserving_keeps_orphan_attributes() {
        let t = AttributeTransformation::CommentPreserving {
            source_path: "name".into(),
        };
        assert_eq!(t.apply(&dept()).unwrap(), Value::from("name=ATC"));
    }
}
