//! Domain transformations (task 4, §3.3).
//!
//! "For each pair of corresponding domains, a transformation must be
//! developed that relates values from the source domain to values in the
//! target domain. In the simplest case, there is a direct correspondence
//! … it is often the case that an algorithmic transformation must be
//! developed, for example, to convert from feet to meters … In the most
//! detailed case, the transformation can best be expressed using a
//! lookup table (e.g., to convert from one coding scheme to a related
//! coding scheme)."

use crate::expr::{Env, EvalError, Expr};
use crate::value::Value;
use iwb_model::Domain;
use std::collections::HashMap;

/// A code → code lookup table between two coding schemes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LookupTable {
    entries: HashMap<String, String>,
    /// Emitted when a source code has no entry (None → `Value::Null`).
    default: Option<String>,
}

impl LookupTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one code mapping.
    pub fn with(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.entries.insert(from.into(), to.into());
        self
    }

    /// Set the default for unmapped codes.
    pub fn with_default(mut self, default: impl Into<String>) -> Self {
        self.default = Some(default.into());
        self
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no mappings are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Translate a code.
    pub fn translate(&self, code: &str) -> Value {
        match self.entries.get(code) {
            Some(v) => Value::Str(v.clone()),
            None => self
                .default
                .as_ref()
                .map(|d| Value::Str(d.clone()))
                .unwrap_or(Value::Null),
        }
    }

    /// Build a table by aligning two documented domains on their value
    /// *meanings* (case-insensitive exact match of the documentation) —
    /// how an engineer would derive the ASP→1 style mapping when the
    /// codes were renamed but the meanings survived.
    pub fn align_by_meaning(source: &Domain, target: &Domain) -> LookupTable {
        let mut table = LookupTable::new();
        for sv in &source.values {
            let Some(sm) = &sv.meaning else { continue };
            let hit = target.values.iter().find(|tv| {
                tv.meaning
                    .as_deref()
                    .map(|tm| tm.eq_ignore_ascii_case(sm))
                    .unwrap_or(false)
            });
            if let Some(tv) = hit {
                table.entries.insert(sv.code.clone(), tv.code.clone());
            }
        }
        table
    }
}

/// A domain transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainTransformation {
    /// Values carry over unchanged ("a direct correspondence (i.e., no
    /// transformation is needed)").
    Direct,
    /// An algorithmic transformation: an expression over `$value`.
    Algorithmic(Expr),
    /// A code lookup table between coding schemes.
    Lookup(LookupTable),
}

impl DomainTransformation {
    /// Apply the transformation to one value.
    pub fn apply(&self, value: &Value) -> Result<Value, EvalError> {
        match self {
            DomainTransformation::Direct => Ok(value.clone()),
            DomainTransformation::Algorithmic(expr) => {
                let mut env = Env::new();
                env.bind_value("value", value.clone());
                expr.eval(&env)
            }
            DomainTransformation::Lookup(table) => Ok(table.translate(&value.as_str())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn direct_passes_through() {
        let t = DomainTransformation::Direct;
        assert_eq!(t.apply(&Value::from("ASP")).unwrap(), Value::from("ASP"));
    }

    #[test]
    fn algorithmic_feet_to_meters() {
        let t = DomainTransformation::Algorithmic(parse_expr("feet-to-meters($value)").unwrap());
        let out = t.apply(&Value::from(100.0)).unwrap();
        assert!((out.as_num().unwrap() - 30.48).abs() < 1e-9);
    }

    #[test]
    fn lookup_with_default_and_miss() {
        let table = LookupTable::new()
            .with("ASP", "1")
            .with("CON", "2")
            .with_default("0");
        let t = DomainTransformation::Lookup(table);
        assert_eq!(t.apply(&Value::from("ASP")).unwrap(), Value::from("1"));
        assert_eq!(t.apply(&Value::from("XXX")).unwrap(), Value::from("0"));
        let no_default = DomainTransformation::Lookup(LookupTable::new().with("A", "B"));
        assert_eq!(no_default.apply(&Value::from("Z")).unwrap(), Value::Null);
    }

    #[test]
    fn align_by_meaning_builds_code_bridge() {
        let src = Domain::new("surface")
            .with_value("ASP", "Asphalt surface")
            .with_value("CON", "Concrete surface")
            .with_value("UNK", "Unknown");
        let tgt = Domain::new("sfc")
            .with_value("1", "asphalt surface")
            .with_value("2", "Concrete surface");
        let table = LookupTable::align_by_meaning(&src, &tgt);
        assert_eq!(table.len(), 2);
        assert_eq!(table.translate("ASP"), Value::from("1"));
        assert_eq!(table.translate("CON"), Value::from("2"));
        assert_eq!(table.translate("UNK"), Value::Null);
    }
}
