//! Entity transformations (task 6, §3.3).
//!
//! "In the simplest case, a direct 1:1 mapping can be established.
//! Alternatively, multiple entities may need to be combined (e.g., using
//! join or union) to generate a single target entity. Or, a single
//! entity may need to be split into multiple entities (e.g., based on
//! the value of some attribute), which effectively elevates data in the
//! source to metadata in the target."

use crate::instance::Node;
use crate::value::Value;

/// How target entity instances are derived from source instances.
#[derive(Debug, Clone, PartialEq)]
pub enum EntityMapping {
    /// 1:1 — each occurrence of the source path yields one target
    /// instance.
    Direct {
        /// Path (relative to the source document root) whose occurrences
        /// are the source entities.
        source: String,
    },
    /// Join two source entity sets on equal attribute values. The
    /// resulting instance carries the left entity's children followed by
    /// the right entity's children under one node.
    Join {
        /// Left entity path.
        left: String,
        /// Right entity path.
        right: String,
        /// Attribute of the left entity compared…
        left_key: String,
        /// …with this attribute of the right entity.
        right_key: String,
    },
    /// Union of several entity sets (paper: "combined (e.g., using join
    /// or union)").
    Union(Vec<String>),
    /// Split on an attribute value: only occurrences whose discriminator
    /// equals `equals` yield instances ("elevates data in the source to
    /// metadata in the target").
    Split {
        /// Source entity path.
        source: String,
        /// Discriminator attribute.
        discriminator: String,
        /// Selecting value.
        equals: Value,
    },
}

impl EntityMapping {
    /// Compute the source entity instances from a document.
    pub fn instances(&self, doc: &Node) -> Vec<Node> {
        match self {
            EntityMapping::Direct { source } => occurrences(doc, source),
            EntityMapping::Union(paths) => paths.iter().flat_map(|p| occurrences(doc, p)).collect(),
            EntityMapping::Split {
                source,
                discriminator,
                equals,
            } => occurrences(doc, source)
                .into_iter()
                .filter(|n| &n.value_at(discriminator) == equals)
                .collect(),
            EntityMapping::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let lefts = occurrences(doc, left);
                let rights = occurrences(doc, right);
                let mut out = Vec::new();
                for l in &lefts {
                    let lk = l.value_at(left_key);
                    if lk.is_null() {
                        continue;
                    }
                    for r in &rights {
                        if r.value_at(right_key) == lk {
                            let mut joined = Node::elem(format!("{}⋈{}", l.name, r.name));
                            joined.children.extend(l.children.iter().cloned());
                            joined.children.extend(
                                r.children
                                    .iter()
                                    .filter(|c| l.child(&c.name).is_none())
                                    .cloned(),
                            );
                            out.push(joined);
                        }
                    }
                }
                out
            }
        }
    }
}

/// All occurrences of a path under `doc` (repeated children followed at
/// every step).
pub fn occurrences(doc: &Node, path: &str) -> Vec<Node> {
    let mut frontier = vec![doc.clone()];
    for seg in path.split('/').filter(|s| !s.is_empty()) {
        let mut next = Vec::new();
        for n in &frontier {
            next.extend(n.children_named(seg).cloned());
        }
        frontier = next;
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Node {
        Node::elem("db")
            .with(
                Node::elem("AIRPORT")
                    .with_leaf("ident", "KJFK")
                    .with_leaf("name", "Kennedy Intl"),
            )
            .with(
                Node::elem("AIRPORT")
                    .with_leaf("ident", "KLGA")
                    .with_leaf("name", "LaGuardia"),
            )
            .with(
                Node::elem("RUNWAY")
                    .with_leaf("arpt", "KJFK")
                    .with_leaf("number", "04L")
                    .with_leaf("surface", "ASP"),
            )
            .with(
                Node::elem("RUNWAY")
                    .with_leaf("arpt", "KJFK")
                    .with_leaf("number", "13R")
                    .with_leaf("surface", "CON"),
            )
            .with(
                Node::elem("RUNWAY")
                    .with_leaf("arpt", "KLGA")
                    .with_leaf("number", "04")
                    .with_leaf("surface", "ASP"),
            )
    }

    #[test]
    fn direct_enumerates_occurrences() {
        let m = EntityMapping::Direct {
            source: "AIRPORT".into(),
        };
        assert_eq!(m.instances(&db()).len(), 2);
    }

    #[test]
    fn join_matches_on_keys() {
        let m = EntityMapping::Join {
            left: "RUNWAY".into(),
            right: "AIRPORT".into(),
            left_key: "arpt".into(),
            right_key: "ident".into(),
        };
        let joined = m.instances(&db());
        assert_eq!(joined.len(), 3);
        // Every joined instance has runway + airport attributes.
        for j in &joined {
            assert!(!j.value_at("number").is_null());
            assert!(!j.value_at("name").is_null());
        }
        let kjfk: Vec<&Node> = joined
            .iter()
            .filter(|j| j.value_at("arpt") == Value::from("KJFK"))
            .collect();
        assert_eq!(kjfk.len(), 2);
        assert_eq!(kjfk[0].value_at("name"), Value::from("Kennedy Intl"));
    }

    #[test]
    fn join_skips_null_keys_and_collision_keeps_left() {
        let doc = Node::elem("db")
            .with(
                Node::elem("L")
                    .with_leaf("k", "1")
                    .with_leaf("shared", "left"),
            )
            .with(Node::elem("L")) // null key
            .with(
                Node::elem("R")
                    .with_leaf("k", "1")
                    .with_leaf("shared", "right"),
            );
        let m = EntityMapping::Join {
            left: "L".into(),
            right: "R".into(),
            left_key: "k".into(),
            right_key: "k".into(),
        };
        let joined = m.instances(&doc);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].value_at("shared"), Value::from("left"));
    }

    #[test]
    fn union_concatenates_sets() {
        let m = EntityMapping::Union(vec!["AIRPORT".into(), "RUNWAY".into()]);
        assert_eq!(m.instances(&db()).len(), 5);
    }

    #[test]
    fn split_selects_on_discriminator() {
        let m = EntityMapping::Split {
            source: "RUNWAY".into(),
            discriminator: "surface".into(),
            equals: Value::from("ASP"),
        };
        let asphalt = m.instances(&db());
        assert_eq!(asphalt.len(), 2);
        assert!(asphalt
            .iter()
            .all(|r| r.value_at("surface") == Value::from("ASP")));
    }

    #[test]
    fn occurrences_follows_nested_paths() {
        let doc = Node::elem("root").with(
            Node::elem("a")
                .with(Node::elem("b").with_leaf("x", 1i64))
                .with(Node::elem("b").with_leaf("x", 2i64)),
        );
        assert_eq!(occurrences(&doc, "a/b").len(), 2);
        assert!(occurrences(&doc, "a/zzz").is_empty());
    }
}
